"""E15 -- zero-gap bundle rolling upgrades and slice SLO admission.

The ServiceBundle layer rolls a live ``mobile-core@v1`` instance to v2
in place: deploy the replacement beside the original, copy state through
the MigrationEngine, cut over, drain the old chain.  This experiment
measures what that costs under load -- the SMF session table grows with
concurrent flows, so the state the cutover must move is load-dependent --
and contrasts the two copy disciplines (iterative ``precopy`` vs
freeze-and-copy ``stateful``), mirroring E5's migration assertion shape:
pre-copy hides the transfer outside the freeze window, so its downtime
stays below stateful under load and its coverage gap is exactly zero.

The second half runs the canned ``slice-embb-iot`` scenario and reports
the per-slice admission split: one bundle, two slices, two SLOs, every
instance priced against its own slice's objectives.
"""

from __future__ import annotations

import pytest
from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.core.manager import AssignmentState
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import CBRTrafficGenerator
from repro.scenarios import run_scenario


@pytest.fixture
def e15_options(request):
    return {
        "flows": request.config.getoption("--e15-flows"),
        "load_duration": request.config.getoption("--e15-load-duration"),
    }


def _upgrade_run(mode: str, loaded: bool, flows: int, load_duration: float):
    """Roll one loaded (or idle) mobile-core instance v1 -> v2 and measure."""
    testbed = GNFTestbed(TestbedConfig(station_count=1, seed=15))
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(0.5)
    spec = testbed.upgrades.catalogue.get("mobile-core", 1)
    assignment = testbed.manager.attach_chain(
        phone.ip, spec.chain_for("embb"), station_name="station-1"
    )
    testbed.run(6.0)
    generators = []
    if loaded:
        # Distinct src ports = distinct PDU sessions: the SMF table (and so
        # the state the upgrade must move) grows with offered load.
        for index in range(flows):
            generator = CBRTrafficGenerator(
                testbed.simulator,
                phone,
                server_ip=testbed.server_ip,
                rate_pps=10,
                payload_bytes=400,
                src_port=42_000 + index,
            )
            generator.start()
            generators.append(generator)
    testbed.run(load_duration)
    testbed.upgrades.register_instance(
        assignment.assignment_id, "mobile-core", 1, "embb", phone.ip, fleet="bench"
    )
    assert testbed.upgrades.upgrade_bundle("mobile-core", 2, mode=mode) == 1
    testbed.run(15.0)
    for generator in generators:
        generator.stop()
    (record,) = testbed.upgrades.telemetry()["records"]
    # Per-NF share of the moved state, from the live (now v2) chain.
    deployment = testbed.agents["station-1"].deployments[assignment.assignment_id]
    per_nf_mb = {
        deployed.nf.nf_type: len(str(deployed.nf.export_state())) / 1e6
        for deployed in deployment.deployed_nfs
    }
    census = testbed.upgrades.live_refs()
    testbed.stop()
    return record, per_nf_mb, census


def _run_experiment(options):
    rows = []
    measured = {}
    for loaded in (False, True):
        for mode in ("precopy", "stateful"):
            record, per_nf_mb, census = _upgrade_run(
                mode, loaded, options["flows"], options["load_duration"]
            )
            load = "loaded" if loaded else "idle"
            measured[(mode, load)] = (record, per_nf_mb, census)
            rows.append(
                [
                    "upgrade",
                    f"{mode}/{load}",
                    round(record["state_mb"], 6),
                    record["coverage_gap_s"],
                    record["downtime_s"],
                    f"rounds={record['rounds']} census={census}",
                    record["success"],
                ]
            )
    # Downtime per NF: each NF's share of the state moved inside the final
    # copy window, for both loaded disciplines.
    for mode in ("precopy", "stateful"):
        record, per_nf_mb, _ = measured[(mode, "loaded")]
        total_mb = sum(per_nf_mb.values()) or 1.0
        for nf_type, state_mb in sorted(per_nf_mb.items()):
            rows.append(
                [
                    "nf-downtime",
                    f"{nf_type}/{mode}",
                    round(state_mb, 6),
                    "",
                    record["downtime_s"] * state_mb / total_mb,
                    f"{100.0 * state_mb / total_mb:.1f}% of moved state",
                    True,
                ]
            )
    # Slice SLO admission split on the canned two-slice scenario.
    result = run_scenario("slice-embb-iot", seed=0)
    by_slice = {}
    for assignment in result.testbed.manager.assignments.values():
        slice_name = assignment.chain.name.split("/")[-1]
        entry = by_slice.setdefault(
            slice_name, {"instances": 0, "admitted": 0, "slo": assignment.chain.slo}
        )
        entry["instances"] += 1
        entry["admitted"] += int(assignment.state is AssignmentState.ACTIVE)
    for slice_name, entry in sorted(by_slice.items()):
        slo = entry["slo"]
        rows.append(
            [
                "slice",
                slice_name,
                "",
                "",
                "",
                (
                    f"admitted {entry['admitted']}/{entry['instances']} at "
                    f"slo(latency<={slo.max_latency_s}s, bw>={slo.min_bandwidth_mbps}Mbps)"
                ),
                entry["admitted"] == entry["instances"],
            ]
        )
    return rows, measured, by_slice


def test_e15_bundle_rolling_upgrade(benchmark, record_experiment, e15_options):
    rows, measured, by_slice = run_once(benchmark, lambda: _run_experiment(e15_options))
    result = ExperimentResult(
        experiment_id="E15",
        title="Bundle rolling upgrades: downtime per mode/NF + slice admission",
        headers=[
            "row",
            "config",
            "state (MB)",
            "coverage gap (s)",
            "downtime (s)",
            "detail",
            "ok",
        ],
        paper_claim=(
            "GNF instantiates and manages per-client NF services at the edge "
            "without interrupting them; bundle upgrades extend that to "
            "whole-template rolls with no coverage gap"
        ),
        notes=(
            "the SMF session table grows with concurrent flows, so loaded "
            "upgrades move more state; pre-copy keeps the transfer outside "
            "the freeze window (gap exactly 0) while stateful pays the full "
            "copy inside it; slice rows show each slice admitted against "
            "its own SLO"
        ),
    )
    for row in rows:
        result.add_row(*row)
    record_experiment(result)

    for (mode, load), (record, _, census) in measured.items():
        assert record["success"], (mode, load)
        assert census == {"mobile-core@v2": 1}, (mode, load)
    # The E5 assertion shape, transplanted: pre-copy downtime strictly below
    # stateful under load, and its coverage gap is exactly zero while
    # stateful pays a real one.
    assert measured[("precopy", "loaded")][0]["downtime_s"] < measured[("stateful", "loaded")][0]["downtime_s"]
    assert measured[("precopy", "idle")][0]["coverage_gap_s"] == 0.0
    assert measured[("precopy", "loaded")][0]["coverage_gap_s"] == 0.0
    assert measured[("stateful", "loaded")][0]["coverage_gap_s"] > 0.0
    # Load grew the moved state (the session table is real).
    assert (
        measured[("stateful", "loaded")][0]["state_mb"]
        > measured[("stateful", "idle")][0]["state_mb"]
    )
    # Both slices fully admitted on the canonical unsaturated topology.
    assert by_slice["embb"]["admitted"] == by_slice["embb"]["instances"] == 2
    assert by_slice["iot"]["admitted"] == by_slice["iot"]["instances"] == 3
