"""E10 -- Scenario engine throughput and reproducibility (shard matrix).

Runs **every** canned scenario once per control-plane shard count (CLI:
``--e10-shards``, default ``1,4``), checks that each run drains cleanly and
that every shard count replays to the **identical** ``MetricsDigest`` -- the
sharded control plane must be an implementation detail, invisible to the
telemetry fingerprint -- and reports the simulation rate the engine
sustains.  This is the regression gate every future scale/perf PR runs
against.
"""

from __future__ import annotations

import time

import pytest
from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.scenarios import run_scenario, scenario_names

SEED = 0


@pytest.fixture
def e10_shard_counts(request):
    raw = request.config.getoption("--e10-shards")
    counts = [int(part) for part in str(raw).split(",") if part.strip()]
    if len(counts) < 2:
        # A single shard count would leave nothing to compare; repeat it so
        # every scenario still replays twice and the digest check stays a
        # real determinism gate (the pre-shard-matrix behaviour).
        counts = (counts or [1]) * 2
    return counts


def _run_matrix(shard_counts):
    rows = []
    for name in scenario_names():
        results = []
        elapsed_first = 0.0
        for shard_count in shard_counts:
            started = time.perf_counter()
            result = run_scenario(name, seed=SEED, shard_count=shard_count)
            if not results:
                elapsed_first = time.perf_counter() - started
            results.append(result)
        first = results[0]
        diffs = [first.digest.diff(other.digest) for other in results[1:]]
        rows.append(
            {
                "name": name,
                "events": first.events_processed,
                "sim_s": first.duration_s,
                "real_s": elapsed_first,
                "sim_per_wall": first.duration_s / elapsed_first if elapsed_first > 0 else 0.0,
                "events_per_s": first.events_processed / elapsed_first if elapsed_first > 0 else 0.0,
                "handovers": first.handovers,
                "migrations": first.migrations_completed,
                "faults": first.faults_injected,
                "drained": all(result.drained for result in results),
                "shard_invariant": all(not diff for diff in diffs),
                "digest": first.digest.short,
                "diff": [diff for diff in diffs if diff],
            }
        )
    return rows


def test_e10_scenario_matrix(benchmark, record_experiment, e10_shard_counts):
    rows = run_once(benchmark, lambda: _run_matrix(e10_shard_counts))
    result = ExperimentResult(
        experiment_id="E10",
        title=(
            "Declarative scenarios -- replay determinism across shard counts "
            f"{e10_shard_counts} and simulation rate"
        ),
        headers=[
            "scenario", "events", "sim time (s)", "wall (s)", "sim/wall x",
            "events/s", "handovers", "migrations", "faults", "digest", "shard-invariant",
        ],
        paper_claim=(
            "The demo's scenarios (roaming users, NF attach/removal, station "
            "failures) are reproducible experiments, not one-off runs"
        ),
    )
    for row in rows:
        result.add_row(
            row["name"], row["events"], row["sim_s"], f"{row['real_s']:.2f}",
            f"{row['sim_per_wall']:.1f}", f"{row['events_per_s']:.0f}",
            row["handovers"], row["migrations"], row["faults"], row["digest"],
            row["shard_invariant"],
        )
    record_experiment(result)

    for row in rows:
        assert row["drained"], f"{row['name']} left live events after teardown"
        assert row["shard_invariant"], (
            f"{row['name']} digest changed with shard count: {row['diff']}"
        )
    # The storm scenarios must actually exercise roaming + chaos machinery.
    by_name = {row["name"]: row for row in rows}
    assert by_name["commuter-rush"]["handovers"] >= 10
    assert by_name["rolling-failure"]["migrations"] >= 1
    assert by_name["chaos-soak"]["faults"] >= 5


#: Scenarios whose placement decisions legitimately differ by strategy:
#: hotspot-stadium saturates a station (that divergence is benchmark E11's
#: subject) and autoscale-daily-wave runs the autoscaler, whose replica and
#: rebalance targets depend on where placement put the wave chains.
_STRATEGY_VARIANT = {"hotspot-stadium", "autoscale-daily-wave"}


def test_e10_placement_strategy_digest_invariance(benchmark):
    """The load-aware strategies prefer the client's station until it is
    loaded, so on the unsaturated canned library (autoscaling off) every
    strategy must replay to the identical digest as the default."""

    def run_matrix():
        failures = []
        for name in scenario_names():
            if name in _STRATEGY_VARIANT:
                continue
            base = run_scenario(name, seed=SEED)
            for strategy in ("least-loaded", "bin-packing"):
                other = run_scenario(name, seed=SEED, placement_strategy=strategy)
                if other.digest != base.digest:
                    failures.append((name, strategy, base.digest.diff(other.digest)))
        return failures

    failures = run_once(benchmark, run_matrix)
    assert not failures, failures
