"""E10 -- Scenario engine throughput and reproducibility.

Runs a representative slice of the canned scenario library (a roaming
storm, a rolling station failure with live migration, and the chaos soak),
checks that each run is byte-reproducible (identical ``MetricsDigest`` on
replay) and reports the simulation rate the engine sustains -- the
regression gate every future scale/perf PR runs against.
"""

from __future__ import annotations

import time

from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.scenarios import run_scenario

SCENARIOS = ("commuter-rush", "rolling-failure", "chaos-soak")
SEED = 0


def _run_matrix():
    rows = []
    for name in SCENARIOS:
        started = time.perf_counter()
        first = run_scenario(name, seed=SEED)
        elapsed = time.perf_counter() - started
        second = run_scenario(name, seed=SEED)
        rows.append(
            {
                "name": name,
                "events": first.events_processed,
                "sim_s": first.duration_s,
                "real_s": elapsed,
                "events_per_s": first.events_processed / elapsed if elapsed > 0 else 0.0,
                "handovers": first.handovers,
                "migrations": first.migrations_completed,
                "faults": first.faults_injected,
                "drained": first.drained,
                "reproducible": first.digest == second.digest,
                "digest": first.digest.short,
                "diff": first.digest.diff(second.digest),
            }
        )
    return rows


def test_e10_scenario_matrix(benchmark, record_experiment):
    rows = run_once(benchmark, _run_matrix)
    result = ExperimentResult(
        experiment_id="E10",
        title="Declarative scenarios -- replay determinism and simulation rate",
        headers=[
            "scenario", "events", "sim time (s)", "wall (s)", "events/s",
            "handovers", "migrations", "faults", "digest", "reproducible",
        ],
        paper_claim=(
            "The demo's scenarios (roaming users, NF attach/removal, station "
            "failures) are reproducible experiments, not one-off runs"
        ),
    )
    for row in rows:
        result.add_row(
            row["name"], row["events"], row["sim_s"], f"{row['real_s']:.2f}",
            f"{row['events_per_s']:.0f}", row["handovers"], row["migrations"],
            row["faults"], row["digest"], row["reproducible"],
        )
    record_experiment(result)

    for row in rows:
        assert row["drained"], f"{row['name']} left live events after teardown"
        assert row["reproducible"], f"{row['name']} diverged on replay: {row['diff']}"
    # The storm scenarios must actually exercise roaming + chaos machinery.
    by_name = {row["name"]: row for row in rows}
    assert by_name["commuter-rush"]["handovers"] >= 10
    assert by_name["rolling-failure"]["migrations"] >= 1
    assert by_name["chaos-soak"]["faults"] >= 5
