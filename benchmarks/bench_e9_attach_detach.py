"""E9 -- Attaching, removing and scheduling NFs from the UI.

Paper claim (Section 3 / UI): "New NFs can be attached in seconds or removed
from clients as well as scheduled to be enabled only during specific time
periods."  This experiment measures, through the dashboard API, the attach
latency of every NF type in the catalogue (cold and warm), the detach
latency, and how precisely a scheduled NF is enabled at its window start.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.core.testbed import GNFTestbed, TestbedConfig


def _fresh_testbed():
    testbed = GNFTestbed(TestbedConfig(station_count=1))
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    return testbed, phone


def _attach_detach_latencies(nf_type: str):
    testbed, phone = _fresh_testbed()
    cold = testbed.ui.attach_nf(phone.ip, nf_type)
    testbed.run(25.0)
    cold_latency = cold.attach_latency_s
    detach_start = testbed.simulator.now
    testbed.ui.remove_assignment(cold.assignment_id)
    testbed.run(5.0)
    agent = testbed.agents["station-1"]
    detach_latency = None
    if agent.deployment_for_client(phone.ip) is None:
        detach_latency = 5.0  # upper bound; refined below from container history
        stopped = [
            c for c in agent.runtime.containers.values() if c.stopped_at is not None
        ]
        if stopped:
            detach_latency = max(c.stopped_at for c in stopped) - detach_start
    warm = testbed.ui.attach_nf(phone.ip, nf_type)
    testbed.run(25.0)
    return cold_latency, warm.attach_latency_s, detach_latency


def _scheduled_enable_accuracy():
    testbed, phone = _fresh_testbed()
    now = testbed.simulator.now
    window_start = now + 30.0
    assignment = testbed.ui.schedule_nf(phone.ip, "firewall", start_s=window_start, end_s=window_start + 60.0)
    testbed.run(60.0)
    agent = testbed.agents["station-1"]
    cookie = f"chain:{assignment.assignment_id}"
    enabled = bool(agent.station.switch.flow_table.rules(cookie=cookie))
    return enabled


def _run_experiment():
    rows = []
    for nf_type in ("firewall", "http-filter", "dns-loadbalancer", "rate-limiter", "cache", "ids"):
        cold, warm, detach = _attach_detach_latencies(nf_type)
        rows.append([nf_type, cold, warm, detach])
    scheduled_ok = _scheduled_enable_accuracy()
    return rows, scheduled_ok


def test_e9_attach_detach_schedule(benchmark, record_experiment):
    rows, scheduled_ok = run_once(benchmark, _run_experiment)
    result = ExperimentResult(
        experiment_id="E9",
        title="UI operations: NF attach (cold/warm), detach and scheduled enablement",
        headers=["nf", "cold attach (s)", "warm attach (s)", "detach (s)"],
        paper_claim=(
            "New NFs can be attached in seconds or removed from clients, and scheduled "
            "to be enabled only during specific time periods"
        ),
        notes=f"scheduled firewall enabled inside its window: {scheduled_ok}",
    )
    for row in rows:
        result.add_row(*row)
    record_experiment(result)

    assert scheduled_ok
    for nf_type, cold, warm, detach in rows:
        assert cold is not None and cold < 10.0, nf_type       # "in seconds"
        assert warm is not None and warm <= cold + 1e-9, nf_type
        assert detach is not None and detach < 2.0, nf_type
