"""E12 -- Hybrid fluid/packet simulation core: bulk-transfer speedup.

The hybrid core (``src/repro/netem/fluid.py``) moves long-lived bulk flows
as fluid rate processes -- one solver epoch per ``fluid_epoch_s`` instead of
one event chain per packet -- while keeping packet-level fidelity islands at
chained NFs, migrating stations and fault windows.  This benchmark runs the
*same* large bulk-transfer scenario under ``--sim-mode packet`` and
``--sim-mode hybrid`` and reports the sim-time/wall-time ratio headline for
both, asserting the hybrid engine is at least ``E12_MIN_SPEEDUP`` (default
3x; CI smoke relaxes it) faster in wall-clock terms.

Fleet size and simulated duration scale via ``--e12-clients`` /
``--e12-duration`` (defaults: 10,000 clients for the full headline run;
CI smoke passes a tiny fleet).  Byte accounting must be exact in both
modes: every fluid byte and every packet byte is accounted per flow, and
their sum equals each flow's transfer size.
"""

from __future__ import annotations

import os
import time

import pytest
from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.scenarios import ScenarioRunner, ScenarioSpec
from repro.scenarios.spec import ClientFleetSpec, TopologySpec, WorkloadSpec

DEFAULT_CLIENTS = 10_000
DEFAULT_DURATION_S = 60.0
STATIONS = 8
BYTES_PER_CLIENT = 1_000_000.0
RATE_BPS = 800e3
CHUNK_BYTES = 4000


def _bulk_spec(clients: int, duration_s: float) -> ScenarioSpec:
    """A pure bulk-transfer storm: ``clients`` uploaders spread over 8 stations.

    The deployment is a fiber-backhauled metro testbed (10 Gb/s uplinks, the
    default 10 Gb/s core), sized so the aggregate demand stays *below* every
    link capacity: packet mode then runs uncongested and both engines move
    the identical byte totals, which keeps the wall-clock comparison honest.
    Scan/heartbeat intervals are stretched so the control plane does not
    dominate either engine -- the measurement targets the dataplane.
    Workloads start after the first handover scan (``scan_interval_s``) so
    every client is associated before its transfer begins.
    """
    spacing = 80.0
    per_station = max(1, clients // STATIONS)
    fleets = []
    remaining = clients
    for index in range(STATIONS):
        count = min(per_station, remaining) if index < STATIONS - 1 else remaining
        if count <= 0:
            break
        remaining -= count
        fleets.append(
            ClientFleetSpec(
                name=f"bulk-s{index + 1}",
                count=count,
                position=(index * spacing, 0.0),
                spread_m=10.0,
                appear_at_s=0.5,
                workloads=[
                    WorkloadSpec(
                        kind="bulk",
                        start_s=6.0,
                        params={
                            "total_bytes": BYTES_PER_CLIENT,
                            "rate_bps": RATE_BPS,
                            "chunk_bytes": CHUNK_BYTES,
                        },
                    )
                ],
            )
        )
    return ScenarioSpec(
        name="e12-bulk-storm",
        description="E12 bulk-transfer storm for the hybrid-core speedup headline",
        seed=0,
        duration_s=duration_s,
        topology=TopologySpec(
            station_count=STATIONS,
            station_spacing_m=spacing,
            uplink_bandwidth_bps=10e9,
            scan_interval_s=5.0,
            heartbeat_interval_s=5.0,
            simulation_mode="packet",
        ),
        fleets=fleets,
    )


def _run_mode(spec: ScenarioSpec, mode: str):
    started = time.perf_counter()
    result = ScenarioRunner(spec).run(simulation_mode=mode)
    wall_s = time.perf_counter() - started
    moved = sum(
        stats.get("bytes_moved", 0.0) for stats in result.workload_stats.values()
    )
    return {
        "mode": mode,
        "wall_s": wall_s,
        "sim_s": result.duration_s,
        "ratio": result.duration_s / wall_s if wall_s > 0 else 0.0,
        "events": result.events_processed,
        "events_per_s": result.events_processed / wall_s if wall_s > 0 else 0.0,
        "bytes_moved": moved,
        "drained": result.drained,
        "fluid": result.fluid_summary,
        "stats": result.workload_stats,
    }


@pytest.fixture
def e12_shape(request):
    clients = int(request.config.getoption("--e12-clients")) or DEFAULT_CLIENTS
    duration = float(request.config.getoption("--e12-duration")) or DEFAULT_DURATION_S
    return clients, duration


def test_e12_hybrid_core_speedup(benchmark, record_experiment, e12_shape):
    """Hybrid engine must beat packet mode by >= E12_MIN_SPEEDUP wall-clock.

    ``E12_MIN_SPEEDUP`` relaxes the floor for tiny smoke fleets (CI sets
    1.0); the full 10k-client run targets >= 10x.  The byte-conservation
    assertions are exact and never relaxed.
    """
    min_speedup = float(os.environ.get("E12_MIN_SPEEDUP", "3.0"))
    clients, duration_s = e12_shape
    spec = _bulk_spec(clients, duration_s)

    def run_both():
        packet = _run_mode(spec, "packet")
        hybrid = _run_mode(spec, "hybrid")
        return packet, hybrid

    packet, hybrid = run_once(benchmark, run_both)
    speedup = packet["wall_s"] / hybrid["wall_s"] if hybrid["wall_s"] > 0 else 0.0

    result = ExperimentResult(
        experiment_id="E12",
        title=f"Hybrid fluid core vs packet engine ({clients} bulk clients, {duration_s:.0f}s sim)",
        headers=[
            "engine", "events", "sim time (s)", "wall (s)", "sim/wall x",
            "events/s", "bytes moved",
        ],
        paper_claim=(
            "Edge-NFV evaluation at metro scale needs flow-level simulation "
            "speed without giving up packet fidelity where NFs act"
        ),
        notes=(
            f"hybrid wall-clock speedup {speedup:.2f}x over packet mode; "
            f"fluid bytes {hybrid['fluid'].get('bytes_fluid', 0.0):,.0f}, "
            f"packet-island bytes {hybrid['fluid'].get('bytes_packet', 0.0):,.0f}"
        ),
    )
    for run in (packet, hybrid):
        result.add_row(
            run["mode"], run["events"], run["sim_s"], f"{run['wall_s']:.2f}",
            f"{run['ratio']:.1f}", f"{run['events_per_s']:.0f}", f"{run['bytes_moved']:,.0f}",
        )
    record_experiment(result)

    assert packet["drained"] and hybrid["drained"]
    # Exact byte continuity in hybrid mode: per flow, fluid + packet bytes
    # equal the bytes the generator reports moved.
    for name, stats in hybrid["stats"].items():
        if "total_bytes" not in stats:
            continue
        assert stats["bytes_fluid"] + stats["bytes_packet"] == pytest.approx(
            stats["bytes_moved"], rel=1e-9
        ), f"{name}: fluid/packet byte split does not add up"
    # The fluid engine carried the bulk of the bytes (no islands here).
    fluid_bytes = hybrid["fluid"].get("bytes_fluid", 0.0)
    assert fluid_bytes > 0.0
    assert hybrid["events"] < packet["events"], (
        "hybrid mode must collapse per-packet event chains into solver epochs"
    )
    assert speedup >= min_speedup, (
        f"hybrid speedup {speedup:.2f}x below the {min_speedup}x floor "
        f"(packet {packet['wall_s']:.2f}s vs hybrid {hybrid['wall_s']:.2f}s)"
    )
