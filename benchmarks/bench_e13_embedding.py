"""E13 -- SLO-satisfaction under load: chain embedding vs whole-chain.

A crowd mobs station-1 of a ten-station deployment, each client wanting a
five-NF, 60 MB chain with an end-to-end latency/bandwidth SLO.  Whole-chain
placement (least-loaded) can admit at most one chain per station: once every
station holds one, the ~30 MB of scraps left on each are individually too
small for another whole chain even though they sum to several chains' worth
of memory.  The embedding strategy splits chains into per-NF segments, packs
those scraps, and prices every inter-station detour against the chain's SLO
before admitting.

Reported per (offered load, strategy): chains attached, admitted (reached
ACTIVE), admitted *within SLO* (detour latency audited post-hoc against the
chain's declared budget), split placements, SLO rejections.  Asserts that at
the saturating load embedding admits at least ``E13_MIN_RATIO`` (default
1.3) times as many within-SLO chains as least-loaded.  ``--e13-loads`` and
``--e13-stations`` shrink the sweep for smoke runs (CI uses a tiny fleet
with ``E13_MIN_RATIO=1.0`` so the bench cannot rot).
"""

from __future__ import annotations

import os

import pytest
from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.core.manager import AssignmentState
from repro.scenarios import ScenarioRunner
from repro.scenarios.spec import (
    ChainAssignmentSpec,
    ClientFleetSpec,
    ScenarioSpec,
    TopologySpec,
)

SEED = 0
STRATEGIES = ("least-loaded", "embedding")
MIN_RATIO = float(os.environ.get("E13_MIN_RATIO", "1.3"))

#: The crowd chain: five NFs of 9 MB each.  One chain fits a station whole,
#: and the leftover scraps hold a few more NFs -- but only for a placement
#: that can split below chain granularity.
CROWD_NFS = [
    {"nf_type": "ids", "requirements": {"memory_mb": 9.0}},
    {"nf_type": "cache", "requirements": {"memory_mb": 9.0}},
    {"nf_type": "http-filter", "requirements": {"memory_mb": 9.0}},
    {"nf_type": "flow-monitor", "requirements": {"memory_mb": 9.0}},
    {"nf_type": "nat", "requirements": {"memory_mb": 9.0}},
]
SLO_MAX_LATENCY_S = 0.25
SLO_MIN_BANDWIDTH_MBPS = 1.0


@pytest.fixture
def e13_loads(request):
    return [int(x) for x in str(request.config.getoption("--e13-loads")).split(",") if x]


@pytest.fixture
def e13_stations(request):
    return int(request.config.getoption("--e13-stations"))


def _spec(crowd: int, stations: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="e13-embedding",
        description="offered-load point for the E13 embedding comparison",
        seed=SEED,
        duration_s=20.0,
        # Admission control gates both strategies identically: a chain whose
        # chosen station lacks capacity queues instead of boot-failing
        # halfway, so the comparison measures placement quality, not
        # interleaved-boot crashes.
        topology=TopologySpec(
            station_count=stations,
            station_spacing_m=80.0,
            admission_control=True,
        ),
        fleets=[
            ClientFleetSpec(
                name="crowd",
                count=crowd,
                position=(0.0, 0.0),
                spread_m=8.0,
                appear_at_s=1.0,
                appear_stagger_s=0.1,
            )
        ],
        assignments=[
            ChainAssignmentSpec(
                fleet="crowd",
                nfs=CROWD_NFS,
                attach_at_s=4.0,
                slo_max_latency_s=SLO_MAX_LATENCY_S,
                slo_min_bandwidth_mbps=SLO_MIN_BANDWIDTH_MBPS,
            )
        ],
    )


def _within_slo(result, assignment) -> bool:
    """Audit one ACTIVE assignment's detour latency against its SLO.

    The same pricing rule the embedding strategy applies a priori: every
    distinct station other than the client's adds a there-and-back
    inter-station hop.  Whole-chain strategies never price this, so the
    audit is what makes the comparison fair to both.
    """
    testbed = result.testbed
    client_station = None
    for client in testbed.clients.values():
        if client.ip == assignment.client_ip:
            client_station = client.current_station_name
            break
    if client_station is None:
        client_station = assignment.station_name
    if assignment.segments:
        hosts = {segment.station_name for segment in assignment.segments}
    else:
        hosts = {assignment.station_name}
    detour = sum(
        2.0 * testbed.topology.station_to_station_latency(client_station, host)
        for host in hosts
        if host != client_station
    )
    return detour <= SLO_MAX_LATENCY_S


def _run_point(strategy: str, crowd: int, stations: int):
    result = ScenarioRunner(_spec(crowd, stations)).run(placement_strategy=strategy)
    assignments = list(result.testbed.manager.assignments.values())
    active = [a for a in assignments if a.state is AssignmentState.ACTIVE]
    within = [a for a in active if _within_slo(result, a)]
    stats = result.placement_stats
    return {
        "strategy": strategy,
        "offered": crowd,
        "attached": len(assignments),
        "admitted": len(active),
        "within_slo": len(within),
        "splits": int(stats["split_placements"]),
        "segments": int(stats["segments_placed"]),
        "slo_rejections": int(stats["slo_rejections"]),
        "rejections": int(stats["rejections"]),
        "drained": result.drained,
    }


def test_e13_embedding_slo_satisfaction_vs_load(
    benchmark, record_experiment, e13_loads, e13_stations
):
    rows = run_once(
        benchmark,
        lambda: [
            _run_point(strategy, crowd, e13_stations)
            for crowd in e13_loads
            for strategy in STRATEGIES
        ],
    )
    result = ExperimentResult(
        experiment_id="E13",
        title="SLO-satisfaction under load: embedding vs whole-chain placement",
        headers=[
            "offered", "strategy", "admitted", "within SLO",
            "splits", "segments", "SLO-rejected", "rejected",
        ],
        paper_claim=(
            "GNF places container NFs on the edge station closest to the "
            "client; embedding generalizes this to chains that no single "
            "station can host while keeping latency bounded"
        ),
        notes=(
            "within SLO = ACTIVE chains whose audited detour latency meets "
            "the declared budget; whole-chain placement strands each "
            "station's memory scraps, per-NF embedding packs them"
        ),
    )
    for row in rows:
        result.add_row(
            row["offered"], row["strategy"], row["admitted"], row["within_slo"],
            row["splits"], row["segments"], row["slo_rejections"], row["rejections"],
        )
    record_experiment(result)

    for row in rows:
        assert row["drained"], f"{row['strategy']}@{row['offered']} left live events"
    by_point = {(row["offered"], row["strategy"]): row for row in rows}
    for crowd in e13_loads:
        embedding = by_point[(crowd, "embedding")]
        baseline = by_point[(crowd, "least-loaded")]
        # Embedding must never do worse than whole-chain placement.
        assert embedding["within_slo"] >= baseline["within_slo"], (crowd, embedding, baseline)
    saturated = max(e13_loads)
    embedding = by_point[(saturated, "embedding")]
    baseline = by_point[(saturated, "least-loaded")]
    assert baseline["within_slo"] > 0
    assert embedding["within_slo"] >= MIN_RATIO * baseline["within_slo"], (
        embedding["within_slo"],
        baseline["within_slo"],
        MIN_RATIO,
    )
    # The capacity win must come from actual splits, not luck.
    assert embedding["splits"] > 0
