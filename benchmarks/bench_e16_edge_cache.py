"""E16 -- backhaul bytes saved vs cache placement, and generator cost.

The promoted :class:`~repro.nfs.cache.EdgeCache` makes GNF's core economic
argument measurable: an NF *at the edge* absorbs repeat content before it
touches the backhaul.  The first leg runs the canned ``cache-vs-backhaul``
ablation -- two identical ABR+web+QUIC fleets behind identical caches,
except one cache serves hits locally (``placement="edge"``) and the other
merely records them while forwarding everything upstream
(``placement="core"``).  The saving is measured *physically*, as the gap
between the two stations' uplink byte counters, and cross-checked against
the cache's own ``backhaul_bytes_saved`` ledger.  The run must clear a
relative-savings floor (``E16_MIN_SAVINGS`` env var, default 0.30).

The second leg prices the new vectorized generators: simulator events per
emitted request for the QUIC burst generator (which pre-draws numpy blocks
and emits whole 0-RTT bursts inside one event) versus the ABR segment
fetcher (one event per segment by design).
"""

from __future__ import annotations

import os

import pytest
from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import ABRVideoGenerator, QUICWorkloadGenerator
from repro.scenarios import run_scenario

MIN_SAVINGS = float(os.environ.get("E16_MIN_SAVINGS", "0.30"))


@pytest.fixture
def e16_options(request):
    return {
        "seed": request.config.getoption("--e16-seed"),
        "gen_duration": request.config.getoption("--e16-gen-duration"),
    }


def _cache_nfs(testbed):
    """Every deployed cache NF, keyed by hosting station."""
    found = {}
    for station_name, agent in testbed.agents.items():
        for deployment in agent.deployments.values():
            for deployed in deployment.deployed_nfs:
                if deployed.nf.nf_type == "cache":
                    found.setdefault(station_name, []).append(deployed.nf)
    return found


def _placement_run(seed: int):
    """Run the ablation scenario; return per-station uplink + cache ledgers."""
    result = run_scenario("cache-vs-backhaul", seed=seed)
    testbed = result.testbed
    uplink_bytes = {
        name: link.total_stats.tx_bytes
        for name, link in testbed.topology.uplink_links.items()
    }
    ledgers = {}
    for station_name, caches in _cache_nfs(testbed).items():
        ledgers[station_name] = {
            "placement": caches[0].placement,
            "hits": sum(nf.hits for nf in caches),
            "misses": sum(nf.misses for nf in caches),
            "uncacheable": sum(nf.uncacheable_requests for nf in caches),
            "bytes_served_from_cache": sum(nf.bytes_served_from_cache for nf in caches),
            "backhaul_bytes_saved": sum(nf.backhaul_bytes_saved for nf in caches),
        }
    testbed.stop()
    return uplink_bytes, ledgers, result.digest.hexdigest


def _generator_run(duration_s: float):
    """Events-per-request for the vectorized QUIC generator vs the ABR one."""
    testbed = GNFTestbed(TestbedConfig(station_count=1, seed=16))
    client = testbed.add_client("bench-client", position=(0.0, 0.0))
    testbed.start()
    testbed.run(0.5)
    generators = {
        "quic": QUICWorkloadGenerator(
            testbed.simulator, client, server_ip=testbed.server_ip, mean_gap_s=0.4
        ),
        "abr": ABRVideoGenerator(
            testbed.simulator,
            client,
            server_ip=testbed.server_ip,
            segment_duration_s=0.5,
        ),
    }
    scheduled = {}
    for kind, generator in generators.items():
        scheduled[kind] = 0
        original = generator._schedule

        def counting(delay, callback, *args, _kind=kind, _original=original):
            scheduled[_kind] += 1
            return _original(delay, callback, *args)

        generator._schedule = counting
        generator.start()
    testbed.run(duration_s)
    measured = {}
    for kind, generator in generators.items():
        stats = generator.stats()
        generator.stop()
        requests = stats["packets_sent"]
        measured[kind] = {
            "requests": requests,
            "events": scheduled[kind],
            "requests_per_event": requests / max(scheduled[kind], 1),
            "loss_rate": stats["loss_rate"],
        }
    testbed.stop()
    return measured


def _run_experiment(options):
    uplink_bytes, ledgers, digest = _placement_run(options["seed"])
    rows = []
    by_placement = {entry["placement"]: (name, entry) for name, entry in ledgers.items()}
    edge_station, edge = by_placement["edge"]
    core_station, core = by_placement["core"]
    savings = 1.0 - uplink_bytes[edge_station] / uplink_bytes[core_station]
    for station, entry in ((edge_station, edge), (core_station, core)):
        rows.append(
            [
                "placement",
                entry["placement"],
                uplink_bytes[station],
                entry["hits"],
                entry["misses"],
                entry["backhaul_bytes_saved"],
                f"uncacheable={entry['uncacheable']} digest={digest[:12]}",
            ]
        )
    rows.append(
        [
            "savings",
            "edge-vs-core",
            uplink_bytes[core_station] - uplink_bytes[edge_station],
            "",
            "",
            "",
            f"{100.0 * savings:.1f}% backhaul bytes saved (floor {100.0 * MIN_SAVINGS:.0f}%)",
        ]
    )
    generator_cost = _generator_run(options["gen_duration"])
    for kind, entry in sorted(generator_cost.items()):
        rows.append(
            [
                "generator",
                kind,
                "",
                "",
                "",
                "",
                (
                    f"{entry['requests']:.0f} requests in {entry['events']} events "
                    f"= {entry['requests_per_event']:.2f} req/event"
                ),
            ]
        )
    return rows, savings, edge, core, generator_cost


def test_e16_edge_cache_backhaul(benchmark, record_experiment, e16_options):
    rows, savings, edge, core, generator_cost = run_once(
        benchmark, lambda: _run_experiment(e16_options)
    )
    result = ExperimentResult(
        experiment_id="E16",
        title="Edge cache placement: backhaul bytes saved + generator cost",
        headers=[
            "row",
            "config",
            "uplink bytes",
            "hits",
            "misses",
            "bytes saved",
            "detail",
        ],
        paper_claim=(
            "placing network functions at the network edge keeps traffic "
            "local and off the backhaul; an edge cache makes the saving "
            "directly measurable in uplink byte counters"
        ),
        notes=(
            "both fleets and caches are identical; only placement differs. "
            "The core-placed cache records the same hit opportunities but "
            "forwards every request upstream, so the uplink gap is exactly "
            "the traffic an edge placement absorbs. Generator rows price "
            "the vectorized QUIC burst generator (multiple 0-RTT requests "
            "per simulator event) against the one-event-per-segment ABR "
            "fetcher"
        ),
    )
    for row in rows:
        result.add_row(*row)
    record_experiment(result)

    # The headline claim: the edge placement keeps >= MIN_SAVINGS of the
    # backhaul bytes local relative to the identical core placement.
    assert savings >= MIN_SAVINGS, f"savings {savings:.3f} below floor {MIN_SAVINGS}"
    # Both caches saw real hit opportunities (same traffic, same admission);
    # only the edge one turned them into saved backhaul bytes.
    assert edge["hits"] > 0 and core["hits"] > 0
    assert edge["backhaul_bytes_saved"] > 0
    assert core["backhaul_bytes_saved"] == 0
    # QUIC's uncacheable requests were classified, not silently cached.
    assert edge["uncacheable"] > 0 and core["uncacheable"] > 0
    # Vectorization is real: QUIC emits multiple requests per simulator
    # event, ABR exactly one fetch per event.
    assert generator_cost["quic"]["requests_per_event"] > 1.0
    assert generator_cost["abr"]["requests_per_event"] <= 1.0 + 1e-9
    assert (
        generator_cost["quic"]["requests_per_event"]
        > generator_cost["abr"]["requests_per_event"]
    )
