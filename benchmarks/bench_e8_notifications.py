"""E8 -- NF notifications relayed from the edge to the Manager.

Paper claim: "individual NFs can relay notifications through their local
Agent to the Manager, informing the provider about events that should be
reviewed such as ... an intrusion attempt or detected malware".  This
experiment deploys an IDS per client, injects malware-tagged and port-scan
traffic, and measures delivery completeness and latency at the Manager.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.analysis.stats import mean, percentile
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem import packet as pkt
from repro.netem.trafficgen import CBRTrafficGenerator


def _run_experiment(client_count: int = 4, malware_packets_per_client: int = 3):
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    clients = []
    for index in range(client_count):
        station_index = index % 2
        clients.append(
            testbed.add_client(f"client-{index}", position=(station_index * 80.0, 0.0))
        )
    testbed.start()
    testbed.run(1.0)
    for client in clients:
        testbed.manager.attach_nf(
            client.ip, "ids", config={"malware_signatures": ["EICAR"], "port_scan_threshold": 15}
        )
    testbed.run(8.0)

    # Background traffic plus injected attack traffic.
    generators = [
        CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=10).start()
        for client in clients
    ]
    injected = 0
    for client in clients:
        for index in range(malware_packets_per_client):
            bad = pkt.make_tcp_packet(client.ip, testbed.server_ip, 41000 + index, 80)
            bad.metadata["payload_signature"] = "EICAR"
            testbed.simulator.schedule(2.0 + index * 0.5, client.send_packet, bad)
            injected += 1
        # A port scan from the first client only.
    scanner = clients[0]
    for port in range(1, 30):
        probe = pkt.make_tcp_packet(scanner.ip, testbed.server_ip, 42000, port, syn=True)
        testbed.simulator.schedule(4.0 + port * 0.05, scanner.send_packet, probe)
    testbed.run(20.0)
    for generator in generators:
        generator.stop()

    notifications = testbed.manager.notifications
    malware = [n for n in notifications.all() if "malware" in n.message]
    scans = [n for n in notifications.all() if "port scan" in n.message]
    latencies = [n.delivery_latency_s for n in notifications.all()]
    return {
        "clients": client_count,
        "malware_injected": injected,
        "malware_alerts": len(malware),
        "port_scan_alerts": len(scans),
        "total_notifications": len(notifications),
        "mean_delivery_latency_s": mean(latencies),
        "p95_delivery_latency_s": percentile(latencies, 95.0),
        "stations_reporting": len({n.station_name for n in notifications.all()}),
    }


def test_e8_nf_notifications(benchmark, record_experiment):
    outcome = run_once(benchmark, _run_experiment)
    result = ExperimentResult(
        experiment_id="E8",
        title="NF -> Agent -> Manager notifications: completeness and delivery latency",
        headers=["metric", "value"],
        paper_claim=(
            "NFs relay notifications through their local Agent to the Manager "
            "(intrusion attempts, detected malware)"
        ),
    )
    for key, value in outcome.items():
        result.add_row(key, value)
    record_experiment(result)

    # Every injected malware packet produced exactly one alert at the Manager,
    # the port scan was flagged once, and delivery latency is control-plane
    # scale (tens of milliseconds), not seconds.
    assert outcome["malware_alerts"] == outcome["malware_injected"]
    assert outcome["port_scan_alerts"] == 1
    assert outcome["stations_reporting"] == 2
    assert outcome["mean_delivery_latency_s"] < 0.1
