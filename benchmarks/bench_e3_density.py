"""E3 -- NF density per host: containers vs VMs.

Paper claims: containers allow "a much higher network function-to-host
density and smaller footprint"; "commodity compute devices ... are now able
to host up to hundreds of NFs"; VM-based NFV cannot be deployed on low-end
edge devices at all.
"""

from __future__ import annotations

from _bench_utils import record_result, run_once

from repro.analysis.report import ExperimentResult
from repro.baselines.vm_nfv import VMNFVBaseline
from repro.containers.cgroups import AdmissionError, ResourceAccount
from repro.containers.runtime import ContainerRuntime, RuntimeTimings
from repro.core.repository import NFRepository
from repro.netem.simulator import Simulator
from repro.netem.topology import StationProfile

NF_TYPE = "firewall"


def _container_density(profile: StationProfile) -> int:
    simulator = Simulator()
    repository = NFRepository.with_default_catalog()
    resources = ResourceAccount(
        cpu_mhz=profile.cpu_mhz,
        memory_mb=profile.memory_mb,
        system_reserved_mb=min(48.0, profile.memory_mb * 0.3),
    )
    runtime = ContainerRuntime(
        simulator,
        name=f"density-{profile.name}",
        resources=resources,
        registry=repository.registry,
        timings=RuntimeTimings.for_station_profile(profile.name),
    )
    image, _ = runtime.ensure_image(repository.lookup(NF_TYPE).image_reference)
    count = 0
    while True:
        try:
            runtime.create(image, f"{NF_TYPE}-{count}")
            count += 1
        except AdmissionError:
            return count


def _vm_density(profile: StationProfile) -> int:
    simulator = Simulator()
    return VMNFVBaseline(simulator, profile=profile).max_density(NF_TYPE)


def _run_experiment():
    rows = []
    for profile in (StationProfile.router_class(), StationProfile.server_class()):
        containers = _container_density(profile)
        vms = _vm_density(profile)
        rows.append([profile.name, f"{profile.memory_mb:.0f} MB RAM", containers, vms,
                     containers / vms if vms else float("inf")])
    return rows


def test_e3_nf_density_per_host(benchmark, record_experiment):
    rows = run_once(benchmark, _run_experiment)
    result = ExperimentResult(
        experiment_id="E3",
        title="NF density per host -- containers vs VMs (firewall NF)",
        headers=["host class", "memory", "container NFs", "VM NFs", "container/VM ratio"],
        paper_claim=(
            "Containers allow a much higher NF-to-host density; commodity devices can host "
            "up to hundreds of NFs, while VMs do not even fit on low-end devices"
        ),
    )
    for row in rows:
        result.add_row(*row)
    record_experiment(result)

    router_row = next(row for row in rows if row[0] == "router-class")
    server_row = next(row for row in rows if row[0] == "server-class")
    # Router-class devices host several container NFs but zero VMs.
    assert router_row[2] >= 5
    assert router_row[3] == 0
    # Server-class hosts reach hundreds of containers and an order of magnitude fewer VMs.
    assert server_row[2] >= 100
    assert server_row[3] > 0
    assert server_row[2] > 10 * server_row[3]
