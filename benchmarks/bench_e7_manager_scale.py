"""E7 -- Manager / control-plane scalability, sharded vs single.

Paper claim: the Manager keeps "a connection with all the Agents in the
network" and "continuously monitor[s] the health and resource utilization
from the GNF stations".  This experiment has two parts:

1. **Scale sweep** -- full testbeds at increasing station counts (and, when
   requested, shard counts): heartbeat processing, control-plane traffic,
   attach latency under load and station liveness.
2. **Heartbeat throughput comparison** -- the path that walls off the
   "millions of users" target.  A fixed fleet of Agents fires pre-built
   heartbeats through the real transport (per-message ControlChannel for
   the single Manager, coalescing ControlBus for the sharded one) and the
   wall-clock processing rate is compared sharded vs unsharded.

Both sweeps are CLI-configurable (see ``benchmarks/conftest.py``)::

    pytest benchmarks/bench_e7_manager_scale.py \
        --e7-stations 4,16,64 --e7-shards 1,4,16 --e7-hb-stations 1024

The comparison asserts the sharded control plane processes heartbeats at
>= 2x the single-Manager rate at 512 stations (relax with E7_MIN_SPEEDUP
on noisy shared runners).
"""

from __future__ import annotations

import os
import time

import pytest
from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.analysis.stats import mean
from repro.core.agent import GNFAgent
from repro.core.api import AgentHeartbeat
from repro.core.manager import GNFManager
from repro.core.repository import NFRepository
from repro.core.sharding import ShardedManager
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.simulator import Simulator
from repro.netem.topology import EdgeTopology, TopologyConfig


def _parse_counts(raw: str) -> list:
    return [int(part) for part in str(raw).split(",") if part.strip()]


@pytest.fixture
def e7_options(request):
    return {
        "stations": _parse_counts(request.config.getoption("--e7-stations")),
        "clients_per_station": request.config.getoption("--e7-clients-per-station"),
        "shards": _parse_counts(request.config.getoption("--e7-shards")),
        "hb_stations": request.config.getoption("--e7-hb-stations"),
    }


# ---------------------------------------------------------------------------
# Part 1: full-testbed scale sweep
# ---------------------------------------------------------------------------


def _run_scale(station_count: int, shard_count: int, clients_per_station: int, sim_duration_s: float = 30.0):
    testbed = GNFTestbed(
        TestbedConfig(station_count=station_count, heartbeat_interval_s=2.0, shard_count=shard_count)
    )
    clients = []
    for index in range(station_count * clients_per_station):
        station_index = index % station_count
        position = (station_index * testbed.config.station_spacing_m, 0.0)
        clients.append(testbed.add_client(f"client-{index}", position=position))
    testbed.start()
    testbed.run(1.0)
    assignments = [testbed.manager.attach_nf(client.ip, "firewall") for client in clients]
    testbed.run(sim_duration_s)

    manager = testbed.manager
    control = manager.control_plane_stats()
    total_messages = sum(stats["messages_delivered"] for stats in control.values())
    attach_latencies = [a.attach_latency_s for a in assignments if a.attach_latency_s is not None]
    return {
        "stations": station_count,
        "shards": shard_count,
        "clients": len(clients),
        "nfs_active": sum(1 for a in assignments if a.state.value == "active"),
        "heartbeats": manager.heartbeats_processed,
        "heartbeat_rate_per_s": manager.heartbeats_processed / (sim_duration_s + 1.0),
        "control_messages": total_messages,
        "mean_attach_latency_s": mean(attach_latencies),
        "online": len(manager.health.online_stations(testbed.simulator.now)),
    }


# ---------------------------------------------------------------------------
# Part 2: heartbeat-processing throughput, sharded vs single Manager
# ---------------------------------------------------------------------------


def _heartbeat_throughput(station_count: int, shard_count: int, rounds: int = 40):
    """Wall-clock heartbeats/second through the real control-plane transport.

    Registers one real Agent per station, pre-builds one heartbeat per
    station (the build cost is identical in both modes and not what sharding
    changes), then fires ``rounds`` network-wide heartbeat waves through the
    Agents' wired senders and runs the simulator dry after each wave.
    """
    simulator = Simulator()
    topology = EdgeTopology(simulator, TopologyConfig(station_count=station_count))
    repository = NFRepository.with_default_catalog()
    if shard_count > 1:
        manager = ShardedManager(
            simulator,
            shard_count=shard_count,
            station_count=station_count,
            repository=repository,
            topology=topology,
        )
    else:
        manager = GNFManager(simulator, repository=repository, topology=topology)
    senders = []
    for station_name, station in topology.stations.items():
        agent = GNFAgent(simulator, station, repository)
        manager.register_agent(agent)
        agent.stop()  # drive heartbeats manually; no periodic tasks in the timing
        heartbeat = AgentHeartbeat(
            station_name=station_name,
            time=0.0,
            resources=agent.runtime.utilization(),
            switch={},
            nf_stats={},
            connected_clients=[],
        )
        senders.append((agent._manager_heartbeat_sink, heartbeat))
    simulator.run()

    started = time.perf_counter()
    for _ in range(rounds):
        for sender, heartbeat in senders:
            sender(heartbeat)
        simulator.run()
    elapsed = time.perf_counter() - started
    processed = manager.heartbeats_processed
    assert processed == rounds * station_count
    return {
        "stations": station_count,
        "shards": shard_count,
        "heartbeats": processed,
        "wall_s": elapsed,
        "rate_per_s": processed / elapsed if elapsed > 0 else 0.0,
        "events": simulator.events_processed,
        "events_per_heartbeat": simulator.events_processed / processed,
    }


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------


def test_e7_manager_scalability(benchmark, record_experiment, e7_options):
    shard_counts = e7_options["shards"] or [1]

    def _run_experiment():
        # Full (stations x shards) sweep; a shard count above the station
        # count collapses to one shard per station.
        seen = set()
        scale_rows = []
        for count in e7_options["stations"]:
            for shards in shard_counts:
                key = (count, min(shards, count))
                if key in seen:
                    continue
                seen.add(key)
                scale_rows.append(_run_scale(key[0], key[1], e7_options["clients_per_station"]))
        throughput_rows = [
            _heartbeat_throughput(e7_options["hb_stations"], min(shards, e7_options["hb_stations"]))
            for shards in shard_counts
        ]
        return scale_rows, throughput_rows

    scale_rows, throughput_rows = run_once(benchmark, _run_experiment)

    result = ExperimentResult(
        experiment_id="E7",
        title="Manager scalability: stations, heartbeats, control traffic and attach latency",
        headers=[
            "stations", "shards", "clients", "active NFs", "heartbeats processed",
            "heartbeats/s", "control messages", "mean attach latency (s)", "stations online",
        ],
        paper_claim=(
            "The Manager keeps a connection with all Agents and continuously monitors "
            "health and resource utilization across the network"
        ),
    )
    for row in scale_rows:
        result.add_row(
            row["stations"], row["shards"], row["clients"], row["nfs_active"], row["heartbeats"],
            row["heartbeat_rate_per_s"], row["control_messages"],
            row["mean_attach_latency_s"], row["online"],
        )
    record_experiment(result)

    comparison = ExperimentResult(
        experiment_id="E7b",
        title=(
            f"Heartbeat-processing throughput at {e7_options['hb_stations']} stations: "
            "sharded ControlBus vs single Manager"
        ),
        headers=[
            "stations", "shards", "heartbeats", "wall (s)", "heartbeats/s", "sim events/heartbeat",
        ],
        paper_claim=(
            "Keeping a connection with all Agents must not serialise the control "
            "plane through one object as the network grows"
        ),
    )
    for row in throughput_rows:
        comparison.add_row(
            row["stations"], row["shards"], row["heartbeats"], f"{row['wall_s']:.3f}",
            f"{row['rate_per_s']:.0f}", f"{row['events_per_heartbeat']:.3f}",
        )
    record_experiment(comparison)

    # Every deployment succeeded and every agent stayed online at every scale.
    for row in scale_rows:
        assert row["nfs_active"] == row["clients"]
        assert row["online"] == row["stations"]
    # Control-plane load grows roughly linearly with the number of stations,
    # while attach latency stays flat (no central bottleneck in this regime).
    # Only meaningful when the CLI sweep actually spans multiple sizes.
    if scale_rows[-1]["stations"] > scale_rows[0]["stations"]:
        assert scale_rows[-1]["heartbeats"] > scale_rows[0]["heartbeats"]
        assert scale_rows[-1]["mean_attach_latency_s"] < 3 * scale_rows[0]["mean_attach_latency_s"]

    # The headline criterion: sharding + coalescing processes heartbeats at
    # >= 2x the single-Manager rate (wall clock; relax on noisy runners).
    # The baseline is the shards=1 row wherever it appears in --e7-shards;
    # without one (or without any sharded row) there is nothing to compare.
    baselines = [row for row in throughput_rows if row["shards"] == 1]
    sharded_rows = [row for row in throughput_rows if row["shards"] > 1]
    if baselines and sharded_rows:
        min_speedup = float(os.environ.get("E7_MIN_SPEEDUP", "2.0"))
        baseline = baselines[0]
        best = max(sharded_rows, key=lambda row: row["rate_per_s"])
        speedup = best["rate_per_s"] / baseline["rate_per_s"]
        print(
            f"\nE7b speedup: {speedup:.2f}x "
            f"({best['shards']} shards {best['rate_per_s']:.0f}/s vs "
            f"{baseline['shards']} shard(s) {baseline['rate_per_s']:.0f}/s)"
        )
        assert speedup >= min_speedup, (
            f"sharded heartbeat throughput {best['rate_per_s']:.0f}/s is only "
            f"{speedup:.2f}x the single-Manager {baseline['rate_per_s']:.0f}/s "
            f"(floor {min_speedup}x)"
        )
        # Coalescing is visible in the event ledger, not just the wall clock.
        assert best["events_per_heartbeat"] < baseline["events_per_heartbeat"]
