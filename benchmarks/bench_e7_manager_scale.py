"""E7 -- Manager / control-plane scalability.

Paper claim: the Manager keeps "a connection with all the Agents in the
network" and "continuously monitor[s] the health and resource utilization
from the GNF stations".  This experiment scales the number of stations and
clients and reports heartbeat processing, control-plane traffic, attach
latency under load and hotspot-detection coverage.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.analysis.stats import mean
from repro.core.testbed import GNFTestbed, TestbedConfig


def _run_scale(station_count: int, clients_per_station: int = 2, sim_duration_s: float = 30.0):
    testbed = GNFTestbed(TestbedConfig(station_count=station_count, heartbeat_interval_s=2.0))
    clients = []
    for index in range(station_count * clients_per_station):
        station_index = index % station_count
        position = (station_index * testbed.config.station_spacing_m, 0.0)
        clients.append(testbed.add_client(f"client-{index}", position=position))
    testbed.start()
    testbed.run(1.0)
    assignments = [testbed.manager.attach_nf(client.ip, "firewall") for client in clients]
    testbed.run(sim_duration_s)

    manager = testbed.manager
    control = manager.control_plane_stats()
    total_messages = sum(stats["messages_delivered"] for stats in control.values())
    attach_latencies = [a.attach_latency_s for a in assignments if a.attach_latency_s is not None]
    return {
        "stations": station_count,
        "clients": len(clients),
        "nfs_active": sum(1 for a in assignments if a.state.value == "active"),
        "heartbeats": manager.heartbeats_processed,
        "heartbeat_rate_per_s": manager.heartbeats_processed / (sim_duration_s + 1.0),
        "control_messages": total_messages,
        "mean_attach_latency_s": mean(attach_latencies),
        "online": len(manager.health.online_stations(testbed.simulator.now)),
    }


def _run_experiment():
    return [_run_scale(count) for count in (2, 4, 8)]


def test_e7_manager_scalability(benchmark, record_experiment):
    rows = run_once(benchmark, _run_experiment)
    result = ExperimentResult(
        experiment_id="E7",
        title="Manager scalability: stations, heartbeats, control traffic and attach latency",
        headers=[
            "stations", "clients", "active NFs", "heartbeats processed",
            "heartbeats/s", "control messages", "mean attach latency (s)", "stations online",
        ],
        paper_claim=(
            "The Manager keeps a connection with all Agents and continuously monitors "
            "health and resource utilization across the network"
        ),
    )
    for row in rows:
        result.add_row(
            row["stations"], row["clients"], row["nfs_active"], row["heartbeats"],
            row["heartbeat_rate_per_s"], row["control_messages"],
            row["mean_attach_latency_s"], row["online"],
        )
    record_experiment(result)

    # Every deployment succeeded and every agent stayed online at every scale.
    for row in rows:
        assert row["nfs_active"] == row["clients"]
        assert row["online"] == row["stations"]
    # Control-plane load grows roughly linearly with the number of stations,
    # while attach latency stays flat (no central bottleneck in this regime).
    assert rows[-1]["heartbeats"] > rows[0]["heartbeats"]
    assert rows[-1]["mean_attach_latency_s"] < 3 * rows[0]["mean_attach_latency_s"]
