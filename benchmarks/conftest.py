"""Shared fixtures for the benchmark harness.

Each benchmark module reproduces one experiment from DESIGN.md (E1..E9),
prints the paper-style result table and writes it to
``benchmarks/results/<experiment>.md`` so the numbers reported in
EXPERIMENTS.md can be regenerated at any time.
"""

from __future__ import annotations

import os
import sys

import pytest

# Make _bench_utils importable regardless of how pytest inserts paths.
sys.path.insert(0, os.path.dirname(__file__))

from _bench_utils import record_result  # noqa: E402


@pytest.fixture
def record_experiment():
    """Return a callable that prints and persists an ExperimentResult."""
    return record_result
