"""Shared fixtures for the benchmark harness.

Each benchmark module reproduces one experiment from DESIGN.md (E1..E9),
prints the paper-style result table and writes it to
``benchmarks/results/<experiment>.md`` so the numbers reported in
EXPERIMENTS.md can be regenerated at any time.
"""

from __future__ import annotations

import os
import sys

import pytest

# Make _bench_utils importable regardless of how pytest inserts paths.
sys.path.insert(0, os.path.dirname(__file__))

from _bench_utils import configure_json_dir, record_result  # noqa: E402


def pytest_addoption(parser):
    """CLI knobs for the parameterised experiments (benchmark E7/E10/E12)."""
    group = parser.getgroup("gnf-benchmarks")
    group.addoption(
        "--json",
        default=None,
        metavar="DIR",
        help="Also mirror every ExperimentResult as BENCH_<ID>.json under DIR",
    )
    group.addoption(
        "--e7-stations",
        default="2,4,8",
        help="Comma-separated station counts for the E7 scale sweep (default: 2,4,8)",
    )
    group.addoption(
        "--e7-clients-per-station",
        type=int,
        default=2,
        help="Clients per station in the E7 scale sweep (default: 2)",
    )
    group.addoption(
        "--e7-shards",
        default="1,8",
        help="Comma-separated shard counts for the E7 sweeps (default: 1,8)",
    )
    group.addoption(
        "--e7-hb-stations",
        type=int,
        default=512,
        help="Station count for the E7 heartbeat-throughput comparison (default: 512)",
    )
    group.addoption(
        "--e10-shards",
        default="1,4",
        help="Comma-separated shard counts for the E10 determinism matrix (default: 1,4)",
    )
    group.addoption(
        "--e11-crowd",
        type=int,
        default=0,
        help="Crowd size for the E11 placement bench (0 = the scenario's canonical 20)",
    )
    group.addoption(
        "--e13-loads",
        default="4,10,18",
        help="Comma-separated crowd sizes for the E13 embedding sweep (default: 4,10,18)",
    )
    group.addoption(
        "--e13-stations",
        type=int,
        default=10,
        help="Station count for the E13 embedding sweep (default: 10)",
    )
    group.addoption(
        "--e14-clients",
        type=int,
        default=1_000_000,
        help="Simulated client population for the E14 federation bench (default: 1000000)",
    )
    group.addoption(
        "--e14-stations",
        type=int,
        default=128,
        help="Station count for the E14 read-path and heartbeat sweeps (default: 128)",
    )
    group.addoption(
        "--e14-reads",
        type=int,
        default=20,
        help="Overview reads timed per mode in the E14 read-path comparison (default: 20)",
    )
    group.addoption(
        "--e14-rounds",
        type=int,
        default=40,
        help="Network-wide heartbeat waves per config in the E14 throughput sweep (default: 40)",
    )
    group.addoption(
        "--e14-regions",
        default="1,2,4",
        help="Comma-separated region counts for the E14 heartbeat sweep (default: 1,2,4)",
    )
    group.addoption(
        "--e14-hybrid-stations",
        type=int,
        default=32,
        help="Station count for the E14 hybrid-mode federated testbed leg (default: 32)",
    )
    group.addoption(
        "--e14-hybrid-duration",
        type=float,
        default=20.0,
        help="Simulated duration (s) for the E14 hybrid-mode leg (default: 20)",
    )
    group.addoption(
        "--e15-flows",
        type=int,
        default=24,
        help="Concurrent CBR flows growing the SMF session table in E15 (default: 24)",
    )
    group.addoption(
        "--e15-load-duration",
        type=float,
        default=20.0,
        help="Simulated seconds of load before the E15 upgrade fires (default: 20)",
    )
    group.addoption(
        "--e16-seed",
        type=int,
        default=0,
        help="Master seed for the E16 cache-placement ablation runs (default: 0)",
    )
    group.addoption(
        "--e16-gen-duration",
        type=float,
        default=30.0,
        help="Simulated seconds for the E16 generator events/flow leg (default: 30)",
    )
    group.addoption(
        "--e12-clients",
        type=int,
        default=0,
        help="Bulk-client count for the E12 hybrid-core bench (0 = the default 10000)",
    )
    group.addoption(
        "--e12-duration",
        type=float,
        default=0.0,
        help="Simulated duration (s) for the E12 hybrid-core bench (0 = the default 120)",
    )


def pytest_configure(config):
    configure_json_dir(config.getoption("--json"))


@pytest.fixture
def record_experiment():
    """Return a callable that prints and persists an ExperimentResult."""
    return record_result
