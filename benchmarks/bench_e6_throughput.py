"""E6 -- NF packet-processing throughput and chain-length overhead.

Paper claim: containers provide "high throughput and low resource
utilization".  The first part is a true micro-benchmark (wall-clock packets
per second through each NF's processing path); the second part measures, in
simulated time, how end-to-end request latency grows with the length of the
chain installed on a router-class station.

The fast-path section measures the flow-cached, batch-aware pipeline: the
same station datapath (switch + firewall + rate-limiter chain) is driven
with the fast path off (per-packet slow path, one scheduled event per hop)
and on (microflow cache hits + batched NF processing), reporting wall-clock
packets/sec and simulator events per packet for both.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from _bench_utils import record_result, run_once

from repro.analysis.report import ExperimentResult
from repro.analysis.stats import mean
from repro.core.chain import NFSpec, ServiceChain
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem import packet as pkt
from repro.netem.fastpath import PacketBatch
from repro.netem.trafficgen import CBRTrafficGenerator
from repro.nfs import NF_CATALOG
from repro.nfs.base import Direction, ProcessingContext

CLIENT = "10.10.0.5"
SERVER = "10.30.0.2"
PACKETS_PER_BATCH = 2000

_nf_throughput_rows = []


def _build_nf(nf_type: str):
    nf_class = NF_CATALOG[nf_type]
    if nf_type == "dns-loadbalancer":
        return nf_class(pools={"cdn.example.com": ["198.18.0.1", "198.18.0.2"]})
    if nf_type == "load-balancer":
        return nf_class(backends=["10.30.0.11", "10.30.0.12"])
    if nf_type == "rate-limiter":
        return nf_class(rate_bps=1e9, burst_bytes=1e9)
    return nf_class()


def _packet_batch():
    return [
        pkt.make_tcp_packet(CLIENT, SERVER, 40000 + (index % 500), 80, payload_bytes=512)
        for index in range(PACKETS_PER_BATCH)
    ]


@pytest.mark.parametrize("nf_type", sorted(NF_CATALOG))
def test_e6_per_nf_forwarding_rate(benchmark, nf_type):
    """Wall-clock packets/second through each NF's processing path."""
    nf = _build_nf(nf_type)
    batch = _packet_batch()
    context = ProcessingContext(now=0.0, direction=Direction.UPSTREAM, client_ip=CLIENT)

    def process_batch():
        # Each round processes fresh copies: several NFs (NAT, DNS LB) rewrite
        # headers in place, and re-feeding mutated packets would distort the
        # measurement (and exhaust NAT port bindings).
        for index, packet in enumerate(batch):
            context.now = index * 1e-4
            nf.process(packet.copy(), context)

    benchmark(process_batch)
    pps = PACKETS_PER_BATCH / benchmark.stats.stats.mean
    _nf_throughput_rows.append([nf_type, pps, nf.per_packet_cpu_us])
    assert nf.packets_in >= PACKETS_PER_BATCH


def _chain_latency(chain_length: int):
    testbed = GNFTestbed(TestbedConfig(station_count=1))
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    if chain_length:
        chain = ServiceChain.of(*(["firewall", "flow-monitor", "rate-limiter", "ids"][:chain_length]))
        testbed.manager.attach_chain(phone.ip, chain)
        testbed.run(6.0)
    probe = CBRTrafficGenerator(testbed.simulator, phone, server_ip=testbed.server_ip, rate_pps=50)
    probe.start()
    testbed.run(10.0)
    probe.stop()
    return mean(probe.rtts), testbed.simulator.now


def _run_chain_sweep():
    rows = []
    sim_seconds = 0.0
    started = time.perf_counter()
    for length in range(0, 5):
        rtt, sim_now = _chain_latency(length)
        rows.append([length, rtt])
        sim_seconds += sim_now
    wall_s = time.perf_counter() - started
    return rows, sim_seconds / wall_s if wall_s > 0 else 0.0


def _build_station_rig(fastpath_enabled: bool):
    """A one-station testbed with a firewall + rate-limiter chain deployed.

    The uplink interface is replaced by a sink so the measurement covers
    exactly the refactored station datapath (switch traversals + NF chain),
    not the gateway/core round trip.
    """
    testbed = GNFTestbed(TestbedConfig(station_count=1, fastpath_enabled=fastpath_enabled))
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    chain = ServiceChain(
        [
            NFSpec("firewall"),
            # High limits so the limiter's datapath runs without policing the
            # synthetic burst away.
            NFSpec("rate-limiter", config={"rate_bps": 1e9, "burst_bytes": 1e9}),
        ]
    )
    testbed.manager.attach_chain(client.ip, chain)
    testbed.run(6.0)
    station = testbed.topology.station("station-1")
    switch = station.switch
    uplink_iface = switch.ports[station.uplink_port].interface
    sunk = []
    def sink_one(packet):
        sunk.append(packet)
        return True

    def sink_many(packets):
        packets = list(packets)
        sunk.extend(packets)
        return len(packets)

    uplink_iface.send = sink_one
    uplink_iface.send_batch = sink_many
    cell_port = next(iter(station.cell_ports.values()))
    cell_iface = switch.ports[cell_port].interface
    return testbed, client, switch, cell_iface, sunk


def _drive_station_datapath(
    fastpath_enabled: bool,
    total_packets: int = 8192,
    batch_size: int = 64,
    flows: int = 64,
):
    """Push upstream client traffic through the station chain; measure wall clock."""
    testbed, client, switch, cell_iface, sunk = _build_station_rig(fastpath_enabled)
    # Start from a clean heap so earlier benchmarks' garbage does not skew
    # either configuration's wall-clock measurement.
    gc.collect()
    waves = []
    made = 0
    while made < total_packets:
        wave = [
            pkt.make_udp_packet(
                src_ip=client.ip,
                dst_ip=testbed.server_ip,
                src_port=40_000 + (made + index) % flows,
                dst_port=9000,
                payload_bytes=500,
                src_mac=client.mac,
            )
            for index in range(batch_size)
        ]
        made += len(wave)
        waves.append(wave)

    events_before = testbed.simulator.events_processed
    started = time.perf_counter()
    for wave in waves:
        if fastpath_enabled:
            switch.receive_batch(PacketBatch(wave), cell_iface)
        else:
            for packet in wave:
                switch.receive_packet(packet, cell_iface)
        testbed.run(0.01)
    wall_s = time.perf_counter() - started
    events = testbed.simulator.events_processed - events_before
    cache = switch.flow_cache
    return {
        "packets": made,
        "pps": made / wall_s,
        "events_per_packet": events / made,
        "delivered": len(sunk),
        "hit_rate": cache.hit_rate,
    }


def test_e6_fastpath_speedup(record_experiment):
    """Flow cache + batching must deliver >= 3x datapath packets/sec.

    ``E6_MIN_SPEEDUP`` relaxes the wall-clock floor on noisy shared runners
    (CI sets 2.0); the deterministic events-per-packet assertion is the
    mechanism proof and is never relaxed.
    """
    min_speedup = float(os.environ.get("E6_MIN_SPEEDUP", "3.0"))
    # Interpreter warm-up pass for each configuration, then best-of-3
    # measured runs per configuration (both treated identically) so a
    # scheduler hiccup in any single run cannot flip the wall-clock verdict.
    _drive_station_datapath(False, total_packets=2048)
    _drive_station_datapath(True, total_packets=2048)
    slow_path = max(
        (_drive_station_datapath(False) for _ in range(3)), key=lambda run: run["pps"]
    )
    fast_path = max(
        (_drive_station_datapath(True) for _ in range(3)), key=lambda run: run["pps"]
    )
    speedup = fast_path["pps"] / slow_path["pps"]

    result = ExperimentResult(
        experiment_id="E6-fastpath",
        title="Dataplane fast path: flow-cached + batched vs per-packet slow path",
        headers=["configuration", "packets/sec", "events/packet", "cache hit rate"],
        paper_claim="GNF processes traffic at line rate on edge hardware",
        notes=(
            f"station switch + firewall/rate-limiter chain, {slow_path['packets']} packets, "
            f"speedup {speedup:.2f}x"
        ),
    )
    result.add_row("fastpath off", slow_path["pps"], slow_path["events_per_packet"], 0.0)
    result.add_row("fastpath on", fast_path["pps"], fast_path["events_per_packet"], fast_path["hit_rate"])
    record_experiment(result)

    # Every injected packet made it through the chain in both configurations.
    assert slow_path["delivered"] == slow_path["packets"]
    assert fast_path["delivered"] == fast_path["packets"]
    # Steady-state flows hit the cache and the heap churn collapses.
    assert fast_path["hit_rate"] > 0.9
    assert fast_path["events_per_packet"] < slow_path["events_per_packet"] / 5
    assert speedup >= min_speedup, (
        f"fast path speedup {speedup:.2f}x below the {min_speedup}x target"
    )


def test_e6_chain_length_latency_overhead(benchmark, record_experiment):
    rows, sim_per_wall = run_once(benchmark, _run_chain_sweep)
    result = ExperimentResult(
        experiment_id="E6",
        title="Dataplane: per-NF forwarding rate and chain-length latency overhead",
        headers=["chain length (NFs)", "mean probe RTT (s)"],
        paper_claim="Container NFs provide high throughput with low per-packet overhead",
        notes=(
            f"sim-time/wall-time ratio {sim_per_wall:.1f}x across the probe sweep; "
            "RTT measured through a router-class station; the per-NF forwarding-rate "
            "micro-benchmarks are reported by pytest-benchmark in this module"
        ),
    )
    for row in rows:
        result.add_row(*row)
    if _nf_throughput_rows:
        result.notes += "; wall-clock forwarding rates (pps): " + ", ".join(
            f"{name}={rate:,.0f}" for name, rate, _ in sorted(_nf_throughput_rows)
        )
    record_experiment(result)

    baseline_rtt = rows[0][1]
    longest_rtt = rows[-1][1]
    # Chains add overhead, but it stays within the same order of magnitude as
    # the bare path (the "lightweight" claim).
    assert longest_rtt >= baseline_rtt
    assert longest_rtt < 3 * baseline_rtt
