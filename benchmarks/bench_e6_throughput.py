"""E6 -- NF packet-processing throughput and chain-length overhead.

Paper claim: containers provide "high throughput and low resource
utilization".  The first part is a true micro-benchmark (wall-clock packets
per second through each NF's processing path); the second part measures, in
simulated time, how end-to-end request latency grows with the length of the
chain installed on a router-class station.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result, run_once

from repro.analysis.report import ExperimentResult
from repro.analysis.stats import mean
from repro.core.chain import ServiceChain
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem import packet as pkt
from repro.netem.trafficgen import CBRTrafficGenerator
from repro.nfs import NF_CATALOG
from repro.nfs.base import Direction, ProcessingContext

CLIENT = "10.10.0.5"
SERVER = "10.30.0.2"
PACKETS_PER_BATCH = 2000

_nf_throughput_rows = []


def _build_nf(nf_type: str):
    nf_class = NF_CATALOG[nf_type]
    if nf_type == "dns-loadbalancer":
        return nf_class(pools={"cdn.example.com": ["198.18.0.1", "198.18.0.2"]})
    if nf_type == "load-balancer":
        return nf_class(backends=["10.30.0.11", "10.30.0.12"])
    if nf_type == "rate-limiter":
        return nf_class(rate_bps=1e9, burst_bytes=1e9)
    return nf_class()


def _packet_batch():
    return [
        pkt.make_tcp_packet(CLIENT, SERVER, 40000 + (index % 500), 80, payload_bytes=512)
        for index in range(PACKETS_PER_BATCH)
    ]


@pytest.mark.parametrize("nf_type", sorted(NF_CATALOG))
def test_e6_per_nf_forwarding_rate(benchmark, nf_type):
    """Wall-clock packets/second through each NF's processing path."""
    nf = _build_nf(nf_type)
    batch = _packet_batch()
    context = ProcessingContext(now=0.0, direction=Direction.UPSTREAM, client_ip=CLIENT)

    def process_batch():
        # Each round processes fresh copies: several NFs (NAT, DNS LB) rewrite
        # headers in place, and re-feeding mutated packets would distort the
        # measurement (and exhaust NAT port bindings).
        for index, packet in enumerate(batch):
            context.now = index * 1e-4
            nf.process(packet.copy(), context)

    benchmark(process_batch)
    pps = PACKETS_PER_BATCH / benchmark.stats.stats.mean
    _nf_throughput_rows.append([nf_type, pps, nf.per_packet_cpu_us])
    assert nf.packets_in >= PACKETS_PER_BATCH


def _chain_latency(chain_length: int) -> float:
    testbed = GNFTestbed(TestbedConfig(station_count=1))
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    if chain_length:
        chain = ServiceChain.of(*(["firewall", "flow-monitor", "rate-limiter", "ids"][:chain_length]))
        testbed.manager.attach_chain(phone.ip, chain)
        testbed.run(6.0)
    probe = CBRTrafficGenerator(testbed.simulator, phone, server_ip=testbed.server_ip, rate_pps=50)
    probe.start()
    testbed.run(10.0)
    probe.stop()
    return mean(probe.rtts)


def _run_chain_sweep():
    return [[length, _chain_latency(length)] for length in range(0, 5)]


def test_e6_chain_length_latency_overhead(benchmark, record_experiment):
    rows = run_once(benchmark, _run_chain_sweep)
    result = ExperimentResult(
        experiment_id="E6",
        title="Dataplane: per-NF forwarding rate and chain-length latency overhead",
        headers=["chain length (NFs)", "mean probe RTT (s)"],
        paper_claim="Container NFs provide high throughput with low per-packet overhead",
        notes=(
            "RTT measured through a router-class station; the per-NF forwarding-rate "
            "micro-benchmarks are reported by pytest-benchmark in this module"
        ),
    )
    for row in rows:
        result.add_row(*row)
    if _nf_throughput_rows:
        result.notes += "; wall-clock forwarding rates (pps): " + ", ".join(
            f"{name}={rate:,.0f}" for name, rate, _ in sorted(_nf_throughput_rows)
        )
    record_experiment(result)

    baseline_rtt = rows[0][1]
    longest_rtt = rows[-1][1]
    # Chains add overhead, but it stays within the same order of magnitude as
    # the bare path (the "lightweight" claim).
    assert longest_rtt >= baseline_rtt
    assert longest_rtt < 3 * baseline_rtt
