"""E2 -- NF instantiation latency: containers vs VMs, warm vs cold.

Paper claims: containers "provide fast instantiation time"; "New NFs can be
attached in seconds"; VM-based NFV is "resource-hungry" and unsuitable for
the edge.  This experiment measures, for the demo's NF types, the time from
requesting an NF until it is running, on router-class and server-class
stations, with and without the image already cached, and compares against the
VM baseline.
"""

from __future__ import annotations

from _bench_utils import record_result, run_once

from repro.analysis.report import ExperimentResult
from repro.baselines.vm_nfv import VMNFVBaseline
from repro.containers.cgroups import ResourceAccount
from repro.containers.runtime import ContainerRuntime, RuntimeTimings
from repro.core.repository import NFRepository
from repro.netem.simulator import Simulator
from repro.netem.topology import StationProfile

NF_TYPES = ("firewall", "http-filter", "dns-loadbalancer")
PULL_BANDWIDTH_BPS = 100e6


def _container_runtime(simulator: Simulator, profile: StationProfile, repository: NFRepository) -> ContainerRuntime:
    resources = ResourceAccount(
        cpu_mhz=profile.cpu_mhz,
        memory_mb=profile.memory_mb,
        system_reserved_mb=min(48.0, profile.memory_mb * 0.3),
    )
    return ContainerRuntime(
        simulator,
        name=f"bench-{profile.name}",
        resources=resources,
        registry=repository.registry,
        timings=RuntimeTimings.for_station_profile(profile.name),
        pull_bandwidth_bps=PULL_BANDWIDTH_BPS,
    )


def _measure_container(profile: StationProfile, nf_type: str, warm: bool) -> float:
    simulator = Simulator()
    repository = NFRepository.with_default_catalog()
    runtime = _container_runtime(simulator, profile, repository)
    entry = repository.lookup(nf_type)
    if warm:
        runtime.cache_image(entry.image)
    image, pull_time = runtime.ensure_image(entry.image_reference)
    container = runtime.create(image, f"{nf_type}-bench")
    boot_time = runtime.start(container)
    simulator.run()
    assert container.is_running
    return pull_time + boot_time


def _measure_vm(nf_type: str, warm: bool) -> float:
    simulator = Simulator()
    platform = VMNFVBaseline(simulator, profile=StationProfile.server_class(), pull_bandwidth_bps=PULL_BANDWIDTH_BPS)
    _, latency = platform.instantiate(nf_type, warm=warm)
    simulator.run()
    return latency


def _run_experiment():
    rows = []
    for nf_type in NF_TYPES:
        for profile in (StationProfile.router_class(), StationProfile.server_class()):
            for warm in (True, False):
                latency = _measure_container(profile, nf_type, warm)
                rows.append(
                    [nf_type, f"container ({profile.name})", "warm" if warm else "cold", latency]
                )
        for warm in (True, False):
            rows.append([nf_type, "VM (server-class)", "warm" if warm else "cold", _measure_vm(nf_type, warm)])
    return rows


def test_e2_instantiation_latency(benchmark, record_experiment):
    rows = run_once(benchmark, _run_experiment)
    result = ExperimentResult(
        experiment_id="E2",
        title="NF instantiation latency -- containers vs VMs, warm vs cold images",
        headers=["nf", "platform", "image cache", "instantiation latency (s)"],
        paper_claim=(
            "Containers provide fast instantiation time; new NFs can be attached in seconds, "
            "while VM-based platforms need tens of seconds"
        ),
        notes="cold = image pulled from the central repository over a 100 Mbps backhaul",
    )
    for row in rows:
        result.add_row(*row)
    record_experiment(result)

    container_warm = [row[3] for row in rows if row[1].startswith("container") and row[2] == "warm"]
    container_cold = [row[3] for row in rows if row[1].startswith("container") and row[2] == "cold"]
    vm_warm = [row[3] for row in rows if row[1].startswith("VM") and row[2] == "warm"]
    # Shape of the paper's comparison: containers boot in well under a second
    # warm and within seconds cold; VMs need tens of seconds.
    assert max(container_warm) < 1.5
    assert max(container_cold) < 5.0
    assert min(vm_warm) > 10.0
    assert min(vm_warm) > 10 * max(container_warm)
