"""E14 -- Federated control plane at fleet scale: streaming rollups vs scans.

Paper claim: GNF targets "edge clouds ... handling millions of users".  One
region's ShardedManager (E7) scales the heartbeat path; an operator fleet
adds a federation tier on top.  This experiment measures what the tier buys:

1. **Read path at population scale** -- a federation of 4 regions x 8 shards
   carries a million-client directory (``--e14-clients``); the streaming
   rollup ``overview()`` is timed against the brute-force
   ``full_scan_overview()`` that recomputes the same summary from
   per-station / per-assignment state.  The two must be *equal* (the
   equivalence gate) and the rollup must read >= 5x faster
   (``E14_MIN_SPEEDUP``).
2. **Heartbeat throughput scaling with regions** -- the E7b harness one tier
   up: a fixed station fleet fires pre-built heartbeat waves through the
   real federation bus at region counts ``--e14-regions`` (x8 shards each),
   against a single unsharded Manager baseline.  The best federated config
   must process heartbeats >= 2x the baseline rate (``E14_MIN_SCALING``).
3. **Hybrid-mode federated testbed** -- a real ``GNFTestbed`` at 4 regions x
   8 shards in ``simulation_mode="hybrid"``: full agents, radios and chain
   deployments, asserting the rollup stays byte-equal to the full scan with
   the whole stack live.

CLI knobs (see ``benchmarks/conftest.py``)::

    pytest benchmarks/bench_e14_federation.py \
        --e14-clients 1000000 --e14-stations 128 --e14-regions 1,2,4
"""

from __future__ import annotations

import gc
import os
import time

import pytest
from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.core.agent import GNFAgent
from repro.core.api import AgentHeartbeat, ClientEvent
from repro.core.chain import ServiceChain
from repro.core.federation import FederatedManager
from repro.core.manager import GNFManager
from repro.core.repository import NFRepository
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.simulator import Simulator
from repro.netem.topology import EdgeTopology, TopologyConfig

REGIONS = 4
SHARDS_PER_REGION = 8


@pytest.fixture
def e14_options(request):
    return {
        "clients": request.config.getoption("--e14-clients"),
        "stations": request.config.getoption("--e14-stations"),
        "reads": request.config.getoption("--e14-reads"),
        "rounds": request.config.getoption("--e14-rounds"),
        "regions": [
            int(part)
            for part in str(request.config.getoption("--e14-regions")).split(",")
            if part.strip()
        ],
        "hybrid_stations": request.config.getoption("--e14-hybrid-stations"),
        "hybrid_duration": request.config.getoption("--e14-hybrid-duration"),
    }


def _build_federation(station_count: int, region_count: int, shards_per_region: int):
    """A federation over real registered Agents (periodic tasks stopped, so
    heartbeats are driven manually and the timing loops stay pure)."""
    simulator = Simulator()
    topology = EdgeTopology(simulator, TopologyConfig(station_count=station_count))
    repository = NFRepository.with_default_catalog()
    if region_count > 1 or shards_per_region > 1:
        manager = FederatedManager(
            simulator,
            region_count=region_count,
            shards_per_region=shards_per_region,
            station_count=station_count,
            repository=repository,
            topology=topology,
        )
    else:
        manager = GNFManager(simulator, repository=repository, topology=topology)
    senders = []
    for station_name, station in topology.stations.items():
        agent = GNFAgent(simulator, station, repository)
        manager.register_agent(agent)
        agent.stop()
        heartbeat = AgentHeartbeat(
            station_name=station_name,
            time=0.0,
            resources=agent.runtime.utilization(),
            switch={},
            nf_stats={},
            connected_clients=[],
        )
        senders.append((agent._manager_heartbeat_sink, heartbeat))
    simulator.run()
    return simulator, topology, manager, senders


# ---------------------------------------------------------------------------
# Part 1: overview() vs full_scan_overview() under a million-client directory
# ---------------------------------------------------------------------------


def _read_path_comparison(client_count: int, station_count: int, reads: int):
    simulator, topology, manager, senders = _build_federation(
        station_count, REGIONS, SHARDS_PER_REGION
    )
    station_names = list(topology.stations)
    # One heartbeat wave so every station is online in both views.
    for sender, heartbeat in senders:
        sender(heartbeat)
    simulator.run()

    # Pour the client population into the directory through the real
    # delivery path (region + shard directories and the rollup counters all
    # see every event, exactly as live Agents would report them).
    ingest_started = time.perf_counter()
    for index in range(client_count):
        station = station_names[index % station_count]
        manager.receive_client_event(
            ClientEvent(
                station_name=station,
                client_ip=f"10.{(index >> 16) & 255}.{(index >> 8) & 255}.{index & 255}",
                client_name=f"client-{index}",
                cell_name=f"{station}-cell1",
                event="connected",
                time=simulator.now,
            )
        )
    ingest_s = time.perf_counter() - ingest_started
    simulator.run()

    # A slice of real chain deployments so the active-assignment counters
    # have something to mirror (4 per station: comfortably within every
    # station profile's admission capacity).
    attach_count = min(4 * station_count, client_count)
    for index in range(attach_count):
        station = station_names[index % station_count]
        manager.attach_chain(
            f"10.{(index >> 16) & 255}.{(index >> 8) & 255}.{index & 255}",
            ServiceChain.of("firewall"),
            station_name=station,
        )
    simulator.run()

    # The equivalence gate: the streaming summary IS the scanned summary.
    streamed, scanned = manager.overview(), manager.full_scan_overview()
    assert streamed == scanned, {
        key: (streamed[key], scanned[key])
        for key in streamed
        if streamed[key] != scanned[key]
    }
    assert streamed["connected_clients"] == client_count
    assert streamed["active_assignments"] == attach_count

    gc.collect()
    started = time.perf_counter()
    for _ in range(reads):
        manager.overview()
    rollup_s = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(reads):
        manager.full_scan_overview()
    scan_s = time.perf_counter() - started
    return {
        "clients": client_count,
        "stations": station_count,
        "assignments": attach_count,
        "reads": reads,
        "ingest_s": ingest_s,
        "ingest_rate_per_s": client_count / ingest_s if ingest_s > 0 else 0.0,
        "rollup_read_ms": rollup_s * 1000.0 / reads,
        "scan_read_ms": scan_s * 1000.0 / reads,
        "speedup": (scan_s / rollup_s) if rollup_s > 0 else float("inf"),
    }


# ---------------------------------------------------------------------------
# Part 2: heartbeat throughput scaling with region count
# ---------------------------------------------------------------------------


def _heartbeat_throughput(station_count: int, region_count: int, rounds: int):
    """Wall-clock heartbeats/second through the real transport.

    ``region_count == 0`` is the unsharded single-Manager baseline; every
    other config is a federation of ``region_count`` regions x 8 shards."""
    shards = 0 if region_count == 0 else SHARDS_PER_REGION
    simulator, _, manager, senders = _build_federation(
        station_count, max(region_count, 1), shards or 1
    )
    gc.collect()
    started = time.perf_counter()
    for _ in range(rounds):
        for sender, heartbeat in senders:
            sender(heartbeat)
        simulator.run()
    elapsed = time.perf_counter() - started
    processed = manager.heartbeats_processed
    assert processed == rounds * station_count
    return {
        "regions": region_count,
        "total_shards": 0 if region_count == 0 else region_count * SHARDS_PER_REGION,
        "stations": station_count,
        "heartbeats": processed,
        "wall_s": elapsed,
        "rate_per_s": processed / elapsed if elapsed > 0 else 0.0,
        "events": simulator.events_processed,
    }


# ---------------------------------------------------------------------------
# Part 3: the full stack, hybrid mode, 4 regions x 8 shards
# ---------------------------------------------------------------------------


def _hybrid_leg(station_count: int, duration_s: float):
    testbed = GNFTestbed(
        TestbedConfig(
            station_count=station_count,
            region_count=min(REGIONS, station_count),
            shard_count=SHARDS_PER_REGION,
            simulation_mode="hybrid",
            heartbeat_interval_s=2.0,
        )
    )
    clients = [
        testbed.add_client(
            f"client-{index}",
            position=((index % station_count) * testbed.config.station_spacing_m, 0.0),
        )
        for index in range(station_count)
    ]
    testbed.start()
    testbed.run(1.0)
    assignments = [testbed.manager.attach_nf(client.ip, "firewall") for client in clients]
    testbed.run(duration_s)
    manager = testbed.manager
    assert isinstance(manager, FederatedManager)
    streamed, scanned = manager.overview(), manager.full_scan_overview()
    assert streamed == scanned
    return {
        "stations": station_count,
        "regions": manager.region_count,
        "shards": manager.total_shard_count,
        "clients": len(clients),
        "active": sum(1 for a in assignments if a.state.value == "active"),
        "heartbeats": manager.heartbeats_processed,
        "online": len(streamed["online_stations"]),
    }


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------


def test_e14_federated_rollups(benchmark, record_experiment, e14_options):
    def _run_experiment():
        # Timing-sensitive sweep first: the million-client directory built
        # by the read-path part would otherwise stretch GC pauses into the
        # heartbeat wall clocks.
        throughput_rows = [
            _heartbeat_throughput(e14_options["stations"], 0, e14_options["rounds"])
        ] + [
            _heartbeat_throughput(e14_options["stations"], regions, e14_options["rounds"])
            for regions in e14_options["regions"]
        ]
        read_row = _read_path_comparison(
            e14_options["clients"], e14_options["stations"], e14_options["reads"]
        )
        hybrid_row = _hybrid_leg(
            e14_options["hybrid_stations"], e14_options["hybrid_duration"]
        )
        return read_row, throughput_rows, hybrid_row

    read_row, throughput_rows, hybrid_row = run_once(benchmark, _run_experiment)

    result = ExperimentResult(
        experiment_id="E14",
        title=(
            f"Federated rollup reads at {read_row['clients']} clients "
            f"({REGIONS} regions x {SHARDS_PER_REGION} shards)"
        ),
        headers=[
            "clients", "stations", "reads", "directory ingest/s",
            "rollup read (ms)", "full scan (ms)", "speedup",
        ],
        paper_claim=(
            "GNF targets edge clouds handling millions of users; fleet-wide "
            "monitoring must not rescan every station and assignment per read"
        ),
    )
    result.add_row(
        read_row["clients"], read_row["stations"], read_row["reads"],
        f"{read_row['ingest_rate_per_s']:.0f}",
        f"{read_row['rollup_read_ms']:.4f}", f"{read_row['scan_read_ms']:.3f}",
        f"{read_row['speedup']:.1f}x",
    )
    record_experiment(result)

    comparison = ExperimentResult(
        experiment_id="E14b",
        title=(
            f"Heartbeat throughput at {e14_options['stations']} stations: "
            f"region sweep (x{SHARDS_PER_REGION} shards) vs single Manager"
        ),
        headers=["regions", "total shards", "heartbeats", "wall (s)", "heartbeats/s"],
        paper_claim=(
            "Continuous fleet-wide monitoring has to scale out across regions, "
            "not serialise through one control object"
        ),
    )
    for row in throughput_rows:
        comparison.add_row(
            row["regions"] or "0 (single)", row["total_shards"], row["heartbeats"],
            f"{row['wall_s']:.3f}", f"{row['rate_per_s']:.0f}",
        )
    record_experiment(comparison)

    hybrid = ExperimentResult(
        experiment_id="E14c",
        title="Hybrid-mode federated testbed: full stack, rollups == scans",
        headers=["stations", "regions", "shards", "clients", "active NFs", "heartbeats", "online"],
        paper_claim="The federation tier composes with the hybrid simulation core",
    )
    hybrid.add_row(
        hybrid_row["stations"], hybrid_row["regions"], hybrid_row["shards"],
        hybrid_row["clients"], hybrid_row["active"], hybrid_row["heartbeats"],
        hybrid_row["online"],
    )
    record_experiment(hybrid)

    # Headline criterion 1: the streaming rollup reads >= 5x faster than the
    # brute-force scan at population scale (relax on tiny smoke fleets).
    min_speedup = float(os.environ.get("E14_MIN_SPEEDUP", "5.0"))
    assert read_row["speedup"] >= min_speedup, (
        f"rollup overview() is only {read_row['speedup']:.2f}x faster than "
        f"full_scan_overview() (floor {min_speedup}x)"
    )
    # Headline criterion 2: the federated control plane processes heartbeats
    # >= 2x the single-Manager rate (wall clock; relax on noisy runners).
    min_scaling = float(os.environ.get("E14_MIN_SCALING", "2.0"))
    baseline = throughput_rows[0]
    best = max(throughput_rows[1:], key=lambda row: row["rate_per_s"])
    scaling = best["rate_per_s"] / baseline["rate_per_s"]
    print(
        f"\nE14b scaling: {scaling:.2f}x "
        f"({best['regions']} regions {best['rate_per_s']:.0f}/s vs "
        f"single Manager {baseline['rate_per_s']:.0f}/s)"
    )
    assert scaling >= min_scaling, (
        f"federated heartbeat throughput {best['rate_per_s']:.0f}/s is only "
        f"{scaling:.2f}x the single-Manager {baseline['rate_per_s']:.0f}/s "
        f"(floor {min_scaling}x)"
    )
    # The hybrid leg really ran federated with everything alive.
    assert hybrid_row["active"] == hybrid_row["clients"]
    assert hybrid_row["online"] == hybrid_row["stations"]
