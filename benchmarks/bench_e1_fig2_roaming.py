"""E1 -- Fig. 2: the roaming demo.

A smartphone with the demo's NF chain (firewall, HTTP filter, DNS load
balancer) roams from one wireless network to the other; its NFs migrate with
it and keep enforcing policy.  This regenerates the figure's storyline as a
table: where the NFs ran before/after, how long the migration took and that
the service stayed consistent.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.core.chain import NFSpec, ServiceChain
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import DNSWorkloadGenerator, HTTPWorkloadGenerator
from repro.wireless.mobility import LinearMobility


def _run_demo():
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy="cold"))
    phone = testbed.add_client("smartphone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)

    chain = ServiceChain(
        [
            NFSpec("firewall"),
            NFSpec("http-filter", config={"blocked_hosts": ["blocked.example.com"]}),
            NFSpec("dns-loadbalancer", config={"pools": {"cdn.example.com": ["198.18.0.1", "198.18.0.2"]}}),
        ],
        name="demo-chain",
    )
    assignment = testbed.ui.attach_chain(phone.ip, chain)
    testbed.run(8.0)
    # Captured now: later migrations update the assignment's activation time.
    attach_latency_s = assignment.attach_latency_s

    web = HTTPWorkloadGenerator(
        testbed.simulator, phone, server_ip=testbed.server_ip,
        sites=["blocked.example.com", "news.example.org"], mean_think_time_s=0.5,
    )
    dns = DNSWorkloadGenerator(
        testbed.simulator, phone, resolver_ip=testbed.server_ip,
        names=["cdn.example.com"], query_interval_s=1.0,
    )
    web.start()
    dns.start()
    testbed.run(10.0)

    station1_nf_packets = sum(
        d.packets_processed
        for d in testbed.agents["station-1"].deployment_for_client(phone.ip).deployed_nfs
    )
    blocked_before = web.pages_blocked

    LinearMobility(testbed.simulator, phone, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    testbed.run(40.0)
    testbed.run(15.0)

    record = testbed.roaming.records[0]
    new_deployment = testbed.agents["station-2"].deployment_for_client(phone.ip)
    station2_nf_packets = sum(d.packets_processed for d in new_deployment.deployed_nfs)
    return {
        "testbed": testbed,
        "assignment": assignment,
        "record": record,
        "handover": testbed.handover.events[0],
        "station1_nf_packets": station1_nf_packets,
        "station2_nf_packets": station2_nf_packets,
        "blocked_before": blocked_before,
        "blocked_after": web.pages_blocked,
        "attach_latency_s": attach_latency_s,
        "station1_containers": testbed.ui.station_view("station-1")["resources"]["containers_running"],
        "station2_containers": testbed.ui.station_view("station-2")["resources"]["containers_running"],
    }


def test_e1_fig2_roaming_demo(benchmark, record_experiment):
    outcome = run_once(benchmark, _run_demo)
    record = outcome["record"]
    handover = outcome["handover"]

    result = ExperimentResult(
        experiment_id="E1",
        title="Fig. 2 roaming demo -- NFs seamlessly migrate with the client",
        headers=["metric", "value"],
        paper_claim=(
            "When a client roams between networks, associated NFs seamlessly "
            "migrate with it (Fig. 2); NFs can be attached in seconds"
        ),
    )
    result.add_row("chain attach latency (s)", outcome["attach_latency_s"])
    result.add_row("handover interruption (s)", handover.interruption_s)
    result.add_row("migration strategy", record.strategy)
    result.add_row("migration succeeded", record.success)
    result.add_row("NF coverage gap after handover (s)", record.coverage_gap_s)
    result.add_row("NF packets processed at station-1 (before roam)", outcome["station1_nf_packets"])
    result.add_row("NF packets processed at station-2 (after roam)", outcome["station2_nf_packets"])
    result.add_row("blocked pages before roam", outcome["blocked_before"])
    result.add_row("blocked pages after roam", outcome["blocked_after"])
    result.add_row("containers on station-1 after roam", outcome["station1_containers"])
    result.add_row("containers on station-2 after roam", outcome["station2_containers"])
    record_experiment(result)

    assert record.success
    assert outcome["station2_nf_packets"] > 0
    assert outcome["blocked_after"] > outcome["blocked_before"]
    assert outcome["station1_containers"] == 0
    assert outcome["station2_containers"] == 3
