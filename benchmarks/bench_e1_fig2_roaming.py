"""E1 -- Fig. 2: the roaming demo, driven by the declarative scenario engine.

A smartphone with the demo's NF chain (firewall, HTTP filter, DNS load
balancer) roams from one wireless network to the other; its NFs migrate with
it and keep enforcing policy.  The whole storyline -- topology, client,
workloads, chain, walk -- is the canned ``fig2-roaming`` scenario spec; this
module only advances it in phases to capture the before/after measurements
and regenerates the figure's table.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.scenarios import ScenarioRunner, build_scenario


def _run_demo():
    # The demo is a canned scenario; phased advancing replaces the bespoke
    # testbed wiring this benchmark used to carry.
    spec = build_scenario("fig2-roaming", seed=0)
    run = ScenarioRunner(spec).start()
    testbed = run.testbed

    # Phase 1: chain attached at t=1, active well before the traffic starts.
    run.advance(9.0)
    phone = testbed.clients["smartphone-1"]
    assignment = run.assignments[0][1]
    # Captured now: later migrations update the assignment's activation time.
    attach_latency_s = assignment.attach_latency_s

    # Phase 2: browsing+DNS through the chain at station-1 (walk starts t=19).
    run.advance(10.0)
    web = run.generators["smartphone-1/http0"]
    station1_nf_packets = sum(
        d.packets_processed
        for d in testbed.agents["station-1"].deployment_for_client(phone.ip).deployed_nfs
    )
    blocked_before = web.pages_blocked

    # Phase 3: the walk, the handover and the migration play out.
    run.advance(spec.duration_s - 19.0)

    record = testbed.roaming.records[0]
    new_deployment = testbed.agents["station-2"].deployment_for_client(phone.ip)
    station2_nf_packets = sum(d.packets_processed for d in new_deployment.deployed_nfs)
    outcome = {
        "assignment": assignment,
        "record": record,
        "handover": testbed.handover.events[0],
        "station1_nf_packets": station1_nf_packets,
        "station2_nf_packets": station2_nf_packets,
        "blocked_before": blocked_before,
        "blocked_after": web.pages_blocked,
        "attach_latency_s": attach_latency_s,
        "station1_containers": testbed.ui.station_view("station-1")["resources"]["containers_running"],
        "station2_containers": testbed.ui.station_view("station-2")["resources"]["containers_running"],
    }
    result = run.finalize()
    outcome["digest"] = result.digest
    outcome["drained"] = result.drained
    return outcome


def test_e1_fig2_roaming_demo(benchmark, record_experiment):
    outcome = run_once(benchmark, _run_demo)
    record = outcome["record"]
    handover = outcome["handover"]

    result = ExperimentResult(
        experiment_id="E1",
        title="Fig. 2 roaming demo -- NFs seamlessly migrate with the client",
        headers=["metric", "value"],
        paper_claim=(
            "When a client roams between networks, associated NFs seamlessly "
            "migrate with it (Fig. 2); NFs can be attached in seconds"
        ),
        notes=f"scenario fig2-roaming seed 0, metrics digest {outcome['digest'].short}...",
    )
    result.add_row("chain attach latency (s)", outcome["attach_latency_s"])
    result.add_row("handover interruption (s)", handover.interruption_s)
    result.add_row("migration strategy", record.strategy)
    result.add_row("migration succeeded", record.success)
    result.add_row("NF coverage gap after handover (s)", record.coverage_gap_s)
    result.add_row("NF packets processed at station-1 (before roam)", outcome["station1_nf_packets"])
    result.add_row("NF packets processed at station-2 (after roam)", outcome["station2_nf_packets"])
    result.add_row("blocked pages before roam", outcome["blocked_before"])
    result.add_row("blocked pages after roam", outcome["blocked_after"])
    result.add_row("containers on station-1 after roam", outcome["station1_containers"])
    result.add_row("containers on station-2 after roam", outcome["station2_containers"])
    record_experiment(result)

    assert record.success
    assert outcome["drained"]
    assert outcome["station2_nf_packets"] > 0
    assert outcome["blocked_after"] > outcome["blocked_before"]
    assert outcome["station1_containers"] == 0
    assert outcome["station2_containers"] == 3
