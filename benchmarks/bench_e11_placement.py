"""E11 -- Placement strategies under flash-crowd load (hotspot-stadium).

Twenty clients mob one router-class station of a four-station deployment
and all want firewall + flow-monitor chains -- roughly 2.5x what the
station can host.  The paper's closest-agent rule piles every chain onto
the hotspot and most deployments die at the runtime's admission check; the
load-aware strategies (least-loaded / latency-weighted / bin-packing)
prefer the client's station only until it loads up, then spill to the
lightly loaded neighbours.

Reported per strategy: chains admitted (reached ACTIVE), chains failed,
attach->active latency (mean / p95), off-station placements and distinct
host stations.  Asserts that least-loaded and bin-packing sustain at least
``E11_MIN_RATIO`` (default 1.5) times the admitted-chain count of
closest-agent.  ``--e11-crowd N`` shrinks the crowd for smoke runs (CI uses
a tiny fleet with ``E11_MIN_RATIO=1.0`` so the bench cannot rot).
"""

from __future__ import annotations

import os

import pytest
from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.core.manager import AssignmentState
from repro.scenarios import ScenarioRunner, build_scenario

SEED = 0
STRATEGIES = ("closest-agent", "least-loaded", "latency-weighted", "bin-packing")
MIN_RATIO = float(os.environ.get("E11_MIN_RATIO", "1.5"))


@pytest.fixture
def e11_crowd(request):
    return int(request.config.getoption("--e11-crowd"))


def _percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_strategy(strategy: str, crowd: int):
    spec = build_scenario("hotspot-stadium", SEED)
    if crowd:
        spec.fleet("crowd").count = crowd
    result = ScenarioRunner(spec).run(placement_strategy=strategy)
    assignments = list(result.testbed.manager.assignments.values())
    active = [a for a in assignments if a.state is AssignmentState.ACTIVE]
    failed = [a for a in assignments if a.state is AssignmentState.FAILED]
    latencies = [a.attach_latency_s for a in active if a.attach_latency_s is not None]
    return {
        "strategy": strategy,
        "attached": len(assignments),
        "admitted": len(active),
        "failed": len(failed),
        "mean_latency_s": sum(latencies) / len(latencies) if latencies else 0.0,
        "p95_latency_s": _percentile(latencies, 0.95),
        "remote": int(result.placement_stats["remote_placements"]),
        "stations_used": len({a.station_name for a in active}),
        "drained": result.drained,
    }


def test_e11_placement_strategies_under_flash_crowd(benchmark, record_experiment, e11_crowd):
    rows = run_once(benchmark, lambda: [_run_strategy(s, e11_crowd) for s in STRATEGIES])
    result = ExperimentResult(
        experiment_id="E11",
        title="Placement strategies under flash-crowd load (hotspot-stadium)",
        headers=[
            "strategy", "attached", "admitted", "failed",
            "mean attach (s)", "p95 attach (s)", "off-station", "stations used",
        ],
        paper_claim=(
            "The Manager chooses where container NFs run; load-aware "
            "placement keeps admitting chains after the closest station "
            "saturates"
        ),
        notes=(
            "admitted = assignments that reached ACTIVE; closest-agent "
            "dispatches every chain to the mobbed station, where the "
            "container runtime rejects what no longer fits"
        ),
    )
    for row in rows:
        result.add_row(
            row["strategy"], row["attached"], row["admitted"], row["failed"],
            f"{row['mean_latency_s']:.2f}", f"{row['p95_latency_s']:.2f}",
            row["remote"], row["stations_used"],
        )
    record_experiment(result)

    by_strategy = {row["strategy"]: row for row in rows}
    for row in rows:
        assert row["drained"], f"{row['strategy']} left live events after teardown"
    baseline = by_strategy["closest-agent"]["admitted"]
    assert baseline > 0
    for contender in ("least-loaded", "bin-packing"):
        assert by_strategy[contender]["admitted"] >= MIN_RATIO * baseline, (
            contender,
            by_strategy[contender]["admitted"],
            baseline,
        )
    # Every load-aware strategy must at least match the paper baseline.
    for contender in ("least-loaded", "latency-weighted", "bin-packing"):
        assert by_strategy[contender]["admitted"] >= baseline
