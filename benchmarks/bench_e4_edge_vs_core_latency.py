"""E4 -- Edge vs core NF placement: per-request latency.

Paper claim: edge compute nodes "provide customized services to users at low
latency and high throughput"; GNF leverages edge resources so services such
as caches answer clients locally.  This experiment runs the same web workload
with an edge cache attached to the client versus the same function placed
centrally (next to the origin, i.e. no edge benefit), plus a placement-
strategy ablation for the edge case.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.analysis.stats import ratio
from repro.baselines.core_nfv import CoreNFVScenario
from repro.core.placement import ClosestAgentPlacement, LatencyAwarePlacement, LoadAwarePlacement
from repro.core.testbed import TestbedConfig


def _run_experiment():
    edge = CoreNFVScenario(edge_nf=True, mean_think_time_s=0.2).run(duration_s=40.0)
    core = CoreNFVScenario(edge_nf=False, mean_think_time_s=0.2).run(duration_s=40.0)

    ablation = []
    for placement in (ClosestAgentPlacement(), LoadAwarePlacement(), LatencyAwarePlacement()):
        config = TestbedConfig(station_count=2, placement=placement)
        run = CoreNFVScenario(edge_nf=True, mean_think_time_s=0.2, config=config).run(duration_s=30.0)
        ablation.append((placement.name, run))
    return edge, core, ablation


def test_e4_edge_vs_core_latency(benchmark, record_experiment):
    edge, core, ablation = run_once(benchmark, _run_experiment)

    result = ExperimentResult(
        experiment_id="E4",
        title="Per-request latency: edge NF (cache at the client's station) vs centralised deployment",
        headers=["deployment", "mean latency (s)", "p95 latency (s)", "requests", "served at the edge"],
        paper_claim="Edge NFs provide customized services at low latency",
        notes=(
            "centralised = the same function next to the origin servers, so every request "
            "crosses the backhaul; ablation rows vary the Manager's placement strategy"
        ),
    )
    result.add_row("edge (closest agent)", edge.mean_latency_s, edge.p95_latency_s, edge.requests, edge.served_locally)
    result.add_row("core / centralised", core.mean_latency_s, core.p95_latency_s, core.requests, core.served_locally)
    for name, run in ablation:
        result.add_row(f"edge ({name} placement)", run.mean_latency_s, run.p95_latency_s, run.requests, run.served_locally)
    record_experiment(result)

    # Shape: edge deployment wins on mean latency because repeated objects are
    # served from the station instead of crossing the backhaul.
    assert edge.served_locally > 0
    assert core.served_locally == 0
    assert edge.mean_latency_s < core.mean_latency_s
    assert ratio(core.mean_latency_s, edge.mean_latency_s) > 1.2
