"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os

from repro.analysis.report import ExperimentResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_result(result: ExperimentResult) -> ExperimentResult:
    """Print a paper-style result table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.experiment_id.lower()}.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.to_markdown())
    print()
    print(result.render())
    return result


def run_once(benchmark, func):
    """Run a deterministic full-scenario benchmark exactly once."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
