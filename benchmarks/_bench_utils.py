"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from repro.analysis.report import ExperimentResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Directory for machine-readable result mirrors; set by ``--json`` (see
# conftest.py).  ``None`` disables JSON emission.
_JSON_DIR: Optional[str] = None


def configure_json_dir(path: Optional[str]) -> None:
    """Enable (or disable, with ``None``) JSON mirrors of every result."""
    global _JSON_DIR
    _JSON_DIR = path


def _write_json(result: ExperimentResult) -> str:
    assert _JSON_DIR is not None
    os.makedirs(_JSON_DIR, exist_ok=True)
    path = os.path.join(_JSON_DIR, f"BENCH_{result.experiment_id.upper()}.json")
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "paper_claim": result.paper_claim,
        "notes": result.notes,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def record_result(result: ExperimentResult) -> ExperimentResult:
    """Print a paper-style result table and persist it under results/.

    When a JSON directory is configured (``pytest benchmarks --json <dir>``)
    the same result is also mirrored as ``BENCH_<ID>.json`` so CI jobs and
    plotting scripts can consume it without parsing markdown.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.experiment_id.lower()}.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.to_markdown())
    if _JSON_DIR is not None:
        _write_json(result)
    print()
    print(result.render())
    return result


def run_once(benchmark, func):
    """Run a deterministic full-scenario benchmark exactly once."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
