"""E5 -- NF migration strategies and the no-migration baseline.

Paper claim: "GNF seamlessly moves the NFs when the user roams between
cells, providing consistent and location-transparent service" -- the cost of
that is the coverage gap while the equivalent NF comes up at the new cell.
This experiment compares the cold (the demo's approach), stateful
(checkpoint/restore) and pre-copy strategies, sweeps the amount of NF state,
and contrasts them with edge NFV that does not migrate at all.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.baselines.no_migration import NoMigrationCoordinator
from repro.core.chain import ServiceChain
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import CBRTrafficGenerator, HTTPWorkloadGenerator
from repro.wireless.mobility import LinearMobility


def _roaming_run(strategy: str, chain: ServiceChain, warm_state: bool = False):
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy=strategy))
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    testbed.manager.attach_chain(phone.ip, chain)
    testbed.run(6.0)
    cbr = CBRTrafficGenerator(testbed.simulator, phone, server_ip=testbed.server_ip, rate_pps=20)
    cbr.start()
    if warm_state:
        # Warm up stateful NFs (cache objects, conntrack entries) before roaming.
        web = HTTPWorkloadGenerator(
            testbed.simulator, phone, server_ip=testbed.server_ip,
            sites=["cdn.example.com"], paths=["/a", "/b", "/c"], mean_think_time_s=0.1,
        )
        web.start()
        testbed.run(10.0)
        web.stop()
    LinearMobility(testbed.simulator, phone, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    testbed.run(40.0)
    cbr.stop()
    record = testbed.roaming.records[0]
    delivery = cbr.responses_received / cbr.packets_sent if cbr.packets_sent else 0.0
    return record, delivery


def _no_migration_run(chain: ServiceChain):
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    NoMigrationCoordinator(testbed.simulator, testbed.manager)
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    testbed.manager.attach_chain(phone.ip, chain)
    testbed.run(6.0)
    cbr = CBRTrafficGenerator(testbed.simulator, phone, server_ip=testbed.server_ip, rate_pps=20)
    cbr.start()
    LinearMobility(testbed.simulator, phone, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    testbed.run(40.0)
    cbr.stop()
    old_nf = testbed.agents["station-1"].deployment_for_client(phone.ip)
    delivery = cbr.responses_received / cbr.packets_sent if cbr.packets_sent else 0.0
    return delivery


def _run_experiment():
    firewall_chain = ServiceChain.of("firewall", "http-filter")
    stateful_chain = ServiceChain(
        [*ServiceChain.single("firewall").specs, *ServiceChain.single("cache", config={"capacity_mb": 32.0}).specs]
    )
    rows = []
    for strategy in ("cold", "stateful", "precopy"):
        record, delivery = _roaming_run(strategy, firewall_chain)
        rows.append([strategy, "firewall + http-filter (small state)",
                     record.coverage_gap_s, record.state_transferred_mb, delivery, record.success])
    for strategy in ("cold", "stateful"):
        record, delivery = _roaming_run(strategy, stateful_chain, warm_state=True)
        rows.append([strategy, "firewall + warm cache (large state)",
                     record.coverage_gap_s, record.state_transferred_mb, delivery, record.success])
    no_mig_delivery = _no_migration_run(firewall_chain)
    rows.append(["no-migration", "firewall + http-filter (small state)",
                 float("inf"), 0.0, no_mig_delivery, False])
    return rows


def test_e5_migration_strategies(benchmark, record_experiment):
    rows = run_once(benchmark, _run_experiment)
    result = ExperimentResult(
        experiment_id="E5",
        title="NF migration: coverage gap and state transferred per strategy",
        headers=["strategy", "chain / state", "coverage gap (s)", "state moved (MB)", "probe delivery ratio", "NF follows client"],
        paper_claim=(
            "GNF seamlessly moves NFs when the user roams, providing consistent, "
            "location-transparent service"
        ),
        notes=(
            "coverage gap = time after the handover during which the client's traffic is not "
            "processed by its NFs; 'no-migration' never restores coverage (gap = inf)"
        ),
    )
    for row in rows:
        result.add_row(*row)
    record_experiment(result)

    by_strategy = {row[0]: row for row in rows if row[1].endswith("(small state)")}
    # Shape: precopy < cold, stateful transfers state, and cold/stateful keep
    # the client's end-to-end traffic flowing (delivery stays high).
    assert by_strategy["precopy"][2] < by_strategy["cold"][2]
    assert by_strategy["stateful"][3] > 0
    assert by_strategy["cold"][4] > 0.8
    large_state = [row for row in rows if "large state" in row[1] and row[0] == "stateful"][0]
    small_state = by_strategy["stateful"]
    assert large_state[3] >= small_state[3]
