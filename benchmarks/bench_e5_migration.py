"""E5 -- NF migration strategies under idle vs loaded backhaul.

Paper claim: "GNF seamlessly moves the NFs when the user roams between
cells, providing consistent and location-transparent service" -- the cost of
that is the coverage gap / downtime while the chain moves.  Since the
MigrationEngine routes checkpoint bytes over the *actual* simulated uplinks,
that cost now depends on what else the backhaul is carrying.  This
experiment compares the cold (the demo's approach), stateful
(checkpoint/restore over the links) and iterative pre-copy strategies on an
idle backhaul and on one loaded with competing client traffic, and contrasts
them with edge NFV that does not migrate at all.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.report import ExperimentResult
from repro.baselines.no_migration import NoMigrationCoordinator
from repro.core.chain import ServiceChain
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import CBRTrafficGenerator
from repro.wireless.mobility import LinearMobility

#: Narrow enough that a multi-MB checkpoint visibly contends with clients.
UPLINK_BPS = 30e6


def _build(strategy: str):
    testbed = GNFTestbed(
        TestbedConfig(
            station_count=2, migration_strategy=strategy, uplink_bandwidth_bps=UPLINK_BPS
        )
    )
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    return testbed, phone


def _background_load(testbed: GNFTestbed):
    """Four CBR clients (two per station) that keep both uplinks busy."""
    generators = []
    for index, x in enumerate((2.0, 4.0, 78.0, 76.0)):
        client = testbed.add_client(f"bg-{index}", position=(x, 3.0))
        generators.append(
            CBRTrafficGenerator(
                testbed.simulator,
                client,
                server_ip=testbed.server_ip,
                rate_pps=250,
                payload_bytes=1300,
                src_port=41_000 + index,
            )
        )
    return generators


def _roaming_run(strategy: str, loaded: bool):
    testbed, phone = _build(strategy)
    generators = _background_load(testbed) if loaded else []
    probe = CBRTrafficGenerator(
        testbed.simulator, phone, server_ip=testbed.server_ip, rate_pps=20, src_port=40_900
    )
    testbed.start()
    testbed.run(1.0)
    testbed.manager.attach_chain(phone.ip, ServiceChain.of("firewall", "http-filter"))
    testbed.run(6.0)
    for generator in generators:
        generator.start()
    probe.start()
    LinearMobility(
        testbed.simulator, phone, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)
    ).start()
    testbed.run(45.0)
    probe.stop()
    for generator in generators:
        generator.stop()
    record = testbed.roaming.records[0]
    delivery = probe.responses_received / probe.packets_sent if probe.packets_sent else 0.0
    return record, delivery


def _no_migration_run():
    testbed, phone = _build("cold")
    NoMigrationCoordinator(testbed.simulator, testbed.manager)
    probe = CBRTrafficGenerator(
        testbed.simulator, phone, server_ip=testbed.server_ip, rate_pps=20, src_port=40_900
    )
    testbed.start()
    testbed.run(1.0)
    testbed.manager.attach_chain(phone.ip, ServiceChain.of("firewall", "http-filter"))
    testbed.run(6.0)
    probe.start()
    LinearMobility(
        testbed.simulator, phone, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)
    ).start()
    testbed.run(45.0)
    probe.stop()
    return probe.responses_received / probe.packets_sent if probe.packets_sent else 0.0


def _run_experiment():
    rows = []
    for backhaul, loaded in (("idle", False), ("loaded", True)):
        for strategy in ("cold", "stateful", "precopy"):
            record, delivery = _roaming_run(strategy, loaded)
            rows.append(
                [
                    strategy,
                    backhaul,
                    record.coverage_gap_s,
                    record.downtime_s,
                    record.rounds,
                    record.state_transferred_mb,
                    record.bytes_moved / 1e6,
                    delivery,
                    record.success,
                ]
            )
    no_mig_delivery = _no_migration_run()
    rows.append(["no-migration", "idle", float("inf"), float("inf"), 0, 0.0, 0.0, no_mig_delivery, False])
    return rows


def test_e5_migration_strategies(benchmark, record_experiment):
    rows = run_once(benchmark, _run_experiment)
    result = ExperimentResult(
        experiment_id="E5",
        title="NF migration under idle vs loaded backhaul, per strategy",
        headers=[
            "strategy",
            "backhaul",
            "coverage gap (s)",
            "downtime (s)",
            "pre-copy rounds",
            "state size (MB)",
            "bytes on wire (MB)",
            "probe delivery ratio",
            "NF follows client",
        ],
        paper_claim=(
            "GNF seamlessly moves NFs when the user roams, providing consistent, "
            "location-transparent service"
        ),
        notes=(
            "state bytes travel the emulated uplinks and share them with client "
            "traffic, so a loaded backhaul stretches stateful migration while "
            "pre-copy hides the copy outside its freeze window; 'no-migration' "
            "never restores coverage (gap = inf)"
        ),
    )
    for row in rows:
        result.add_row(*row)
    record_experiment(result)

    by_key = {(row[0], row[1]): row for row in rows}
    for backhaul in ("idle", "loaded"):
        for strategy in ("cold", "stateful", "precopy"):
            assert by_key[(strategy, backhaul)][8], (strategy, backhaul)
    # Stateful actually moved state, over the wire.
    assert by_key[("stateful", "idle")][5] > 0
    assert by_key[("stateful", "idle")][6] > 0
    # Link sharing is observable: load stretches the stateful transfer.
    assert by_key[("stateful", "loaded")][3] > by_key[("stateful", "idle")][3]
    # The headline: pre-copy downtime strictly below stateful under load
    # (and below cold, which pays full instantiation inside the gap).
    assert by_key[("precopy", "loaded")][3] < by_key[("stateful", "loaded")][3]
    assert by_key[("precopy", "loaded")][3] < by_key[("cold", "loaded")][3]
    # The probe keeps flowing through a migration (short handover gap only).
    assert by_key[("cold", "idle")][7] > 0.8
