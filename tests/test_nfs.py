"""Unit tests for the network function implementations."""

from __future__ import annotations

import pytest

from repro.netem import packet as pkt
from repro.nfs import NF_CATALOG, create_nf
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext
from repro.nfs.cache import EdgeCache
from repro.nfs.dns_loadbalancer import DNSLoadBalancer
from repro.nfs.firewall import Firewall, FirewallAction, FirewallRule
from repro.nfs.flow_monitor import FlowMonitor
from repro.nfs.http_filter import HTTPFilter
from repro.nfs.ids import IntrusionDetector
from repro.nfs.load_balancer import L4LoadBalancer
from repro.nfs.nat import NAT
from repro.nfs.rate_limiter import RateLimiter, TokenBucket

CLIENT = "10.10.0.5"
SERVER = "10.30.0.2"


def ctx(direction=Direction.UPSTREAM, now=0.0):
    return ProcessingContext(now=now, direction=direction, client_ip=CLIENT, station_name="station-1")


def up_tcp(dport=80, sport=40000, payload=100):
    return pkt.make_tcp_packet(CLIENT, SERVER, sport, dport, payload_bytes=payload)


def down_tcp(sport=80, dport=40000, payload=100):
    return pkt.make_tcp_packet(SERVER, CLIENT, sport, dport, payload_bytes=payload)


# --------------------------------------------------------------------------
# Base class and the factory
# --------------------------------------------------------------------------


def test_base_nf_passes_through_and_counts():
    nf = NetworkFunction(name="noop")
    packet = up_tcp()
    outputs = nf.process(packet, ctx())
    assert outputs == [packet]
    assert nf.packets_in == nf.packets_out == 1
    assert nf.bytes_in == packet.size_bytes


def test_base_nf_counts_drops():
    class Dropper(NetworkFunction):
        def _process(self, packet, context):
            return []

    nf = Dropper()
    nf.process(up_tcp(), ctx())
    assert nf.packets_dropped == 1


def test_base_nf_notifications_queue_and_sink():
    nf = NetworkFunction(name="n")
    received = []
    nf.emit_notification(1.0, "warning", "queued event")
    nf.notification_sink = received.append
    nf.emit_notification(2.0, "critical", "sunk event")
    assert len(received) == 1
    drained = nf.drain_notifications()
    assert len(drained) == 2
    assert nf.drain_notifications() == []


def test_base_nf_counter_state_roundtrip():
    nf = NetworkFunction()
    nf.process(up_tcp(), ctx())
    state = nf.export_state()
    other = NetworkFunction()
    other.import_state(state)
    assert other.packets_in == 1


def test_create_nf_factory_instantiates_all_catalog_entries():
    for nf_type, nf_class in NF_CATALOG.items():
        module_path = f"{nf_class.__module__}.{nf_class.__name__}"
        instance = create_nf(module_path, name=f"{nf_type}-instance")
        assert isinstance(instance, nf_class)


def test_create_nf_rejects_bad_paths():
    with pytest.raises(ValueError):
        create_nf("NotDotted")
    with pytest.raises(TypeError):
        create_nf("repro.netem.simulator.Simulator")


# --------------------------------------------------------------------------
# Firewall
# --------------------------------------------------------------------------


def test_firewall_default_accept():
    firewall = Firewall()
    assert firewall.process(up_tcp(), ctx()) != []
    assert firewall.accepted == 1


def test_firewall_drop_rule_blocks_matching_port():
    firewall = Firewall(rules=[FirewallRule(action=FirewallAction.DROP, protocol="tcp", dst_port_range=(22, 22))])
    assert firewall.process(up_tcp(dport=22), ctx()) == []
    assert firewall.process(up_tcp(dport=80), ctx()) != []
    assert firewall.dropped == 1


def test_firewall_rule_order_matters():
    allow_first = Firewall(
        rules=[
            FirewallRule(action=FirewallAction.ACCEPT, protocol="tcp", dst_port_range=(80, 80)),
            FirewallRule(action=FirewallAction.DROP, protocol="tcp"),
        ]
    )
    assert allow_first.process(up_tcp(dport=80), ctx()) != []
    assert allow_first.process(up_tcp(dport=443), ctx()) == []


def test_firewall_default_drop_policy_with_conntrack():
    firewall = Firewall(default_policy=FirewallAction.DROP, rules=[
        FirewallRule(action=FirewallAction.ACCEPT, direction=Direction.UPSTREAM),
    ])
    outbound = up_tcp(dport=80)
    assert firewall.process(outbound, ctx(Direction.UPSTREAM)) != []
    # The reply to the tracked connection is admitted even under default-drop.
    reply = down_tcp(sport=80, dport=40000)
    assert firewall.process(reply, ctx(Direction.DOWNSTREAM)) != []
    assert firewall.conntrack_hits == 1
    # Unrelated inbound traffic is still dropped.
    stranger = down_tcp(sport=9999, dport=12345)
    assert firewall.process(stranger, ctx(Direction.DOWNSTREAM)) == []


def test_firewall_cidr_matching():
    firewall = Firewall(rules=[FirewallRule(action=FirewallAction.DROP, dst_cidr="10.30.0.0/16")])
    assert firewall.process(up_tcp(), ctx()) == []


def test_firewall_direction_restricted_rule():
    # stateful=False so the established-connection fast path does not bypass
    # the downstream drop rule we are exercising.
    rule = FirewallRule(action=FirewallAction.DROP, direction=Direction.DOWNSTREAM)
    firewall = Firewall(rules=[rule], stateful=False)
    assert firewall.process(up_tcp(), ctx(Direction.UPSTREAM)) != []
    assert firewall.process(down_tcp(), ctx(Direction.DOWNSTREAM)) == []


def test_firewall_non_ip_passthrough():
    firewall = Firewall(default_policy=FirewallAction.DROP)
    l2_only = pkt.Packet(eth=pkt.EthernetHeader("a", "b"))
    assert firewall.process(l2_only, ctx()) == [l2_only]


def test_firewall_conntrack_limit():
    firewall = Firewall(conntrack_limit=2)
    for sport in range(40000, 40005):
        firewall.process(up_tcp(sport=sport), ctx())
    assert firewall.conntrack_size == 2


def test_firewall_state_roundtrip_preserves_rules_and_conntrack():
    firewall = Firewall(rules=[FirewallRule(action=FirewallAction.DROP, protocol="udp")])
    firewall.process(up_tcp(), ctx())
    state = firewall.export_state()
    clone = Firewall()
    clone.import_state(state)
    assert clone.rules[0].protocol == "udp"
    assert clone.conntrack_size == 1
    assert clone.accepted == firewall.accepted
    # The restored conntrack still admits the established reply.
    assert clone.process(down_tcp(), ctx(Direction.DOWNSTREAM)) != []


def test_firewall_describe_and_state_size():
    firewall = Firewall(rules=[FirewallRule(action=FirewallAction.DROP)])
    description = firewall.describe()
    assert description["rules"] == 1
    assert firewall.state_size_mb > firewall.base_state_mb - 1e-9


def test_firewall_rule_serialization_roundtrip():
    rule = FirewallRule(
        action=FirewallAction.DROP,
        protocol="tcp",
        src_cidr="10.10.0.0/16",
        dst_port_range=(1, 1024),
        direction=Direction.UPSTREAM,
        comment="block low ports",
    )
    restored = FirewallRule.from_dict(rule.to_dict())
    assert restored == rule


# --------------------------------------------------------------------------
# HTTP filter
# --------------------------------------------------------------------------


def http_request(host="blocked.example.com", path="/"):
    return pkt.make_http_request(CLIENT, SERVER, host=host, path=path)


def test_http_filter_blocks_host_with_403():
    nf = HTTPFilter(blocked_hosts=["blocked.example.com"])
    outputs = nf.process(http_request(), ctx())
    assert len(outputs) == 1
    response = outputs[0]
    assert isinstance(response.app, pkt.HTTPResponse)
    assert response.app.status == 403
    assert response.ip.dst == CLIENT
    assert nf.requests_blocked == 1


def test_http_filter_blocks_subdomains():
    nf = HTTPFilter(blocked_hosts=["example.com"])
    outputs = nf.process(http_request(host="ads.example.com"), ctx())
    assert outputs[0].app.status == 403


def test_http_filter_allows_other_hosts():
    nf = HTTPFilter(blocked_hosts=["blocked.example.com"])
    request = http_request(host="ok.example.org")
    assert nf.process(request, ctx()) == [request]
    assert nf.requests_blocked == 0


def test_http_filter_url_substring_blocking():
    nf = HTTPFilter(blocked_url_substrings=["/malware"])
    assert nf.process(http_request(host="any.com", path="/malware/dl"), ctx())[0].app.status == 403


def test_http_filter_blocks_response_content_type():
    nf = HTTPFilter(blocked_content_types=["video/mp4"])
    request = http_request(host="ok.com")
    response = pkt.make_http_response(request, content_type="video/mp4")
    assert nf.process(response, ctx(Direction.DOWNSTREAM)) == []
    assert nf.responses_blocked == 1


def test_http_filter_block_and_unblock_host():
    nf = HTTPFilter()
    nf.block_host("x.com")
    nf.block_host("x.com")
    assert nf.blocked_hosts == ["x.com"]
    nf.unblock_host("x.com")
    assert nf.blocked_hosts == []


def test_http_filter_notification_on_block():
    nf = HTTPFilter(blocked_hosts=["bad.com"], notify_on_block=True)
    nf.process(http_request(host="bad.com"), ctx())
    assert len(nf.notifications) == 1


def test_http_filter_state_roundtrip():
    nf = HTTPFilter(blocked_hosts=["bad.com"])
    nf.process(http_request(host="bad.com"), ctx())
    clone = HTTPFilter()
    clone.import_state(nf.export_state())
    assert clone.blocked_hosts == ["bad.com"]
    assert clone.requests_blocked == 1
    assert clone.block_counts == {"bad.com": 1}


# --------------------------------------------------------------------------
# DNS load balancer
# --------------------------------------------------------------------------


def dns_response(name="cdn.example.com", addresses=("203.0.113.10",)):
    query = pkt.make_dns_query(CLIENT, SERVER, name=name)
    return pkt.make_dns_response(query, addresses=addresses)


def test_dns_lb_rewrites_configured_names_round_robin():
    nf = DNSLoadBalancer(pools={"cdn.example.com": ["1.1.1.1", "2.2.2.2"]})
    first = nf.process(dns_response(), ctx(Direction.DOWNSTREAM))[0]
    second = nf.process(dns_response(), ctx(Direction.DOWNSTREAM))[0]
    assert first.app.addresses == ("1.1.1.1",)
    assert second.app.addresses == ("2.2.2.2",)
    assert nf.responses_rewritten == 2


def test_dns_lb_leaves_other_names_untouched():
    nf = DNSLoadBalancer(pools={"cdn.example.com": ["1.1.1.1"]})
    response = dns_response(name="other.example.com", addresses=("9.9.9.9",))
    assert nf.process(response, ctx(Direction.DOWNSTREAM))[0].app.addresses == ("9.9.9.9",)


def test_dns_lb_weighted_distribution():
    nf = DNSLoadBalancer()
    nf.add_pool("svc", ["a", "b"], weights=[3, 1])
    for _ in range(8):
        nf.process(dns_response(name="svc"), ctx(Direction.DOWNSTREAM))
    distribution = nf.backend_distribution("svc")
    assert distribution["a"] == 6
    assert distribution["b"] == 2


def test_dns_lb_counts_upstream_queries():
    nf = DNSLoadBalancer(pools={"svc": ["a"]})
    nf.process(pkt.make_dns_query(CLIENT, SERVER, name="svc"), ctx(Direction.UPSTREAM))
    assert nf.queries_seen == 1


def test_dns_lb_state_roundtrip_continues_rotation():
    nf = DNSLoadBalancer(pools={"svc": ["a", "b"]})
    nf.process(dns_response(name="svc"), ctx(Direction.DOWNSTREAM))
    clone = DNSLoadBalancer()
    clone.import_state(nf.export_state())
    rewritten = clone.process(dns_response(name="svc"), ctx(Direction.DOWNSTREAM))[0]
    assert rewritten.app.addresses == ("b",)


def test_dns_lb_empty_pool_rejected():
    with pytest.raises(ValueError):
        DNSLoadBalancer(pools={"svc": []})


# --------------------------------------------------------------------------
# Rate limiter
# --------------------------------------------------------------------------


def test_token_bucket_consumes_and_refills():
    bucket = TokenBucket(rate_bytes_per_s=1000, burst_bytes=1000)
    assert bucket.try_consume(800, now=0.0)
    assert not bucket.try_consume(800, now=0.0)
    assert bucket.try_consume(800, now=1.0)  # refilled 1000 bytes


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate_bytes_per_s=0, burst_bytes=10)
    with pytest.raises(ValueError):
        TokenBucket(rate_bytes_per_s=10, burst_bytes=0)


def test_rate_limiter_polices_excess_traffic():
    nf = RateLimiter(rate_bps=8_000, burst_bytes=1_000)  # 1 kB/s
    passed = 0
    for _ in range(20):
        if nf.process(up_tcp(payload=400), ctx(now=0.0)):
            passed += 1
    assert passed < 20
    assert nf.packets_policed == 20 - passed


def test_rate_limiter_direction_toggles():
    nf = RateLimiter(rate_bps=1, burst_bytes=1, limit_upstream=False)
    assert nf.process(up_tcp(), ctx(Direction.UPSTREAM)) != []
    assert nf.process(down_tcp(), ctx(Direction.DOWNSTREAM)) == []


def test_rate_limiter_state_roundtrip_preserves_bucket_level():
    nf = RateLimiter(rate_bps=8_000, burst_bytes=10_000)
    nf.process(up_tcp(payload=4_000), ctx(now=0.0))
    level_before = nf.bucket_level(Direction.UPSTREAM)
    clone = RateLimiter()
    clone.import_state(nf.export_state())
    assert clone.bucket_level(Direction.UPSTREAM) == pytest.approx(level_before)
    assert clone.rate_bps == 8_000


# --------------------------------------------------------------------------
# NAT
# --------------------------------------------------------------------------


def test_nat_translates_and_reverses():
    nat = NAT(public_ip="192.0.2.1")
    outbound = up_tcp(sport=40000, dport=80)
    translated = nat.process(outbound, ctx(Direction.UPSTREAM))[0]
    assert translated.ip.src == "192.0.2.1"
    public_port = translated.l4.src_port
    reply = pkt.make_tcp_packet(SERVER, "192.0.2.1", 80, public_port)
    reversed_packet = nat.process(reply, ctx(Direction.DOWNSTREAM))[0]
    assert reversed_packet.ip.dst == CLIENT
    assert reversed_packet.l4.dst_port == 40000


def test_nat_reuses_binding_for_same_flow():
    nat = NAT()
    first = nat.process(up_tcp(sport=40000), ctx())[0].l4.src_port
    second = nat.process(up_tcp(sport=40000), ctx())[0].l4.src_port
    assert first == second
    assert nat.binding_count == 1


def test_nat_drops_unknown_inbound():
    nat = NAT(public_ip="192.0.2.1")
    stray = pkt.make_tcp_packet(SERVER, "192.0.2.1", 80, 55555)
    assert nat.process(stray, ctx(Direction.DOWNSTREAM)) == []
    assert nat.untranslatable_drops == 1


def test_nat_state_roundtrip_keeps_bindings():
    nat = NAT(public_ip="192.0.2.1")
    translated = nat.process(up_tcp(sport=40000), ctx())[0]
    public_port = translated.l4.src_port
    clone = NAT()
    clone.import_state(nat.export_state())
    reply = pkt.make_tcp_packet(SERVER, "192.0.2.1", 80, public_port)
    assert clone.process(reply, ctx(Direction.DOWNSTREAM))[0].ip.dst == CLIENT
    assert clone.binding_count == 1


def test_nat_port_exhaustion():
    nat = NAT(port_range=(20000, 20002))
    for sport in range(3):
        nat.process(up_tcp(sport=50000 + sport), ctx())
    with pytest.raises(RuntimeError):
        nat.process(up_tcp(sport=59999), ctx())


# --------------------------------------------------------------------------
# Edge cache
# --------------------------------------------------------------------------


def test_cache_miss_then_hit():
    cache = EdgeCache(capacity_mb=10)
    request = http_request(host="cdn.example.com", path="/video")
    assert cache.process(request, ctx()) == [request]
    assert cache.misses == 1
    response = pkt.make_http_response(request, body_bytes=50_000)
    cache.process(response, ctx(Direction.DOWNSTREAM))
    outputs = cache.process(http_request(host="cdn.example.com", path="/video"), ctx())
    assert outputs[0].app.headers.get("X-Cache") == "HIT"
    assert outputs[0].ip.dst == CLIENT
    assert cache.hits == 1
    assert cache.hit_ratio() == pytest.approx(0.5)


def test_cache_respects_ttl():
    cache = EdgeCache(ttl_s=10.0)
    request = http_request(host="a.com", path="/x")
    cache.process(request, ctx(now=0.0))
    cache.process(pkt.make_http_response(request, body_bytes=100), ctx(Direction.DOWNSTREAM, now=0.0))
    stale = cache.process(http_request(host="a.com", path="/x"), ctx(now=100.0))
    assert isinstance(stale[0].app, pkt.HTTPRequest)  # expired -> forwarded upstream


def test_cache_evicts_lru_when_full():
    # max_object_fraction=0.5 lets the 40 kB objects past size-aware
    # admission (the 0.25 default would reject them outright).
    cache = EdgeCache(capacity_mb=0.1, max_object_fraction=0.5)  # 100 kB
    for index in range(5):
        request = http_request(host="a.com", path=f"/obj{index}")
        cache.process(request, ctx())
        cache.process(pkt.make_http_response(request, body_bytes=40_000), ctx(Direction.DOWNSTREAM))
    assert cache.evictions > 0
    assert cache.used_mb <= 0.1 + 1e-6


def test_cache_does_not_store_error_responses():
    cache = EdgeCache()
    request = http_request(host="a.com", path="/err")
    cache.process(request, ctx())
    cache.process(pkt.make_http_response(request, status=500, body_bytes=10), ctx(Direction.DOWNSTREAM))
    assert cache.object_count == 0


def test_cache_state_roundtrip_keeps_objects():
    cache = EdgeCache()
    request = http_request(host="a.com", path="/x")
    cache.process(request, ctx())
    cache.process(pkt.make_http_response(request, body_bytes=2_000), ctx(Direction.DOWNSTREAM))
    clone = EdgeCache()
    clone.import_state(cache.export_state())
    outputs = clone.process(http_request(host="a.com", path="/x"), ctx())
    assert outputs[0].app.headers.get("X-Cache") == "HIT"


def test_cache_invalid_capacity():
    with pytest.raises(ValueError):
        EdgeCache(capacity_mb=0)


# --------------------------------------------------------------------------
# IDS
# --------------------------------------------------------------------------


def test_ids_detects_malware_signature():
    ids = IntrusionDetector(malware_signatures=["EICAR"])
    packet = up_tcp()
    packet.metadata["payload_signature"] = "EICAR"
    outputs = ids.process(packet, ctx(now=1.0))
    assert outputs == [packet]  # detection, not prevention
    assert ids.malware_detections == 1
    assert ids.notifications[0].severity == "critical"


def test_ids_detects_port_scan_once_per_source():
    ids = IntrusionDetector(port_scan_threshold=10, port_scan_window_s=10.0)
    for port in range(25):
        ids.process(up_tcp(dport=port + 1), ctx(now=0.1 * port))
    assert ids.port_scan_detections == 1


def test_ids_port_scan_window_expires():
    ids = IntrusionDetector(port_scan_threshold=10, port_scan_window_s=1.0)
    for port in range(20):
        ids.process(up_tcp(dport=port + 1), ctx(now=float(port)))  # 1 port/second
    assert ids.port_scan_detections == 0


def test_ids_detects_syn_flood():
    ids = IntrusionDetector(syn_flood_threshold=50, syn_flood_window_s=1.0)
    for index in range(60):
        packet = pkt.make_tcp_packet(CLIENT, SERVER, 40000 + index, 80, syn=True)
        ids.process(packet, ctx(now=0.001 * index))
    assert ids.syn_flood_detections == 1
    assert ids.alerts_raised >= 1


def test_ids_state_roundtrip_suppresses_duplicate_alerts():
    ids = IntrusionDetector(port_scan_threshold=5)
    for port in range(10):
        ids.process(up_tcp(dport=port + 1), ctx(now=0.01 * port))
    assert ids.port_scan_detections == 1
    clone = IntrusionDetector(port_scan_threshold=5)
    clone.import_state(ids.export_state())
    detections_after_import = clone.port_scan_detections
    # The migrated IDS remembers it already alerted for this source and does
    # not raise a duplicate alert when the scan continues at the new station.
    for port in range(10):
        clone.process(up_tcp(dport=port + 1), ctx(now=1.0 + 0.01 * port))
    assert clone.port_scan_detections == detections_after_import
    assert len(clone.notifications) == 0


# --------------------------------------------------------------------------
# Flow monitor and L4 load balancer
# --------------------------------------------------------------------------


def test_flow_monitor_accounts_traffic_and_top_talkers():
    monitor = FlowMonitor()
    for _ in range(3):
        monitor.process(up_tcp(), ctx(Direction.UPSTREAM))
    monitor.process(down_tcp(), ctx(Direction.DOWNSTREAM))
    summary = monitor.traffic_summary()
    assert summary["upstream_bytes"] > 0
    assert summary["downstream_bytes"] > 0
    assert monitor.top_talkers()[0]["packets"] == 4  # bidirectional fold


def test_flow_monitor_passthrough():
    monitor = FlowMonitor()
    packet = up_tcp()
    assert monitor.process(packet, ctx()) == [packet]


def test_l4_lb_distributes_new_connections():
    lb = L4LoadBalancer(virtual_ip="198.51.100.10", backends=["10.30.0.11", "10.30.0.12"])
    chosen = set()
    for sport in range(4):
        packet = pkt.make_tcp_packet(CLIENT, "198.51.100.10", 40000 + sport, 80)
        chosen.add(lb.process(packet, ctx())[0].ip.dst)
    assert chosen == {"10.30.0.11", "10.30.0.12"}


def test_l4_lb_affinity_keeps_flow_on_same_backend():
    lb = L4LoadBalancer(backends=["a", "b"])
    first = lb.process(pkt.make_tcp_packet(CLIENT, "198.51.100.10", 40000, 80), ctx())[0].ip.dst
    second = lb.process(pkt.make_tcp_packet(CLIENT, "198.51.100.10", 40000, 80), ctx())[0].ip.dst
    assert first == second
    assert lb.affinity_count == 1


def test_l4_lb_rewrites_backend_source_on_return():
    lb = L4LoadBalancer(virtual_ip="198.51.100.10", backends=["10.30.0.11"])
    lb.process(pkt.make_tcp_packet(CLIENT, "198.51.100.10", 40000, 80), ctx())
    reply = pkt.make_tcp_packet("10.30.0.11", CLIENT, 80, 40000)
    assert lb.process(reply, ctx(Direction.DOWNSTREAM))[0].ip.src == "198.51.100.10"


def test_l4_lb_least_connections_strategy():
    lb = L4LoadBalancer(backends=["a", "b"], strategy="least-connections")
    lb.connections_per_backend["a"] = 5
    packet = pkt.make_tcp_packet(CLIENT, "198.51.100.10", 40001, 80)
    assert lb.process(packet, ctx())[0].ip.dst == "b"


def test_l4_lb_requires_backends_and_valid_strategy():
    with pytest.raises(ValueError):
        L4LoadBalancer(strategy="magic")
    lb = L4LoadBalancer(backends=[])
    with pytest.raises(RuntimeError):
        lb.process(pkt.make_tcp_packet(CLIENT, "198.51.100.10", 1, 80), ctx())


def test_l4_lb_state_roundtrip_keeps_affinity():
    lb = L4LoadBalancer(backends=["a", "b"])
    backend = lb.process(pkt.make_tcp_packet(CLIENT, "198.51.100.10", 40000, 80), ctx())[0].ip.dst
    clone = L4LoadBalancer()
    clone.import_state(lb.export_state())
    again = clone.process(pkt.make_tcp_packet(CLIENT, "198.51.100.10", 40000, 80), ctx())[0].ip.dst
    assert again == backend
