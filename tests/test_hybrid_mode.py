"""Hybrid fluid/packet simulation core (``src/repro/netem/fluid.py``).

Covers the tentpole's three contracts:

* solver math -- max-min fair shares against hand-computed fixtures,
* conversion continuity -- promote/demote keeps ``bytes_fluid +
  bytes_packet`` exact, and fluid occupancy inflates packet serialization,
* digest equivalence -- every canned scenario without bulk workloads
  replays to the *identical* MetricsDigest under ``packet`` and ``hybrid``
  modes (including across control-plane shard counts), mirroring the
  shard- and placement-invariance gates of earlier PRs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netem.fluid import FluidFlow, FluidPath, FluidSolver, HybridScheduler
from repro.netem.link import Link
from repro.netem.simulator import Simulator
from repro.scenarios import build_scenario, run_scenario, scenario_names
from repro.scenarios.library import scenario_has_bulk

# ---------------------------------------------------------------------------
# FluidSolver: max-min fair shares vs hand-computed fixtures
# ---------------------------------------------------------------------------


def _solve(capacities, membership, demands):
    return FluidSolver.max_min_rates(
        np.asarray(capacities, dtype=float),
        np.asarray(membership, dtype=bool),
        np.asarray(demands, dtype=float),
    )


def test_solver_equal_split_on_one_bottleneck():
    # Two greedy flows share a 100 Mb/s link: 50/50.
    rates = _solve([100.0], [[True, True]], [80.0, 80.0])
    assert rates == pytest.approx([50.0, 50.0])


def test_solver_demand_limited_flow_releases_headroom():
    # Flow A wants only 30: A is demand-fixed at 30, B soaks up the rest.
    rates = _solve([100.0], [[True, True]], [30.0, 80.0])
    assert rates == pytest.approx([30.0, 70.0])


def test_solver_multi_link_bottleneck():
    # B crosses both links and is capped by the 40 link; A then gets the
    # 100-link's residual 60.
    rates = _solve(
        [100.0, 40.0],
        [[True, True], [False, True]],
        [1e3, 1e3],
    )
    assert rates == pytest.approx([60.0, 40.0])


def test_solver_three_flows_one_small_demand():
    # Classic textbook case: demands (10, 100, 100) on a 90 link ->
    # (10, 40, 40): the small flow is satisfied, the rest split fairly.
    rates = _solve([90.0], [[True, True, True]], [10.0, 100.0, 100.0])
    assert rates == pytest.approx([10.0, 40.0, 40.0])


def test_solver_flows_without_links_are_demand_limited():
    # No registered link at all (L=0): rates equal demands.
    rates = _solve(np.zeros(0), np.zeros((0, 2)), [5e6, 1e6])
    assert rates == pytest.approx([5e6, 1e6])


def test_solver_empty_flow_set():
    assert _solve([90.0], np.zeros((1, 0)), np.zeros(0)).shape == (0,)


def test_solver_is_deterministic():
    args = ([100.0, 40.0], [[True, True], [False, True]], [70.0, 90.0])
    assert np.array_equal(_solve(*args), _solve(*args))


# ---------------------------------------------------------------------------
# HybridScheduler: conversion continuity on a synthetic link
# ---------------------------------------------------------------------------


def _rig(epoch_s: float = 0.1, bandwidth_bps: float = 8e6):
    """A scheduler wired to one real Link, no testbed."""
    simulator = Simulator()
    scheduler = HybridScheduler(simulator, mode="hybrid", epoch_s=epoch_s)
    link = Link(simulator, bandwidth_bps=bandwidth_bps, delay_s=0.0, name="uplink")
    scheduler.path_resolver = lambda flow: FluidPath("station-1", [(link, "a_to_b")])
    scheduler.start()
    return simulator, scheduler, link


def test_demote_promote_keeps_byte_accounting_exact():
    simulator, scheduler, link = _rig(epoch_s=0.1)
    # 100 kB/s demand, 50 kB budget: 0.5 s of pure fluid time.
    flow = FluidFlow("bulk", demand_bps=8e5, total_bytes=50_000.0)
    scheduler.register(flow)
    assert flow.mode == "fluid"

    simulator.run(until=0.2)
    assert flow.bytes_fluid == pytest.approx(20_000.0)

    # Fault window opens: immediate demotion, fluid bytes frozen.
    scheduler.enter_fault_island("station-1")
    assert flow.mode == "packet"
    assert flow.demotions == 1
    fluid_before = flow.bytes_fluid

    # The packet path moves two chunks while demoted.
    scheduler.record_packet_bytes(flow, 4_000.0)
    scheduler.record_packet_bytes(flow, 4_000.0)
    scheduler.exit_fault_island("station-1")

    # Next epoch re-promotes; fluid resumes from the frozen byte count.
    simulator.run(until=0.35)
    assert flow.mode == "fluid"
    assert flow.promotions == 1
    assert flow.bytes_fluid == pytest.approx(fluid_before)  # no packet-window drift

    # Run to completion: the last settle clamps at the byte budget exactly.
    simulator.run(until=1.0)
    assert flow.completed
    assert flow.bytes_fluid + flow.bytes_packet == pytest.approx(flow.total_bytes)
    assert flow.bytes_packet == pytest.approx(8_000.0)

    summary = scheduler.summary()
    assert summary["flows_completed"] == 1.0
    assert summary["flows_demoted"] == 1.0
    assert summary["flows_promoted"] == 1.0
    assert summary["bytes_fluid"] + summary["bytes_packet"] == pytest.approx(50_000.0)
    # Link bookkeeping matches the flow's fluid bytes and the load is
    # released once the flow retires.
    assert link._directions["a_to_b"].stats.fluid_bytes == pytest.approx(flow.bytes_fluid)
    assert link.fluid_load("a_to_b") == 0.0


def test_unroutable_flows_stay_packet_until_a_path_appears():
    simulator = Simulator()
    scheduler = HybridScheduler(simulator, mode="hybrid", epoch_s=0.1)
    link = Link(simulator, bandwidth_bps=8e6, delay_s=0.0)
    path_holder = {"path": None}
    scheduler.path_resolver = lambda flow: path_holder["path"]
    scheduler.start()
    flow = scheduler.register(FluidFlow("roaming", demand_bps=8e5, total_bytes=1e6))
    assert flow.mode == "packet"  # mid-handover: no route, no fluid
    path_holder["path"] = FluidPath("station-2", [(link, "a_to_b")])
    simulator.run(until=0.15)  # next epoch reclassifies
    assert flow.mode == "fluid"
    assert flow.promotions == 1


def test_packet_mode_scheduler_is_inert():
    simulator = Simulator()
    scheduler = HybridScheduler(simulator, mode="packet")
    scheduler.start()
    flow = scheduler.register(FluidFlow("bulk", demand_bps=1e6, total_bytes=1e6))
    assert flow.mode == "packet"
    assert scheduler._task is None  # no epoch task was ever scheduled
    scheduler.enter_fault_island("station-1")  # harmless no-ops
    scheduler.exit_fault_island("station-1")
    simulator.run(until=5.0)
    assert scheduler.solver_epochs == 0
    assert flow.bytes_fluid == 0.0


def test_flow_finished_counts_packet_completions():
    simulator = Simulator()
    scheduler = HybridScheduler(simulator, mode="packet")
    flow = scheduler.register(FluidFlow("bulk", demand_bps=1e6, total_bytes=8_000.0))
    scheduler.record_packet_bytes(flow, 8_000.0)
    scheduler.flow_finished(flow)
    assert flow.completed
    assert scheduler.flows_completed == 1
    assert flow.flow_id not in scheduler.flows
    scheduler.flow_finished(flow)  # idempotent
    assert scheduler.flows_completed == 1


# ---------------------------------------------------------------------------
# Fluid occupancy must inflate packet serialization (and only then)
# ---------------------------------------------------------------------------


def test_fluid_load_inflates_packet_serialization_delay():
    simulator = Simulator()
    link = Link(simulator, bandwidth_bps=1e6, delay_s=0.0)
    direction = link._directions["a_to_b"]
    base = link._packet_serialization_delay(1_000, direction)
    assert base == pytest.approx(8_000 / 1e6)

    # Half the link fluid-occupied: packets see half the bandwidth.
    link.set_fluid_load("a_to_b", 5e5)
    assert link._packet_serialization_delay(1_000, direction) == pytest.approx(2 * base)

    # Overload clamps at the 5% residual floor, never divides by <= 0.
    link.set_fluid_load("a_to_b", 2e6)
    assert link._packet_serialization_delay(1_000, direction) == pytest.approx(
        8_000 / (1e6 * Link._MIN_RESIDUAL_FRACTION)
    )

    # Zero load is bit-identical to the fluid-free arithmetic: this is what
    # keeps packet/hybrid digests equal on non-bulk scenarios.
    link.set_fluid_load("a_to_b", 0.0)
    assert link._packet_serialization_delay(1_000, direction) == link.serialization_delay(1_000)
    # The other direction was never touched.
    assert link.fluid_load("b_to_a") == 0.0


# ---------------------------------------------------------------------------
# Digest equivalence: packet vs hybrid on the non-bulk canned library
# ---------------------------------------------------------------------------


def _non_bulk_scenarios():
    return [name for name in scenario_names() if not scenario_has_bulk(build_scenario(name))]


def test_packet_vs_hybrid_digest_equivalence_across_shards():
    """Every canned scenario without bulk workloads must replay to the
    identical digest under the hybrid engine -- run sharded (4) so one
    comparison also proves the hybrid engine keeps shard invariance."""
    failures = []
    for name in _non_bulk_scenarios():
        base = run_scenario(name, seed=0)
        hybrid = run_scenario(name, seed=0, simulation_mode="hybrid", shard_count=4)
        if hybrid.digest != base.digest:
            failures.append((name, base.digest.diff(hybrid.digest)))
    assert not failures, failures


def test_packet_vs_hybrid_digest_equivalence_unsharded_subset():
    # The unsharded leg on a light subset (the sharded sweep above covers
    # the whole library): packet(1) == hybrid(1), byte for byte.
    for name in ("fig2-roaming", "firewall-churn", "commuter-rush"):
        base = run_scenario(name, seed=0)
        hybrid = run_scenario(name, seed=0, simulation_mode="hybrid")
        assert hybrid.digest == base.digest, (name, base.digest.diff(hybrid.digest))


# ---------------------------------------------------------------------------
# The bulk-backhaul scenario exercises the whole conversion machinery
# ---------------------------------------------------------------------------


def test_bulk_backhaul_exercises_promote_demote_and_conserves_bytes():
    result = run_scenario("bulk-backhaul", seed=0)
    assert result.drained
    fluid = result.fluid_summary
    assert fluid["flows_registered"] == 8.0
    assert fluid["flows_completed"] == 8.0
    # The link-degrade fault demotes the uploaders; the firewall detach
    # promotes the chained uploaders: both transitions must actually fire.
    assert fluid["flows_demoted"] >= 1.0
    assert fluid["flows_promoted"] >= 1.0
    assert fluid["bytes_fluid"] > 0.0
    assert fluid["bytes_packet"] > 0.0
    # Per-flow byte conservation across every conversion.
    bulk_stats = [
        stats for stats in result.workload_stats.values() if "total_bytes" in stats
    ]
    assert len(bulk_stats) == 8
    for stats in bulk_stats:
        assert stats["completed"] == 1.0
        assert stats["bytes_fluid"] + stats["bytes_packet"] == pytest.approx(
            stats["total_bytes"]
        )
    # Scheduler-level totals agree with the per-flow split.
    assert fluid["bytes_fluid"] == pytest.approx(
        sum(stats["bytes_fluid"] for stats in bulk_stats)
    )
    assert fluid["bytes_packet"] == pytest.approx(
        sum(stats["bytes_packet"] for stats in bulk_stats)
    )
