"""Unit tests for the packet model."""

from __future__ import annotations

import pytest

from repro.netem import packet as pkt


def test_tcp_packet_has_sane_size():
    packet = pkt.make_tcp_packet("10.0.0.1", "10.0.0.2", 1234, 80, payload_bytes=100)
    assert packet.size_bytes == 14 + 20 + 20 + 100


def test_minimum_frame_size_is_64_bytes():
    packet = pkt.Packet(eth=pkt.EthernetHeader("a", "b"))
    assert packet.size_bytes == 64


def test_udp_packet_protocol_number():
    packet = pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 5000, 53)
    assert packet.ip.protocol == pkt.PROTO_UDP
    assert packet.is_udp and not packet.is_tcp


def test_icmp_echo_and_reply():
    echo = pkt.make_icmp_echo("10.0.0.1", "10.0.0.2", identifier=7, sequence=3)
    assert echo.is_icmp
    reply = echo.l4.reply()
    assert reply.icmp_type == 0
    assert reply.identifier == 7
    assert reply.sequence == 3


def test_flow_key_extraction():
    packet = pkt.make_tcp_packet("10.0.0.1", "10.0.0.2", 1111, 80)
    key = packet.flow_key
    assert key == pkt.FlowKey("10.0.0.1", "10.0.0.2", pkt.PROTO_TCP, 1111, 80)


def test_flow_key_reversed_and_canonical():
    key = pkt.FlowKey("10.0.0.2", "10.0.0.1", pkt.PROTO_TCP, 80, 1111)
    reverse = key.reversed()
    assert reverse.src_ip == "10.0.0.1"
    assert reverse.dst_port == 80
    assert key.canonical() == reverse.canonical()


def test_non_ip_packet_has_no_flow_key():
    packet = pkt.Packet(eth=pkt.EthernetHeader("a", "b"))
    assert packet.flow_key is None


def test_packet_copy_is_independent():
    packet = pkt.make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
    packet.metadata["tag"] = "original"
    clone = packet.copy()
    clone.ip.src = "10.9.9.9"
    clone.metadata["tag"] = "copy"
    assert packet.ip.src == "10.0.0.1"
    assert packet.metadata["tag"] == "original"
    assert clone.packet_id != packet.packet_id


def test_ttl_decrement_drops_at_zero():
    packet = pkt.make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
    packet.ip.ttl = 1
    assert not packet.decrement_ttl()


def test_ethernet_swapped():
    header = pkt.EthernetHeader(src="aa", dst="bb")
    swapped = header.swapped()
    assert (swapped.src, swapped.dst) == ("bb", "aa")


def test_ip_swapped_resets_ttl():
    header = pkt.IPv4Header(src="1.1.1.1", dst="2.2.2.2", ttl=3)
    swapped = header.swapped()
    assert swapped.src == "2.2.2.2"
    assert swapped.ttl == 64


def test_http_request_url():
    request = pkt.HTTPRequest(method="GET", host="example.com", path="/index.html")
    assert request.url == "http://example.com/index.html"


def test_http_response_builder_swaps_endpoints():
    request = pkt.make_http_request("10.0.0.1", "10.0.0.9", host="example.com", path="/a")
    response = pkt.make_http_response(request, status=200, body_bytes=5000)
    assert response.ip.src == "10.0.0.9"
    assert response.ip.dst == "10.0.0.1"
    assert response.app.status == 200
    assert response.app.request_url == "http://example.com/a"
    assert response.size_bytes > 5000


def test_http_response_requires_request_payload():
    packet = pkt.make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
    with pytest.raises(ValueError):
        pkt.make_http_response(packet)


def test_dns_query_and_response_builders():
    query = pkt.make_dns_query("10.0.0.1", "10.0.0.8", name="cdn.example.com", query_id=11)
    assert query.l4.dst_port == 53
    response = pkt.make_dns_response(query, addresses=("1.2.3.4", "5.6.7.8"))
    assert response.app.addresses == ("1.2.3.4", "5.6.7.8")
    assert response.app.query_id == 11
    assert response.ip.dst == "10.0.0.1"


def test_dns_response_requires_query_payload():
    packet = pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2)
    with pytest.raises(ValueError):
        pkt.make_dns_response(packet, addresses=("1.1.1.1",))


def test_tcp_header_swapped_sets_ack_flag():
    header = pkt.TCPHeader(src_port=1000, dst_port=80, seq=5, ack=9)
    swapped = header.swapped()
    assert swapped.src_port == 80
    assert swapped.dst_port == 1000
    assert swapped.ack_flag


def test_packet_ids_are_unique_and_increasing():
    first = pkt.make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
    second = pkt.make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
    assert second.packet_id > first.packet_id


def test_app_payload_contributes_to_size():
    bare = pkt.make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
    with_http = pkt.make_http_request("1.1.1.1", "2.2.2.2", host="x.com")
    assert with_http.size_bytes > bare.size_bytes
