"""Unit tests for topologies, routing helpers and flow tracking."""

from __future__ import annotations

import pytest

from repro.netem import packet as pkt
from repro.netem.flows import FlowTracker
from repro.netem.routing import RoutingTable, build_topology_graph, compute_routes, path_delay
from repro.netem.simulator import Simulator
from repro.netem.topology import EdgeTopology, StationProfile, TopologyConfig


# --------------------------------------------------------------------------
# Routing helpers
# --------------------------------------------------------------------------


def test_routing_table_longest_prefix_match():
    table = RoutingTable()
    table.add_route("10.0.0.0/8", "gw1", "eth0")
    table.add_route("10.1.0.0/16", "gw2", "eth1")
    assert table.lookup("10.1.2.3").next_hop == "gw2"
    assert table.lookup("10.9.0.1").next_hop == "gw1"
    assert table.lookup("192.168.0.1") is None


def test_routing_table_remove_route():
    table = RoutingTable()
    table.add_route("10.0.0.0/8", "gw1", "eth0")
    assert table.remove_route("10.0.0.0/8")
    assert not table.remove_route("10.0.0.0/8")
    assert len(table) == 0


def test_compute_routes_shortest_by_delay():
    graph = build_topology_graph(
        [("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 5.0)]
    )
    routes = compute_routes(graph, "a")
    path, delay = routes["c"]
    assert path == ["a", "b", "c"]
    assert delay == pytest.approx(2.0)
    assert path_delay(graph, "a", "c") == pytest.approx(2.0)


def test_compute_routes_unknown_source():
    graph = build_topology_graph([("a", "b", 1.0)])
    with pytest.raises(KeyError):
        compute_routes(graph, "zzz")


# --------------------------------------------------------------------------
# EdgeTopology
# --------------------------------------------------------------------------


def test_topology_builds_requested_inventory(simulator):
    topology = EdgeTopology(simulator, TopologyConfig(station_count=3, server_count=2))
    summary = topology.summary()
    assert summary["stations"] == 3
    assert summary["servers"] == 2
    assert len(topology.gateway.station_interfaces) == 3


def test_station_profiles():
    router = StationProfile.router_class()
    server = StationProfile.server_class()
    assert router.memory_mb < server.memory_mb
    assert router.cpu_mhz < server.cpu_mhz


def test_topology_duplicate_station_rejected(topology):
    with pytest.raises(ValueError):
        topology.add_station("station-1")


def test_topology_duplicate_server_rejected(topology):
    with pytest.raises(ValueError):
        topology.add_server("server-1")


def test_gateway_registers_servers(topology):
    server_ip = topology.any_server_ip()
    assert server_ip in topology.gateway.server_macs


def test_gateway_client_location_updates(topology):
    topology.register_client("10.10.0.5", "02:00:00:00:00:55", "station-1")
    assert topology.gateway.client_locations["10.10.0.5"] == "station-1"
    topology.gateway.update_client_location("10.10.0.5", "station-2")
    assert topology.gateway.client_locations["10.10.0.5"] == "station-2"
    assert topology.gateway.location_updates == 2


def test_gateway_unknown_station_rejected(topology):
    with pytest.raises(KeyError):
        topology.gateway.update_client_location("10.10.0.5", "station-99")


def test_gateway_drops_unroutable_packets(topology, simulator):
    packet = pkt.make_udp_packet("10.10.0.5", "172.31.0.9", 1, 2)
    topology.gateway.receive_packet(packet, topology.gateway.core_interface)
    simulator.run()
    assert topology.gateway.packets_dropped == 1


def test_gateway_routes_upstream_to_server(topology, simulator):
    server = topology.server("server-1")
    packet = pkt.make_udp_packet("10.10.0.5", server.ip, 1, 9000)
    station_iface = topology.gateway.station_interfaces["station-1"]
    topology.gateway.receive_packet(packet, station_iface)
    simulator.run()
    assert topology.gateway.packets_routed_upstream == 1
    assert server.udp_packets_echoed == 1


def test_gateway_ttl_expiry(topology, simulator):
    server = topology.server("server-1")
    packet = pkt.make_udp_packet("10.10.0.5", server.ip, 1, 9000)
    packet.ip.ttl = 1
    topology.gateway.receive_packet(packet, topology.gateway.station_interfaces["station-1"])
    simulator.run()
    assert topology.gateway.packets_dropped == 1


def test_station_default_uplink_rule_installed_on_cell_registration(topology):
    station = topology.station("station-1")
    assert station.uplink_port is not None
    before = len(station.switch.flow_table)
    station.register_cell_port("cellX", 42)
    assert len(station.switch.flow_table) == before + 1


def test_station_client_association_rules(topology):
    station = topology.station("station-1")
    station.register_cell_port("cellX", 42)
    station.register_client("10.10.0.7", "cellX")
    assert station.associated_client_rules() == ["assoc:10.10.0.7"]
    # Re-registering replaces rather than duplicates.
    station.register_client("10.10.0.7", "cellX")
    assert len(station.switch.flow_table.rules(cookie="assoc:10.10.0.7")) == 1
    station.unregister_client("10.10.0.7")
    assert station.associated_client_rules() == []


def test_topology_graph_and_latencies(topology):
    graph = topology.graph()
    assert "gateway" in graph and "station-1" in graph
    assert topology.control_latency("station-1") == pytest.approx(
        topology.config.uplink_delay_s + topology.config.core_delay_s
    )
    assert topology.station_to_station_latency("station-1", "station-1") == 0.0
    assert topology.station_to_station_latency("station-1", "station-2") == pytest.approx(
        2 * topology.config.uplink_delay_s
    )
    with pytest.raises(KeyError):
        topology.control_latency("station-99")


# --------------------------------------------------------------------------
# FlowTracker
# --------------------------------------------------------------------------


def test_flow_tracker_accounts_per_flow():
    tracker = FlowTracker()
    packet = pkt.make_tcp_packet("10.0.0.1", "10.0.0.2", 1000, 80, payload_bytes=100)
    tracker.observe(packet, now=1.0)
    tracker.observe(packet, now=2.0)
    flow = tracker.flow(packet.flow_key)
    assert flow.packets == 2
    assert flow.bytes == 2 * packet.size_bytes
    assert flow.duration == pytest.approx(1.0)
    assert flow.throughput_bps() == pytest.approx(2 * packet.size_bytes * 8)


def test_flow_tracker_bidirectional_folding():
    tracker = FlowTracker(bidirectional=True)
    forward = pkt.make_tcp_packet("10.0.0.1", "10.0.0.2", 1000, 80)
    reverse = pkt.make_tcp_packet("10.0.0.2", "10.0.0.1", 80, 1000)
    tracker.observe(forward, 1.0)
    tracker.observe(reverse, 1.1)
    assert len(tracker) == 1


def test_flow_tracker_idle_expiry():
    tracker = FlowTracker(idle_timeout_s=5.0)
    tracker.observe(pkt.make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2), 0.0)
    expired = tracker.expire_idle(now=10.0)
    assert len(expired) == 1
    assert len(tracker) == 0
    assert tracker.expired_flows == 1


def test_flow_tracker_ignores_non_ip():
    tracker = FlowTracker()
    assert tracker.observe(pkt.Packet(eth=pkt.EthernetHeader("a", "b")), 0.0) is None


def test_flow_tracker_top_flows_and_snapshot():
    tracker = FlowTracker()
    small = pkt.make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 80, payload_bytes=10)
    big = pkt.make_tcp_packet("10.0.0.3", "10.0.0.2", 2, 80, payload_bytes=5000)
    tracker.observe(small, 0.0)
    tracker.observe(big, 0.0)
    top = tracker.top_flows(1)
    assert top[0].key.src_ip == "10.0.0.3"
    snapshot = tracker.snapshot()
    assert snapshot["active_flows"] == 2
    assert snapshot["total_packets"] == 2
