"""Service bundles, the catalogue, and zero-gap rolling upgrades.

Covers the tentpole layer end to end: the declarative catalogue
(versioned ``BundleSpec`` validation, slice compilation into plain
``ServiceChain`` objects), the mobile-core NF state/config split the
upgrades rely on, and the ``BundleUpgradeOrchestrator`` walk -- precopy
cutovers with zero coverage gap, stateful cutovers with a measured gap,
the scheduler enable/disable race, retries through a station outage, and
the canned ``bundle-rolling-upgrade`` scenario replaying digest-identically
across the region/shard matrix with every instance ending on v2.
"""

from __future__ import annotations

import pytest

from repro.core.bundles import (
    BundleCatalogue,
    BundleError,
    BundleNF,
    BundleSpec,
    SliceSpec,
    default_catalogue,
)
from repro.core.chain import ChainSLO
from repro.core.manager import AssignmentState, upgrade_staging_id
from repro.core.scheduler import TimeSchedule
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.nfs.cache import EdgeCache
from repro.scenarios import run_scenario

# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------


def test_default_catalogue_registers_both_mobile_core_versions():
    catalogue = default_catalogue()
    assert catalogue.refs() == ["mobile-core@v1", "mobile-core@v2"]
    assert "mobile-core" in catalogue
    assert catalogue.versions("mobile-core") == [1, 2]
    # version=0 resolves to the latest registered version.
    assert catalogue.get("mobile-core").version == 2
    assert catalogue.get("mobile-core", 1).version == 1
    with pytest.raises(BundleError):
        catalogue.get("mobile-core", 9)
    with pytest.raises(BundleError):
        catalogue.get("nope")


def test_mobile_core_v2_differs_only_in_config_not_shape():
    """v1 and v2 keep the same NF graph (the federation NF-count stream
    relies on it); the upgrade is a pure config roll."""
    catalogue = default_catalogue()
    v1, v2 = catalogue.get("mobile-core", 1), catalogue.get("mobile-core", 2)
    assert v1.nf_graph() == v2.nf_graph() == "amf -> smf -> upf"
    assert v1.slice_names() == v2.slice_names() == ["embb", "iot"]
    upf_v1 = next(nf for nf in v1.nfs if nf.name == "upf")
    upf_v2 = next(nf for nf in v2.nfs if nf.name == "upf")
    assert upf_v1.config_dict()["edge_breakout"] is False
    assert upf_v2.config_dict()["edge_breakout"] is True


def test_chain_for_compiles_fresh_slice_chains_with_slos():
    spec = default_catalogue().get("mobile-core", 1)
    embb = spec.chain_for("embb")
    iot = spec.chain_for("iot")
    assert embb.name == "mobile-core@v1/embb" and len(embb) == 3
    assert iot.name == "mobile-core@v1/iot" and len(iot) == 2
    assert embb.slo == ChainSLO(max_latency_s=0.05, min_bandwidth_mbps=6.0)
    assert iot.slo == ChainSLO(max_latency_s=0.25, min_bandwidth_mbps=0.5)
    # Chains are per-assignment objects: every compile is a fresh one.
    assert spec.chain_for("embb") is not embb
    # The full graph compiles too (no slice, no SLO).
    full = spec.chain_for()
    assert full.name == "mobile-core@v1" and len(full) == 3 and full.slo is None
    with pytest.raises(BundleError):
        spec.chain_for("mmtc")


def test_bundle_spec_validation_rejects_bad_graphs():
    amf = BundleNF(name="amf", nf_type="amf")
    with pytest.raises(BundleError):  # dangling dependency
        BundleSpec(
            name="b", version=1, nfs=(BundleNF(name="x", nf_type="firewall", requires=("y",)),)
        ).validate()
    with pytest.raises(BundleError):  # slice referencing an unknown NF
        BundleSpec(
            name="b", version=1, nfs=(amf,),
            slices=(SliceSpec(name="s", nf_names=("ghost",)),),
        ).validate()
    with pytest.raises(BundleError):  # empty slice
        BundleSpec(
            name="b", version=1, nfs=(amf,), slices=(SliceSpec(name="s", nf_names=()),)
        ).validate()
    with pytest.raises(BundleError):  # versions start at 1
        BundleSpec(name="b", version=0, nfs=(amf,)).validate()
    catalogue = BundleCatalogue()
    catalogue.register(BundleSpec(name="b", version=1, nfs=(amf,)))
    with pytest.raises(BundleError):  # duplicate registration
        catalogue.register(BundleSpec(name="b", version=1, nfs=(amf,)))


# ---------------------------------------------------------------------------
# State/config split (the property upgrades depend on)
# ---------------------------------------------------------------------------


def test_edge_cache_state_roundtrip_preserves_all_counters():
    source = EdgeCache()
    source.evictions = 7
    source.bytes_served_from_cache = 4096
    target = EdgeCache()
    target.import_state(source.export_state())
    assert target.evictions == 7
    assert target.bytes_served_from_cache == 4096


def test_mobile_core_state_never_carries_config():
    """Rolling upgrades import v1 state into a v2 instance; exported state
    must therefore carry runtime tables only, never configuration."""
    from repro.nfs.mobile_core import AMFFunction, SMFFunction, UPFFunction

    for nf in (AMFFunction(), SMFFunction(), UPFFunction(edge_breakout=True)):
        state = nf.export_state()
        for config_key in ("signalling_interval_s", "session_ttl_s", "edge_breakout", "breakout_ports"):
            assert config_key not in state, (nf.nf_type, config_key)
    upgraded = UPFFunction(edge_breakout=True, breakout_ports=(8080,))
    old = UPFFunction(edge_breakout=False)
    old.tunneled_packets = 11
    upgraded.import_state(old.export_state())
    assert upgraded.edge_breakout is True  # v2 config survives the import
    assert upgraded.tunneled_packets == 11  # v1 state arrives


# ---------------------------------------------------------------------------
# The orchestrator walk (unit level, one station)
# ---------------------------------------------------------------------------


def _bundle_testbed(schedule=None):
    bed = GNFTestbed(TestbedConfig(station_count=1, seed=11))
    client = bed.add_client("phone", position=(0.0, 0.0))
    bed.start()
    bed.run(0.5)
    spec = bed.upgrades.catalogue.get("mobile-core", 1)
    assignment = bed.manager.attach_chain(
        client.ip, spec.chain_for("embb"), schedule=schedule, station_name="station-1"
    )
    bed.run(6.0)
    assert assignment.state is AssignmentState.ACTIVE
    bed.upgrades.register_instance(
        assignment.assignment_id, "mobile-core", 1, "embb", client.ip, fleet="phone"
    )
    return bed, assignment


def _live_upf(bed, assignment_id):
    deployment = bed.agents["station-1"].deployments[assignment_id]
    return next(d.nf for d in deployment.deployed_nfs if d.nf.nf_type == "upf")


def test_precopy_upgrade_has_zero_coverage_gap():
    bed, assignment = _bundle_testbed()
    assert bed.upgrades.live_refs() == {"mobile-core@v1": 1}
    assert bed.upgrades.upgrade_bundle("mobile-core", 2, mode="precopy") == 1
    bed.run(15.0)
    telemetry = bed.upgrades.telemetry()
    assert telemetry["instances"] == {"mobile-core@v2": 1}
    assert telemetry["cutovers"] == 1 and telemetry["failures"] == 0
    assert telemetry["max_coverage_gap_s"] == 0.0
    assert 0.0 < telemetry["max_downtime_s"] < 0.05  # under the precopy target
    # The live instance now runs the v2 config, rules still installed.
    assert _live_upf(bed, assignment.assignment_id).edge_breakout is True
    assert bed.agents["station-1"].deployments[assignment.assignment_id].rules_installed
    # No staging leftovers.
    assert upgrade_staging_id(assignment.assignment_id) not in bed.agents["station-1"].deployments
    bed.stop()


def test_stateful_upgrade_pays_a_measured_gap():
    bed, assignment = _bundle_testbed()
    bed.upgrades.upgrade_bundle("mobile-core", 2, mode="stateful")
    bed.run(15.0)
    telemetry = bed.upgrades.telemetry()
    assert telemetry["instances"] == {"mobile-core@v2": 1}
    (record,) = telemetry["records"]
    assert record["success"] and record["mode"] == "stateful"
    # Freeze-then-copy: the coverage gap is real and equals the downtime.
    assert record["coverage_gap_s"] > 0.0
    assert record["coverage_gap_s"] == record["downtime_s"]
    bed.stop()


def test_idempotent_upgrade_skips_instances_already_on_target():
    bed, _ = _bundle_testbed()
    assert bed.upgrades.upgrade_bundle("mobile-core", 2) == 1
    bed.run(15.0)
    # Nothing left on v1: a second roll queues no work.
    assert bed.upgrades.upgrade_bundle("mobile-core", 2) == 0
    bed.stop()


def test_schedule_disable_racing_upgrade_defers_rule_install():
    """An NFScheduler disable landing mid-upgrade must carry over: the v2
    instance comes up *without* steering rules, and the next scheduled
    enable activates it -- never a half-active chain."""
    # Active [0, 30) and [60, 90); disabled [30, 60) each 60 s day.
    schedule = TimeSchedule.daily(0.0, 30.0, day_length_s=60.0)
    bed, assignment = _bundle_testbed(schedule=schedule)
    bed.run(32.0)  # past the disable edge: rules are down, chain idle
    deployment = bed.agents["station-1"].deployments[assignment.assignment_id]
    assert not deployment.rules_installed
    bed.upgrades.upgrade_bundle("mobile-core", 2, mode="precopy")
    bed.run(15.0)  # upgrade completes inside the disabled window
    telemetry = bed.upgrades.telemetry()
    assert telemetry["instances"] == {"mobile-core@v2": 1}
    deployment = bed.agents["station-1"].deployments[assignment.assignment_id]
    assert not deployment.rules_installed  # cutover inherited "disabled"
    bed.run(15.0)  # crosses t=60: the scheduler re-enables the v2 chain
    deployment = bed.agents["station-1"].deployments[assignment.assignment_id]
    assert deployment.rules_installed
    assert _live_upf(bed, assignment.assignment_id).edge_breakout is True
    bed.stop()


def test_upgrade_retries_through_station_outage_and_never_half_cuts():
    bed, assignment = _bundle_testbed()
    agent = bed.agents["station-1"]
    agent.stop()  # the station goes dark before the roll starts
    bed.upgrades.upgrade_bundle("mobile-core", 2, mode="precopy")
    bed.run(5.0)
    telemetry = bed.upgrades.telemetry()
    # Stalled, not failed -- and the live instance is untouched v1.
    assert telemetry["cutovers"] == 0 and telemetry["failures"] == 0
    assert telemetry["retries"] >= 3
    assert bed.upgrades.live_refs() == {"mobile-core@v1": 1}
    assert _live_upf(bed, assignment.assignment_id).edge_breakout is False
    agent.start()  # outage over: the walk resumes and completes
    bed.run(15.0)
    telemetry = bed.upgrades.telemetry()
    assert telemetry["instances"] == {"mobile-core@v2": 1}
    assert telemetry["cutovers"] == 1 and telemetry["failures"] == 0
    assert telemetry["max_coverage_gap_s"] == 0.0
    assert upgrade_staging_id(assignment.assignment_id) not in agent.deployments
    bed.stop()


# ---------------------------------------------------------------------------
# The canned scenarios (integration + the acceptance gates)
# ---------------------------------------------------------------------------


def test_bundle_rolling_upgrade_scenario_survives_chaos_on_v2():
    """The acceptance walk: four mobile-core@v1 instances roll to v2 while
    station-2 crashes mid-upgrade -- retries happen, every instance ends on
    v2, and the coverage gap stays exactly zero."""
    result = run_scenario("bundle-rolling-upgrade", seed=0)
    assert result.drained
    assert result.faults_injected == 1  # the mid-roll station crash fired
    telemetry = result.testbed.upgrades.telemetry()
    assert telemetry["instances"] == {"mobile-core@v2": 4}
    assert telemetry["cutovers"] == 4 and telemetry["failures"] == 0
    assert telemetry["retries"] >= 1  # the crash made at least one job wait
    assert telemetry["max_coverage_gap_s"] == 0.0
    assert all(record["success"] for record in telemetry["records"])
    assert {record["slice"] for record in telemetry["records"]} == {"embb", "iot"}
    # The digest carries the bundle census, so replays gate on it.
    assert "bundles" in result.digest.components


def test_bundle_rolling_upgrade_digest_invariant_across_regions_and_shards():
    base = run_scenario("bundle-rolling-upgrade", seed=0, region_count=1, shard_count=1)
    federated = run_scenario("bundle-rolling-upgrade", seed=0, region_count=2, shard_count=4)
    assert federated.digest == base.digest, base.digest.diff(federated.digest)


def test_slice_scenario_runs_both_slices_with_distinct_slos():
    result = run_scenario("slice-embb-iot", seed=0)
    assert result.drained and result.attach_failures == []
    assert result.testbed.upgrades.live_refs() == {"mobile-core@v1": 5}
    slos = {a.chain.name.split("/")[-1]: a.chain.slo for a in result.testbed.manager.assignments.values()}
    assert slos["embb"] == ChainSLO(max_latency_s=0.05, min_bandwidth_mbps=6.0)
    assert slos["iot"] == ChainSLO(max_latency_s=0.25, min_bandwidth_mbps=0.5)


def test_upf_edge_breakout_saves_backhaul_vs_core():
    result = run_scenario("upf-edge-vs-core", seed=0)
    assert result.drained
    edge_bytes = core_bytes = 0
    for agent in result.testbed.agents.values():
        for deployment in agent.deployments.values():
            for deployed in deployment.deployed_nfs:
                if deployed.nf.nf_type != "upf":
                    continue
                if deployed.nf.edge_breakout:
                    edge_bytes += deployed.nf.breakout_bytes
                    assert deployed.nf.tunneled_bytes == 0
                else:
                    core_bytes += deployed.nf.tunneled_bytes
                    assert deployed.nf.breakout_bytes == 0
    # Both sides saw traffic; the edge side kept all of it off the backhaul.
    assert edge_bytes > 0 and core_bytes > 0


# ---------------------------------------------------------------------------
# Per-station cache telemetry (satellite: digest-visible like flows.*)
# ---------------------------------------------------------------------------


def test_cache_telemetry_reaches_collector_and_rollup_tree():
    result = run_scenario("mixed-chain-density", seed=0, shard_count=2)
    totals = {"cache.hits": 0.0, "cache.bytes_served_from_cache": 0.0}
    for agent in result.testbed.agents.values():
        latest = agent.collector.latest()
        for key in totals:
            totals[key] += latest.get(key, 0.0)
    assert totals["cache.hits"] > 0
    assert totals["cache.bytes_served_from_cache"] > 0
    # The sharded frontend folds per-station cache deltas from heartbeats
    # into the rollup tree.  The stream is heartbeat-granular, so the root
    # may lag the collectors by the delta since the last beat -- but it is
    # live, positive, and never overshoots the ground truth.
    root = result.testbed.manager.telemetry.counters
    assert 0 < root.get("cache_hits") <= int(totals["cache.hits"])
    assert 0 < root.get("cache_bytes_served_from_cache") <= int(totals["cache.bytes_served_from_cache"])
    # And the digest gates on it: the per-station stations section carries
    # the cache.* counters alongside flows.*.
    assert "stations" in result.digest.components
