"""Unit tests for every workload generator.

Each generator class (CBR, HTTP, DNS, video, bulk, QUIC, ABR) is driven
against a stub endpoint so the tests pin down the generator contract
itself: seeded determinism, the stats/loss-rate arithmetic, intensity
scaling/pausing, and that ``stop()`` cancels every event the generator
still has on the simulator queue.
"""

from __future__ import annotations

import pytest

from repro.netem import packet as pkt
from repro.netem.fluid import HybridScheduler
from repro.netem.simulator import Simulator
from repro.netem.trafficgen import (
    ABRVideoGenerator,
    BulkTransferGenerator,
    CBRTrafficGenerator,
    DNSWorkloadGenerator,
    HTTPWorkloadGenerator,
    QUICWorkloadGenerator,
    VideoWorkloadGenerator,
)

SERVER = "10.30.0.2"


class StubClient:
    """Minimal TrafficEndpoint: records sends, lets tests inject receives."""

    ip = "10.10.0.5"
    mac = "02:00:00:00:00:01"

    def __init__(self):
        self.sent = []
        self._listeners = []

    def send_packet(self, packet):
        self.sent.append(packet)
        return True

    def add_receive_listener(self, listener):
        self._listeners.append(listener)

    def deliver(self, packet):
        for listener in self._listeners:
            listener(packet)


def echo_http(request, status=200, body_bytes=None, now=0.0):
    """The server-side response for ``request``, probe metadata threaded."""
    if body_bytes is None:
        body_bytes = int(request.metadata.get("http_body_bytes", 10_000))
    response = pkt.make_http_response(
        request, status=status, body_bytes=body_bytes, created_at=now
    )
    for key in ("probe_gen", "request_created_at", "app_protocol", "quic_cid"):
        if key in request.metadata:
            response.metadata[key] = request.metadata[key]
    return response


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def client():
    return StubClient()


# --------------------------------------------------------------------------
# CBR: pacing, stats arithmetic, duration, stop()
# --------------------------------------------------------------------------


def test_cbr_paces_at_rate(sim, client):
    generator = CBRTrafficGenerator(sim, client, server_ip=SERVER, rate_pps=10.0)
    generator.start()
    sim.run_for(1.0)
    # First tick at t=0, then every 0.1 s: 11 packets in [0, 1].
    assert generator.packets_sent == 11
    assert generator.bytes_sent == sum(p.size_bytes for p in client.sent)


def test_cbr_duration_stops_sending(sim, client):
    generator = CBRTrafficGenerator(
        sim, client, server_ip=SERVER, rate_pps=10.0, duration_s=0.5
    )
    generator.start()
    sim.run_for(2.0)
    assert generator.packets_sent <= 7
    assert not generator.running


def test_loss_rate_math(sim, client):
    generator = CBRTrafficGenerator(sim, client, server_ip=SERVER, rate_pps=10.0)
    generator.start()
    sim.run_for(0.95)  # 10 sends
    assert generator.packets_sent == 10
    # Echo only 4 of them back.
    for request in client.sent[:4]:
        echoed = request.copy()
        client.deliver(echoed)
    stats = generator.stats()
    assert stats["responses_received"] == 4.0
    assert stats["loss_rate"] == pytest.approx(0.6)
    # Responses for a *different* generator id are ignored.
    stranger = client.sent[0].copy()
    stranger.metadata["probe_gen"] = 999_999
    client.deliver(stranger)
    assert generator.responses_received == 4


def test_loss_rate_zero_when_nothing_sent(sim, client):
    generator = CBRTrafficGenerator(sim, client, server_ip=SERVER)
    assert generator.loss_rate() == 0.0


def test_rtt_samples_from_echo(sim, client):
    generator = CBRTrafficGenerator(sim, client, server_ip=SERVER, rate_pps=100.0)
    generator.start()

    def echo_at(delay, request):
        sim.schedule(delay, client.deliver, request.copy())

    sim.run_for(0.005)
    request = client.sent[0]
    echo_at(0.03, request)
    sim.run_for(0.05)
    generator.stop()
    assert generator.rtts
    assert generator.mean_rtt() >= 0.03


# --------------------------------------------------------------------------
# stop() cancels pending events -- every generator class
# --------------------------------------------------------------------------


def _make_generator(kind, sim, client):
    if kind == "cbr":
        return CBRTrafficGenerator(sim, client, server_ip=SERVER, rate_pps=50.0)
    if kind == "http":
        return HTTPWorkloadGenerator(sim, client, server_ip=SERVER, mean_think_time_s=0.2)
    if kind == "dns":
        return DNSWorkloadGenerator(sim, client, resolver_ip=SERVER, query_interval_s=0.2)
    if kind == "video":
        return VideoWorkloadGenerator(
            sim, client, server_ip=SERVER, segment_interval_s=0.3, packets_per_segment=10
        )
    if kind == "quic":
        return QUICWorkloadGenerator(sim, client, server_ip=SERVER, mean_gap_s=0.2)
    if kind == "abr":
        return ABRVideoGenerator(sim, client, server_ip=SERVER, segment_duration_s=0.3)
    if kind == "bulk":
        scheduler = HybridScheduler(sim, mode="packet")
        return BulkTransferGenerator(
            sim, client, server_ip=SERVER, scheduler=scheduler, total_bytes=1e7
        )
    raise AssertionError(kind)


ALL_KINDS = ("cbr", "http", "dns", "video", "quic", "abr", "bulk")


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_stop_cancels_pending_events(kind, sim, client):
    generator = _make_generator(kind, sim, client)
    generator.start()
    sim.run_for(0.5)
    assert generator.packets_sent > 0
    generator.stop()
    # Everything still on the queue belonged to the generator and is gone.
    assert sim.pending_events == 0
    sent_before = generator.packets_sent
    sim.run_for(2.0)
    assert generator.packets_sent == sent_before


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_stats_keys_present(kind, sim, client):
    generator = _make_generator(kind, sim, client)
    generator.start()
    sim.run_for(0.4)
    generator.stop()
    stats = generator.stats()
    for key in ("packets_sent", "bytes_sent", "responses_received", "loss_rate"):
        assert key in stats
    assert stats["packets_sent"] == float(generator.packets_sent)


# --------------------------------------------------------------------------
# Intensity scaling (the traffic-era knob)
# --------------------------------------------------------------------------


def test_intensity_scales_offered_load(sim, client):
    generator = CBRTrafficGenerator(sim, client, server_ip=SERVER, rate_pps=10.0)
    generator.intensity = 2.0
    generator.start()
    sim.run_for(1.0)
    # Doubled intensity halves the inter-packet gap: ~21 instead of ~11
    # (the t=1.0 tick may fall just past the window by float accumulation).
    assert generator.packets_sent in (20, 21)


def test_intensity_zero_pauses_and_resume_restarts(sim, client):
    generator = CBRTrafficGenerator(sim, client, server_ip=SERVER, rate_pps=10.0)
    generator.start()
    sim.run_for(0.55)
    generator.set_intensity(0.0)
    sim.run_for(1.0)
    paused_at = generator.packets_sent
    sim.run_for(1.0)
    assert generator.packets_sent == paused_at  # fully paused
    generator.set_intensity(1.0)
    sim.run_for(1.0)
    assert generator.packets_sent > paused_at  # resumed


def test_resume_does_not_double_chain(sim, client):
    generator = CBRTrafficGenerator(sim, client, server_ip=SERVER, rate_pps=10.0)
    generator.start()
    # Flip intensity while the next tick is still pending: the guard must
    # not start a second self-chain alongside it.
    generator.set_intensity(2.0)
    generator.set_intensity(1.0)
    sim.run_for(1.0)
    assert generator.packets_sent <= 12


def test_negative_intensity_rejected(sim, client):
    generator = CBRTrafficGenerator(sim, client, server_ip=SERVER)
    with pytest.raises(ValueError):
        generator.set_intensity(-0.1)


# --------------------------------------------------------------------------
# HTTP / DNS / video specifics
# --------------------------------------------------------------------------


def test_http_seeded_determinism(sim, client):
    sim_b, client_b = Simulator(), StubClient()
    a = HTTPWorkloadGenerator(sim, client, server_ip=SERVER, seed=42, mean_think_time_s=0.3)
    b = HTTPWorkloadGenerator(sim_b, client_b, server_ip=SERVER, seed=42, mean_think_time_s=0.3)
    a.start()
    b.start()
    sim.run_for(5.0)
    sim_b.run_for(5.0)
    assert len(client.sent) == len(client_b.sent) > 3
    assert [p.app.url for p in client.sent] == [p.app.url for p in client_b.sent]
    assert [p.created_at for p in client.sent] == [p.created_at for p in client_b.sent]


def test_http_counts_blocked_pages(sim, client):
    generator = HTTPWorkloadGenerator(sim, client, server_ip=SERVER, mean_think_time_s=0.5)
    generator.start()
    sim.run_for(0.01)
    request = client.sent[0]
    client.deliver(echo_http(request, status=403, body_bytes=0))
    assert generator.pages_blocked == 1 and generator.pages_fetched == 0
    sim.run_for(2.0)
    client.deliver(echo_http(client.sent[-1], status=200, body_bytes=5_000))
    assert generator.pages_fetched == 1
    assert generator.bytes_downloaded == 5_000


def test_dns_records_answers(sim, client):
    generator = DNSWorkloadGenerator(
        sim, client, resolver_ip=SERVER, names=["cdn.example.com"], query_interval_s=0.5
    )
    generator.start()
    sim.run_for(0.01)
    query = client.sent[0]
    response = pkt.make_dns_response(query, addresses=["198.18.0.1"])
    response.metadata.update(
        {k: query.metadata[k] for k in ("probe_gen", "request_created_at")}
    )
    client.deliver(response)
    assert generator.answers["cdn.example.com"] == ["198.18.0.1"]
    assert generator.resolution_counts()["cdn.example.com"]["198.18.0.1"] == 1


def test_video_bursts_per_segment(sim, client):
    generator = VideoWorkloadGenerator(
        sim, client, server_ip=SERVER, segment_interval_s=1.0, packets_per_segment=8
    )
    generator.start()
    sim.run_for(2.5)
    assert generator.segments_requested == 3
    assert generator.packets_sent == 24
    assert generator.stats()["segments_requested"] == 3.0


def test_video_stop_cancels_burst_tail(sim, client):
    generator = VideoWorkloadGenerator(
        sim, client, server_ip=SERVER, segment_interval_s=1.0, packets_per_segment=50
    )
    generator.start()
    # Stop immediately: the burst's sub-events are pending but unsent.
    generator.stop()
    sim.run_for(1.0)
    assert sim.pending_events == 0
    assert generator.packets_sent == 0


# --------------------------------------------------------------------------
# QUIC: bursts, connection IDs, migrations, determinism
# --------------------------------------------------------------------------


def test_quic_seeded_determinism(sim, client):
    sim_b, client_b = Simulator(), StubClient()
    a = QUICWorkloadGenerator(sim, client, server_ip=SERVER, seed=5, mean_gap_s=0.3)
    b = QUICWorkloadGenerator(sim_b, client_b, server_ip=SERVER, seed=5, mean_gap_s=0.3)
    a.start()
    b.start()
    sim.run_for(10.0)
    sim_b.run_for(10.0)
    assert len(client.sent) == len(client_b.sent) > 5
    for x, y in zip(client.sent, client_b.sent):
        assert x.app.url == y.app.url
        assert x.metadata["quic_cid"] == y.metadata["quic_cid"]
        assert x.l4.src_port == y.l4.src_port
        assert x.created_at == y.created_at
    assert a.stats() == b.stats()


def test_quic_bursts_share_one_timestamp(sim, client):
    generator = QUICWorkloadGenerator(
        sim, client, server_ip=SERVER, seed=1, mean_gap_s=0.5, max_burst=4
    )
    generator.start()
    sim.run_for(20.0)
    generator.stop()
    by_time = {}
    for packet in client.sent:
        by_time.setdefault(packet.created_at, 0)
        by_time[packet.created_at] += 1
    # Vectorized bursts: at least one event emitted >1 request back-to-back.
    assert max(by_time.values()) > 1
    assert sum(by_time.values()) == generator.packets_sent


def test_quic_connection_lifecycle(sim, client):
    generator = QUICWorkloadGenerator(
        sim,
        client,
        server_ip=SERVER,
        seed=3,
        mean_gap_s=0.2,
        requests_per_connection=5,
        migrate_probability=1.0,  # migrate at every non-fresh burst
    )
    generator.start()
    sim.run_for(30.0)
    generator.stop()
    assert generator.connections_opened >= 2
    assert generator.migrations >= 1
    # 0-RTT flights happen on fresh connections only, one count per request.
    assert 0 < generator.zero_rtt_requests <= generator.packets_sent
    # A migration rebinds the source port but keeps the connection ID: every
    # packet's cid is one of the opened connections' ids.
    cids = {p.metadata["quic_cid"] for p in client.sent}
    assert len(cids) == generator.connections_opened
    ports_per_cid = {}
    for packet in client.sent:
        ports_per_cid.setdefault(packet.metadata["quic_cid"], set()).add(
            packet.l4.src_port
        )
    assert any(len(ports) > 1 for ports in ports_per_cid.values())
    # QUIC rides UDP/443 and is marked uncacheable-opaque.
    assert all(p.metadata["app_protocol"] == "quic" for p in client.sent)
    assert all(p.l4.dst_port == pkt.QUIC_PORT for p in client.sent)


def test_quic_counts_downloaded_bytes(sim, client):
    generator = QUICWorkloadGenerator(sim, client, server_ip=SERVER, seed=2)
    generator.start()
    sim.run_for(0.01)
    client.deliver(echo_http(client.sent[0], body_bytes=7_000))
    assert generator.bytes_downloaded == 7_000
    assert generator.stats()["bytes_downloaded"] == 7_000.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"mean_gap_s": 0.0},
        {"max_burst": 0},
        {"requests_per_connection": 0},
        {"migrate_probability": 1.5},
    ],
)
def test_quic_validates_parameters(sim, client, kwargs):
    with pytest.raises(ValueError):
        QUICWorkloadGenerator(sim, client, server_ip=SERVER, **kwargs)


# --------------------------------------------------------------------------
# ABR: ladder pricing, adaptation hysteresis, looping playlists
# --------------------------------------------------------------------------


def test_abr_segment_pricing_and_url_shape(sim, client):
    generator = ABRVideoGenerator(
        sim,
        client,
        server_ip=SERVER,
        content="movie-a",
        ladder_bps=(1_000_000.0, 2_000_000.0),
        segment_duration_s=2.0,
        initial_rung=0,
    )
    generator.start()
    sim.run_for(0.01)
    request = client.sent[0]
    assert request.app.path == "/movie-a/seg-1-1000000.m4s"
    # Object size = bitrate * duration / 8.
    assert request.metadata["http_body_bytes"] == 250_000
    assert request.metadata["app_protocol"] == "abr"
    assert request.metadata["http_content_type"] == "video/mp4"


def test_abr_upshift_needs_two_votes(sim, client):
    generator = ABRVideoGenerator(
        sim,
        client,
        server_ip=SERVER,
        ladder_bps=(1e6, 2e6),
        segment_duration_s=0.5,
        initial_rung=0,
        upshift_headroom=1.25,
    )
    generator.start()

    def fast_echo(request):
        # Served ~instantly: enormous measured throughput.
        sim.schedule(0.001, client.deliver, echo_http(request))

    sim.run_for(0.01)
    fast_echo(client.sent[-1])
    sim.run_for(0.4)
    assert generator.rung == 0  # one fast sample is not enough
    fast_echo(client.sent[-1])
    sim.run_for(0.4)
    generator.stop()
    assert generator.rung == 1
    assert generator.upshifts == 1


def test_abr_downshifts_on_starved_throughput(sim, client):
    generator = ABRVideoGenerator(
        sim,
        client,
        server_ip=SERVER,
        ladder_bps=(1e6, 2e6),
        segment_duration_s=0.5,
        initial_rung=1,
        ewma_alpha=1.0,  # the latest sample is the estimate
    )
    generator.start()
    for _ in range(2):
        sim.run_for(0.51)
        # Each segment takes ~2 s to arrive: measured ~0.5 Mbit/s.
        sim.schedule(2.0, client.deliver, echo_http(client.sent[-1]))
    sim.run_for(5.0)
    generator.stop()
    assert generator.rung == 0
    assert generator.downshifts == 1
    assert generator.throughput_ewma_bps < 1e6


def test_abr_looping_playlist_repeats_urls(sim, client):
    generator = ABRVideoGenerator(
        sim,
        client,
        server_ip=SERVER,
        content="clip",
        ladder_bps=(1e6,),
        segment_duration_s=0.25,
        initial_rung=0,
        loop_segments=3,
    )
    generator.start()
    sim.run_for(2.0)
    generator.stop()
    urls = [p.app.path for p in client.sent]
    assert len(urls) >= 6
    assert set(urls) == {f"/clip/seg-{n}-1000000.m4s" for n in (1, 2, 3)}
    assert urls[0] == urls[3]  # wraps modulo the loop


def test_abr_seeded_determinism_and_shared_catalog(sim, client):
    sim_b, client_b = Simulator(), StubClient()
    a = ABRVideoGenerator(sim, client, server_ip=SERVER, seed=9, src_port=46_100)
    b = ABRVideoGenerator(sim_b, client_b, server_ip=SERVER, seed=9, src_port=46_100)
    assert a.content == b.content  # same seed draws the same catalog entry
    a.start()
    b.start()
    sim.run_for(6.0)
    sim_b.run_for(6.0)
    assert [p.app.url for p in client.sent] == [p.app.url for p in client_b.sent]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"ladder_bps": ()},
        {"ladder_bps": (2e6, 1e6)},
        {"segment_duration_s": 0.0},
        {"initial_rung": 7},
        {"ewma_alpha": 0.0},
        {"loop_segments": 0},
    ],
)
def test_abr_validates_parameters(sim, client, kwargs):
    with pytest.raises(ValueError):
        ABRVideoGenerator(sim, client, server_ip=SERVER, **kwargs)


# --------------------------------------------------------------------------
# Bulk: byte budget, one-way stats, stop() deregisters
# --------------------------------------------------------------------------


def test_bulk_completes_exact_byte_budget(sim, client):
    scheduler = HybridScheduler(sim, mode="packet")
    generator = BulkTransferGenerator(
        sim,
        client,
        server_ip=SERVER,
        scheduler=scheduler,
        total_bytes=100_000,
        rate_bps=8e6,
        chunk_bytes=16_000,
    )
    generator.start()
    sim.run_for(5.0)
    stats = generator.stats()
    assert generator.transfer_complete
    assert stats["bytes_moved"] == 100_000.0
    assert stats["bytes_packet"] == 100_000.0
    assert stats["completed"] == 1.0
    assert stats["loss_rate"] == 0.0  # one-way by contract
    assert all(p.metadata.get("bulk_oneway") for p in client.sent)


def test_bulk_stop_cancels_and_deregisters(sim, client):
    scheduler = HybridScheduler(sim, mode="packet")
    generator = BulkTransferGenerator(
        sim,
        client,
        server_ip=SERVER,
        scheduler=scheduler,
        total_bytes=1e9,
        rate_bps=8e6,
    )
    generator.start()
    sim.run_for(0.1)
    assert generator.flow in scheduler.flows.values()
    generator.stop()
    assert sim.pending_events == 0
    assert generator.flow not in scheduler.flows.values()
