"""Tests for NF roaming: cold, stateful and pre-copy migration, plus the
no-migration baseline."""

from __future__ import annotations

import pytest

from repro.baselines.no_migration import NoMigrationCoordinator
from repro.core.chain import ServiceChain
from repro.core.manager import AssignmentState
from repro.core.roaming import RoamingCoordinator
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import CBRTrafficGenerator, HTTPWorkloadGenerator
from repro.wireless.mobility import LinearMobility


def roaming_scenario(strategy: str, chain: ServiceChain = None, speed: float = 8.0):
    """Build a two-station testbed with a client that will roam to station-2."""
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy=strategy))
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    assignment = testbed.manager.attach_chain(client.ip, chain or ServiceChain.of("firewall", "http-filter"))
    testbed.run(6.0)
    assert assignment.state is AssignmentState.ACTIVE
    mobility = LinearMobility(testbed.simulator, client, velocity_mps=(speed, 0.0), destination=(80.0, 0.0))
    mobility.start()
    return testbed, client, assignment


def test_invalid_strategy_rejected():
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    from repro.core.errors import MigrationError

    with pytest.raises(MigrationError):
        RoamingCoordinator(testbed.simulator, testbed.manager, strategy="teleport")


@pytest.mark.parametrize("strategy", ["cold", "stateful", "precopy"])
def test_migration_follows_the_client(strategy):
    testbed, client, assignment = roaming_scenario(strategy)
    testbed.run(40.0)
    assert client.current_station_name == "station-2"
    records = testbed.roaming.records
    assert len(records) == 1
    record = records[0]
    assert record.success
    assert record.from_station == "station-1"
    assert record.to_station == "station-2"
    assert record.strategy == strategy
    assert assignment.station_name == "station-2"
    assert assignment.migrations == 1
    assert assignment.state is AssignmentState.ACTIVE
    # The new station hosts running containers; the old chain was removed.
    new_deployment = testbed.agents["station-2"].deployment_for_client(client.ip)
    assert new_deployment is not None
    assert all(d.container.is_running for d in new_deployment.deployed_nfs)
    testbed.run(5.0)
    assert testbed.agents["station-1"].deployment_for_client(client.ip) is None


def test_cold_migration_loses_nf_state():
    testbed, client, assignment = roaming_scenario("cold")
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20)
    generator.start()
    testbed.run(40.0)
    new_deployment = testbed.agents["station-2"].deployment_for_client(client.ip)
    firewall = new_deployment.nf_by_type("firewall").nf
    # Fresh instance: its conntrack only contains flows seen after the move.
    assert firewall.conntrack_size <= 2


def test_stateful_migration_preserves_nf_state():
    chain = ServiceChain.single("firewall")
    testbed, client, assignment = roaming_scenario("stateful", chain=chain)
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20)
    generator.start()
    testbed.run(3.0)
    old_fw = testbed.agents["station-1"].deployment_for_client(client.ip).nf_by_type("firewall").nf
    packets_before = old_fw.packets_in
    assert packets_before > 0
    testbed.run(37.0)
    record = testbed.roaming.records[0]
    assert record.success
    assert record.state_transferred_mb > 0
    new_fw = testbed.agents["station-2"].deployment_for_client(client.ip).nf_by_type("firewall").nf
    # The migrated instance carried the old counters/state across.
    assert new_fw.packets_in >= packets_before


def test_precopy_migration_has_smallest_coverage_gap():
    gaps = {}
    for strategy in ("cold", "precopy"):
        testbed, client, assignment = roaming_scenario(strategy)
        testbed.run(40.0)
        record = testbed.roaming.records[0]
        assert record.success, strategy
        gaps[strategy] = record.coverage_gap_s
    assert gaps["precopy"] < gaps["cold"]


def test_precopy_cleans_up_speculative_replicas():
    testbed, client, assignment = roaming_scenario("precopy")
    testbed.run(40.0)
    # Only the chosen station keeps a deployment for this client.
    deployments = [
        name for name, agent in testbed.agents.items() if agent.deployment_for_client(client.ip)
    ]
    testbed.run(5.0)
    deployments = [
        name for name, agent in testbed.agents.items() if agent.deployment_for_client(client.ip)
    ]
    assert deployments == ["station-2"]


def test_migration_summary_statistics():
    testbed, client, assignment = roaming_scenario("cold")
    testbed.run(40.0)
    summary = testbed.roaming.summary()
    assert summary["migrations_started"] == 1
    assert summary["migrations_completed"] == 1
    assert summary["mean_coverage_gap_s"] > 0
    assert testbed.roaming.mean_coverage_gap_s() == summary["mean_coverage_gap_s"]


def test_service_continuity_through_roaming():
    testbed, client, assignment = roaming_scenario("cold")
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20)
    generator.start()
    testbed.run(40.0)
    generator.stop()
    # The client kept its IP and its traffic kept flowing after the handover
    # (short gap during the break-before-make handover itself).
    assert generator.responses_received > 0.8 * generator.packets_sent
    new_deployment = testbed.agents["station-2"].deployment_for_client(client.ip)
    assert new_deployment.deployed_nfs[0].packets_processed > 0


def test_no_migration_baseline_loses_coverage():
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    # Replace the real coordinator with the baseline.
    baseline = NoMigrationCoordinator(testbed.simulator, testbed.manager)
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    assignment = testbed.manager.attach_chain(client.ip, ServiceChain.of("firewall"))
    testbed.run(6.0)
    LinearMobility(testbed.simulator, client, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20)
    generator.start()
    testbed.run(40.0)
    assert baseline.coverage_loss_events() == 1
    assert baseline.stranded_assignments() == [assignment.assignment_id]
    # The chain stayed on station-1 and the client's traffic no longer reaches it.
    assert testbed.agents["station-2"].deployment_for_client(client.ip) is None
    old_nf = testbed.agents["station-1"].deployment_for_client(client.ip).deployed_nfs[0]
    packets_at_handover = old_nf.packets_processed
    testbed.run(10.0)
    assert old_nf.packets_processed == packets_at_handover
    # But the client itself still has connectivity (just no NF coverage).
    assert generator.responses_received > 0
