"""Tests for NF roaming: cold, stateful and pre-copy migration, plus the
no-migration baseline."""

from __future__ import annotations

import pytest

from repro.baselines.no_migration import NoMigrationCoordinator
from repro.netem import packet as pkt
from repro.core.chain import ServiceChain
from repro.core.manager import AssignmentState
from repro.core.roaming import RoamingCoordinator
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import CBRTrafficGenerator, HTTPWorkloadGenerator
from repro.wireless.mobility import LinearMobility


def roaming_scenario(strategy: str, chain: ServiceChain = None, speed: float = 8.0):
    """Build a two-station testbed with a client that will roam to station-2."""
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy=strategy))
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    assignment = testbed.manager.attach_chain(client.ip, chain or ServiceChain.of("firewall", "http-filter"))
    testbed.run(6.0)
    assert assignment.state is AssignmentState.ACTIVE
    mobility = LinearMobility(testbed.simulator, client, velocity_mps=(speed, 0.0), destination=(80.0, 0.0))
    mobility.start()
    return testbed, client, assignment


def test_invalid_strategy_rejected():
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    from repro.core.errors import MigrationError

    with pytest.raises(MigrationError):
        RoamingCoordinator(testbed.simulator, testbed.manager, strategy="teleport")


@pytest.mark.parametrize("strategy", ["cold", "stateful", "precopy"])
def test_migration_follows_the_client(strategy):
    testbed, client, assignment = roaming_scenario(strategy)
    testbed.run(40.0)
    assert client.current_station_name == "station-2"
    records = testbed.roaming.records
    assert len(records) == 1
    record = records[0]
    assert record.success
    assert record.from_station == "station-1"
    assert record.to_station == "station-2"
    assert record.strategy == strategy
    assert assignment.station_name == "station-2"
    assert assignment.migrations == 1
    assert assignment.state is AssignmentState.ACTIVE
    # The new station hosts running containers; the old chain was removed.
    new_deployment = testbed.agents["station-2"].deployment_for_client(client.ip)
    assert new_deployment is not None
    assert all(d.container.is_running for d in new_deployment.deployed_nfs)
    testbed.run(5.0)
    assert testbed.agents["station-1"].deployment_for_client(client.ip) is None


def test_cold_migration_loses_nf_state():
    testbed, client, assignment = roaming_scenario("cold")
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20)
    generator.start()
    testbed.run(40.0)
    new_deployment = testbed.agents["station-2"].deployment_for_client(client.ip)
    firewall = new_deployment.nf_by_type("firewall").nf
    # Fresh instance: its conntrack only contains flows seen after the move.
    assert firewall.conntrack_size <= 2


def test_stateful_migration_preserves_nf_state():
    chain = ServiceChain.single("firewall")
    testbed, client, assignment = roaming_scenario("stateful", chain=chain)
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20)
    generator.start()
    testbed.run(3.0)
    old_fw = testbed.agents["station-1"].deployment_for_client(client.ip).nf_by_type("firewall").nf
    packets_before = old_fw.packets_in
    assert packets_before > 0
    testbed.run(37.0)
    record = testbed.roaming.records[0]
    assert record.success
    assert record.state_transferred_mb > 0
    new_fw = testbed.agents["station-2"].deployment_for_client(client.ip).nf_by_type("firewall").nf
    # The migrated instance carried the old counters/state across.
    assert new_fw.packets_in >= packets_before


def test_precopy_migration_has_smallest_coverage_gap():
    gaps = {}
    for strategy in ("cold", "precopy"):
        testbed, client, assignment = roaming_scenario(strategy)
        testbed.run(40.0)
        record = testbed.roaming.records[0]
        assert record.success, strategy
        gaps[strategy] = record.coverage_gap_s
    assert gaps["precopy"] < gaps["cold"]


def test_precopy_cleans_up_speculative_replicas():
    testbed, client, assignment = roaming_scenario("precopy")
    testbed.run(40.0)
    # Only the chosen station keeps a deployment for this client.
    deployments = [
        name for name, agent in testbed.agents.items() if agent.deployment_for_client(client.ip)
    ]
    testbed.run(5.0)
    deployments = [
        name for name, agent in testbed.agents.items() if agent.deployment_for_client(client.ip)
    ]
    assert deployments == ["station-2"]


def test_migration_summary_statistics():
    testbed, client, assignment = roaming_scenario("cold")
    testbed.run(40.0)
    summary = testbed.roaming.summary()
    assert summary["migrations_started"] == 1
    assert summary["migrations_completed"] == 1
    assert summary["mean_coverage_gap_s"] > 0
    assert testbed.roaming.mean_coverage_gap_s() == summary["mean_coverage_gap_s"]


def test_service_continuity_through_roaming():
    testbed, client, assignment = roaming_scenario("cold")
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20)
    generator.start()
    testbed.run(40.0)
    generator.stop()
    # The client kept its IP and its traffic kept flowing after the handover
    # (short gap during the break-before-make handover itself).
    assert generator.responses_received > 0.8 * generator.packets_sent
    new_deployment = testbed.agents["station-2"].deployment_for_client(client.ip)
    assert new_deployment.deployed_nfs[0].packets_processed > 0


@pytest.mark.parametrize("strategy", ["cold", "stateful", "precopy"])
def test_migration_flushes_stale_fastpath_verdicts(strategy):
    """After a migration no stale cached verdict may survive at the old station.

    The client's traffic ran through station-1's chain long enough to warm the
    flow cache with chain-steering verdicts; once the migration completes the
    old station must hold neither chain rules nor cache entries keyed on the
    client, so nothing can replay a verdict that outputs into the torn-down
    NF ports.
    """
    testbed, client, assignment = roaming_scenario(strategy)
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=50)
    generator.start()
    testbed.run(2.0)
    old_switch = testbed.topology.station("station-1").switch
    # The chain is active and traffic is flowing: the cache is warm with
    # verdicts that reference the client's flows.
    assert any(
        key.ip_src == client.ip or key.ip_dst == client.ip
        for key in old_switch.flow_cache._entries
    )
    testbed.run(43.0)
    generator.stop()
    record = testbed.roaming.records[0]
    assert record.success and record.to_station == "station-2"
    # No chain remains at the old station...
    assert testbed.agents["station-1"].deployment_for_client(client.ip) is None
    # ...and no cache entry touching the client remains either: a flush of the
    # client's entries finds nothing left to remove.
    assert old_switch.flow_cache.flush_ip(client.ip) == 0
    # Any verdict still cached must trace back to a rule still installed in
    # the live table (no dangling chain rules).
    live_rule_ids = {rule.rule_id for rule in old_switch.flow_table.rules()}
    for verdict in old_switch.flow_cache._entries.values():
        assert verdict.rule.rule_id in live_rule_ids or verdict.generation != old_switch.flow_table.generation
    # Traffic kept flowing through the new station after the move.
    assert generator.responses_received > 0
    new_deployment = testbed.agents["station-2"].deployment_for_client(client.ip)
    assert new_deployment is not None


def test_stale_verdict_cannot_forward_after_migration():
    """A packet arriving at the old station post-migration is not steered into
    the removed chain: it takes the default path, and the old NFs see nothing."""
    testbed, client, assignment = roaming_scenario("cold")
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=50)
    generator.start()
    testbed.run(2.0)
    old_deployment = testbed.agents["station-1"].deployment_for_client(client.ip)
    old_nfs = list(old_deployment.deployed_nfs)
    assert any(deployed.packets_processed > 0 for deployed in old_nfs)
    testbed.run(43.0)
    generator.stop()
    assert testbed.roaming.records[0].success
    processed_at_migration = [deployed.packets_processed for deployed in old_nfs]
    # Replay the freshest possible "stale" packet at the old station: same
    # five-tuple the cache was warmed with, injected at the old cell port.
    old_station = testbed.topology.station("station-1")
    old_switch = old_station.switch
    cell_port = next(iter(old_station.cell_ports.values()))
    stale = pkt.make_udp_packet(
        src_ip=client.ip, dst_ip=testbed.server_ip, src_port=40001, dst_port=9000
    )
    old_switch.receive_packet(stale, old_switch.ports[cell_port].interface)
    testbed.run(1.0)
    # The old chain's NFs processed nothing new.
    assert [deployed.packets_processed for deployed in old_nfs] == processed_at_migration


def test_no_migration_baseline_loses_coverage():
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    # Replace the real coordinator with the baseline.
    baseline = NoMigrationCoordinator(testbed.simulator, testbed.manager)
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    assignment = testbed.manager.attach_chain(client.ip, ServiceChain.of("firewall"))
    testbed.run(6.0)
    LinearMobility(testbed.simulator, client, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20)
    generator.start()
    testbed.run(40.0)
    assert baseline.coverage_loss_events() == 1
    assert baseline.stranded_assignments() == [assignment.assignment_id]
    # The chain stayed on station-1 and the client's traffic no longer reaches it.
    assert testbed.agents["station-2"].deployment_for_client(client.ip) is None
    old_nf = testbed.agents["station-1"].deployment_for_client(client.ip).deployed_nfs[0]
    packets_at_handover = old_nf.packets_processed
    testbed.run(10.0)
    assert old_nf.packets_processed == packets_at_handover
    # But the client itself still has connectivity (just no NF coverage).
    assert generator.responses_received > 0


def test_migration_respects_closed_schedule_window():
    """A chain migrating while its schedule window is closed must stay unsteered.

    Regression: the re-deploy at the new station installed steering rules by
    default, and the scheduler never corrected it (its own record already
    said "disabled", so it saw no transition to drive).
    """
    from repro.core.scheduler import ScheduleWindow, TimeSchedule

    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy="cold"))
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    now = testbed.simulator.now
    # Open long enough to deploy, closed long before the roam, reopening later.
    assignment = testbed.manager.attach_chain(
        client.ip,
        ServiceChain.of("firewall"),
        schedule=TimeSchedule(
            windows=[
                ScheduleWindow(now, now + 10.0),
                ScheduleWindow(now + 80.0, now + 200.0),
            ]
        ),
    )
    testbed.run(14.0)  # deployed, then disabled when the window closed
    agent1 = testbed.agents["station-1"]
    cookie = f"chain:{assignment.assignment_id}"
    assert agent1.station.switch.flow_table.rules(cookie=cookie) == []

    LinearMobility(testbed.simulator, client, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    testbed.run(40.0)  # roam + migrate, still inside the closed period
    assert assignment.station_name == "station-2"
    assert assignment.state is AssignmentState.ACTIVE
    agent2 = testbed.agents["station-2"]
    # The migrated chain exists but must not steer during the closed window.
    assert agent2.deployment_for_client(client.ip) is not None
    assert agent2.station.switch.flow_table.rules(cookie=cookie) == []
    # When the window reopens, the scheduler enables it at the new station.
    testbed.run(40.0)
    assert agent2.station.switch.flow_table.rules(cookie=cookie)
