"""Tests for the UI dashboard, the testbed builder and the baselines."""

from __future__ import annotations

import pytest

from repro.baselines.core_nfv import CoreNFVScenario
from repro.baselines.vm_nfv import VMNFVBaseline, vm_image_for
from repro.containers.runtime import RuntimeTimings
from repro.core.chain import ServiceChain
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.simulator import Simulator
from repro.netem.topology import StationProfile


# --------------------------------------------------------------------------
# GNFTestbed builder
# --------------------------------------------------------------------------


def test_testbed_builds_requested_shape():
    testbed = GNFTestbed(TestbedConfig(station_count=3, cells_per_station=2, server_count=2))
    assert len(testbed.agents) == 3
    assert len(testbed.cells) == 6
    assert len(testbed.topology.servers) == 2
    assert testbed.station_names() == ["station-1", "station-2", "station-3"]
    assert testbed.manager.roaming is testbed.roaming


def test_testbed_add_client_and_lookup():
    testbed = GNFTestbed(TestbedConfig(station_count=1))
    client = testbed.add_client(position=(1.0, 2.0))
    assert testbed.client(client.name) is client
    assert client.ip.startswith("10.10.")


def test_testbed_add_server():
    testbed = GNFTestbed(TestbedConfig(station_count=1))
    server = testbed.add_server("extra-server")
    assert server.ip is not None
    assert "extra-server" in testbed.topology.servers


def test_testbed_run_until():
    testbed = GNFTestbed(TestbedConfig(station_count=1))
    testbed.run_until(2.0)
    assert testbed.simulator.now == pytest.approx(2.0)


# --------------------------------------------------------------------------
# Dashboard / UI
# --------------------------------------------------------------------------


def test_dashboard_overview_and_catalog(connected_testbed):
    testbed, client = connected_testbed
    ui = testbed.ui
    overview = ui.overview()
    assert len(overview["online_stations"]) == 2
    catalog = ui.nf_catalog()
    assert any(entry["nf_type"] == "firewall" for entry in catalog)


def test_dashboard_attach_and_views(connected_testbed):
    testbed, client = connected_testbed
    ui = testbed.ui
    assignment = ui.attach_nf(client.ip, "firewall")
    testbed.run(6.0)
    stations = ui.stations()
    row = next(r for r in stations if r["station"] == "station-1")
    assert row["containers_running"] == 1
    assert row["connected_clients"] == 1
    client_rows = ui.clients()
    assert client_rows[0]["nfs"] == ["firewall"]
    view = ui.client_view(client.ip)
    assert view["assignments"][0]["state"] == "active"
    station_view = ui.station_view("station-1")
    assert station_view["deployments"]
    ui.remove_assignment(assignment.assignment_id)
    testbed.run(2.0)
    assert ui.client_view(client.ip)["assignments"][0]["state"] == "removed"


def test_dashboard_attach_chain_and_schedule(connected_testbed):
    testbed, client = connected_testbed
    ui = testbed.ui
    chain_assignment = ui.attach_chain(client.ip, ServiceChain.of("firewall", "flow-monitor"))
    scheduled = ui.schedule_nf(client.ip, "rate-limiter", start_s=100.0, end_s=200.0)
    testbed.run(6.0)
    assert chain_assignment.state.value == "active"
    assert scheduled.schedule.is_active(150.0)
    assert not scheduled.schedule.is_active(50.0)


def test_dashboard_notifications_view(connected_testbed):
    testbed, client = connected_testbed
    from repro.core.notifications import ProviderNotification

    testbed.manager.notifications.publish(
        ProviderNotification(
            received_at=1.0, raised_at=0.9, station_name="station-1",
            nf_name="ids-1", severity="critical", message="intrusion attempt",
        )
    )
    rows = testbed.ui.notifications(minimum_severity="warning")
    assert rows[0]["message"] == "intrusion attempt"


def test_dashboard_text_renderers(connected_testbed):
    testbed, client = connected_testbed
    testbed.ui.attach_nf(client.ip, "firewall")
    testbed.run(6.0)
    overview_text = testbed.ui.render_overview()
    stations_text = testbed.ui.render_stations()
    clients_text = testbed.ui.render_clients()
    assert "GNF network overview" in overview_text
    assert "station-1" in stations_text
    assert client.ip in clients_text


# --------------------------------------------------------------------------
# VM-based NFV baseline
# --------------------------------------------------------------------------


def test_vm_images_are_heavyweight():
    vm = vm_image_for("firewall")
    assert vm.size_mb > 100
    assert vm.default_memory_mb >= 256


def test_vm_instantiation_much_slower_than_container():
    simulator = Simulator()
    vm_platform = VMNFVBaseline(simulator, profile=StationProfile.server_class())
    _, vm_latency = vm_platform.instantiate("firewall")
    container_timings = RuntimeTimings.for_containers()
    from repro.containers.image import ContainerImage

    container_image = ContainerImage.build("gnf/firewall", size_mb=4.0, nf_class="x")
    container_latency = container_timings.create_duration_s() + container_timings.start_duration_s(container_image)
    assert vm_latency > 20 * container_latency


def test_vm_density_far_below_container_density():
    simulator = Simulator()
    # Server-class host: containers reach hundreds, VMs only a handful.
    vm_platform = VMNFVBaseline(simulator, profile=StationProfile.server_class())
    vm_density = vm_platform.max_density("firewall")
    assert 0 < vm_density < 64


def test_vm_does_not_fit_on_router_class_hardware():
    simulator = Simulator()
    vm_platform = VMNFVBaseline(simulator, profile=StationProfile.router_class())
    assert vm_platform.max_density("firewall") == 0


def test_vm_cold_instantiation_includes_image_pull():
    simulator = Simulator()
    platform = VMNFVBaseline(simulator, profile=StationProfile.server_class())
    _, cold = platform.instantiate("cache", warm=False)
    simulator = Simulator()
    platform = VMNFVBaseline(simulator, profile=StationProfile.server_class())
    _, warm = platform.instantiate("cache", warm=True)
    assert cold > warm
    assert platform.supports("firewall")
    assert not platform.supports("quantum")


# --------------------------------------------------------------------------
# Core-NFV latency baseline
# --------------------------------------------------------------------------


def test_edge_cache_beats_core_deployment_on_latency():
    edge = CoreNFVScenario(edge_nf=True, request_count_target=30, mean_think_time_s=0.2).run(duration_s=30.0)
    core = CoreNFVScenario(edge_nf=False, request_count_target=30, mean_think_time_s=0.2).run(duration_s=30.0)
    assert edge.requests > 10 and core.requests > 10
    assert edge.served_locally > 0
    assert core.served_locally == 0
    # Cache hits served at the edge pull the mean latency well below the
    # everything-from-the-core deployment.
    assert edge.mean_latency_s < core.mean_latency_s
    assert edge.deployment == "edge" and core.deployment == "core"
