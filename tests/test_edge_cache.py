"""EdgeCache semantics: eviction order, TTL, accounting, migration.

The promoted cache's contract (documented in ``repro/nfs/cache.py``):

* TTL is **absolute** -- an object expires ``ttl_s`` after ``stored_at``
  and a hit never extends its lifetime; hits update only ``last_hit_at``
  and the per-object hit count, which order *eviction* (LFU, LRU
  tie-break), not expiry.
* Expiry purges count as ``expirations``; only capacity-pressure
  removals count as ``evictions``.
* Admission is size-aware and per-protocol; QUIC is opaque and counts
  as an (uncacheable) miss so the hit rate tracks the traffic mix.
* ``placement="core"`` records hits but forwards every request upstream
  with zero ``backhaul_bytes_saved``.
* The whole cache -- objects and counters -- survives an export/import
  round trip, so a migrating client keeps its warm cache.
"""

from __future__ import annotations

import random

import pytest

from repro.netem import packet as pkt
from repro.nfs.base import Direction, ProcessingContext
from repro.nfs.cache import EdgeCache, _RESPONSE_OVERHEAD_BYTES

CLIENT = "10.10.0.5"
SERVER = "10.30.0.2"


def ctx(direction=Direction.UPSTREAM, now=0.0):
    return ProcessingContext(
        now=now, direction=direction, client_ip=CLIENT, station_name="station-1"
    )


def request(path="/x", host="cdn.example.com", protocol=None):
    packet = pkt.make_http_request(src_ip=CLIENT, dst_ip=SERVER, host=host, path=path)
    if protocol is not None:
        packet.metadata["app_protocol"] = protocol
    return packet


def fill(cache, path, body_bytes, now=0.0, status=200, protocol=None):
    """Miss + store one object; returns the request packet."""
    req = request(path, protocol=protocol)
    cache.process(req, ctx(now=now))
    response = pkt.make_http_response(req, status=status, body_bytes=body_bytes)
    if protocol is not None:
        response.metadata["app_protocol"] = protocol
    cache.process(response, ctx(Direction.DOWNSTREAM, now=now))
    return req


def hit(cache, path, now):
    outputs = cache.process(request(path), ctx(now=now))
    return outputs[0].app.headers.get("X-Cache") == "HIT" if hasattr(
        outputs[0].app, "headers"
    ) else False


# --------------------------------------------------------------------------
# TTL semantics: absolute freshness, hits never extend
# --------------------------------------------------------------------------


def test_ttl_runs_from_insertion_not_last_hit():
    cache = EdgeCache(ttl_s=10.0)
    fill(cache, "/obj", 1_000, now=0.0)
    # Hit at t=9: well within TTL...
    assert hit(cache, "/obj", now=9.0)
    # ...but freshness is stored_at-based: the t=9 hit must NOT have pushed
    # expiry to t=19.  At t=11 the object is stale and the request forwards.
    assert not hit(cache, "/obj", now=11.0)
    assert cache.expirations == 1
    assert cache.evictions == 0
    assert cache.object_count == 0


def test_refresh_resets_ttl_clock():
    cache = EdgeCache(ttl_s=10.0)
    fill(cache, "/obj", 1_000, now=0.0)
    fill(cache, "/obj", 1_000, now=8.0)  # re-store refreshes stored_at
    assert hit(cache, "/obj", now=15.0)  # 7 s after refresh: still fresh


def test_expired_on_insert_pressure_counts_as_expiration():
    cache = EdgeCache(ttl_s=5.0, capacity_mb=0.01, max_object_fraction=1.0)  # 10 kB
    fill(cache, "/old", 6_000, now=0.0)
    # At t=20 /old is stale; inserting /new needs room.  The stale object is
    # purged as an expiration, never as a capacity eviction.
    fill(cache, "/new", 6_000, now=20.0)
    assert cache.expirations == 1
    assert cache.evictions == 0
    assert cache.object_count == 1


# --------------------------------------------------------------------------
# Eviction order: LFU first, LRU tie-break
# --------------------------------------------------------------------------


def test_eviction_removes_least_frequently_hit():
    cache = EdgeCache(capacity_mb=0.01, ttl_s=1e9, max_object_fraction=0.5)  # 10 kB, 3 objects fit
    fill(cache, "/a", 3_000, now=0.0)
    fill(cache, "/b", 3_000, now=1.0)
    fill(cache, "/c", 3_000, now=2.0)
    # /a gets two hits, /c one, /b none.
    hit(cache, "/a", now=3.0)
    hit(cache, "/a", now=4.0)
    hit(cache, "/c", now=5.0)
    fill(cache, "/d", 3_000, now=6.0)  # overflow: one victim needed
    assert cache.evictions == 1
    paths = {entry["url"] for entry in cache.export_state()["objects"]}
    assert not any(path.endswith("/b") for path in paths)  # LFU victim
    assert any(path.endswith("/a") for path in paths)
    assert any(path.endswith("/c") for path in paths)


def test_eviction_ties_break_least_recently_hit():
    cache = EdgeCache(capacity_mb=0.01, ttl_s=1e9, max_object_fraction=0.6)
    fill(cache, "/a", 3_000, now=0.0)
    fill(cache, "/b", 3_000, now=1.0)
    fill(cache, "/c", 3_000, now=2.0)
    # Equal hit counts (one each); /a touched least recently.  Refreshing
    # /c to a bigger body (hit count preserved) forces the overflow, so the
    # tie among equally-hit residents is broken by least-recently-hit.
    hit(cache, "/a", now=3.0)
    hit(cache, "/b", now=4.0)
    hit(cache, "/c", now=5.0)
    fill(cache, "/c", 6_000, now=6.0)
    paths = {entry["url"] for entry in cache.export_state()["objects"]}
    assert not any(path.endswith("/a") for path in paths)  # LRU tie-break
    assert any(path.endswith("/b") for path in paths)
    assert any(path.endswith("/c") for path in paths)


def test_never_hit_objects_degrade_to_lru():
    # hits=0 for all: tie-break on last_hit_at (== insertion time) is LRU.
    cache = EdgeCache(capacity_mb=0.01, ttl_s=1e9, max_object_fraction=0.5)
    fill(cache, "/first", 3_000, now=0.0)
    fill(cache, "/second", 3_000, now=1.0)
    fill(cache, "/third", 3_000, now=2.0)
    fill(cache, "/fourth", 3_000, now=3.0)
    paths = {entry["url"] for entry in cache.export_state()["objects"]}
    assert not any(path.endswith("/first") for path in paths)


# --------------------------------------------------------------------------
# Capacity accounting and admission
# --------------------------------------------------------------------------


def test_capacity_accounting_tracks_stores_hits_and_evictions():
    cache = EdgeCache(capacity_mb=0.1, ttl_s=1e9, max_object_fraction=1.0)
    fill(cache, "/a", 40_000, now=0.0)
    assert cache.used_mb == pytest.approx(0.04)
    fill(cache, "/b", 40_000, now=1.0)
    assert cache.used_mb == pytest.approx(0.08)
    hit(cache, "/a", now=2.0)  # hits do not change occupancy
    assert cache.used_mb == pytest.approx(0.08)
    fill(cache, "/a", 10_000, now=3.0)  # refresh replaces, never double-counts
    assert cache.used_mb == pytest.approx(0.05)
    assert cache.object_count == 2
    fill(cache, "/c", 60_000, now=4.0)  # overflow evicts down to capacity
    assert cache.used_mb <= 0.1 + 1e-9
    assert cache.evictions >= 1


def test_admission_rejects_oversized_objects():
    cache = EdgeCache(capacity_mb=1.0, max_object_fraction=0.25)
    assert cache.max_object_bytes == 250_000
    fill(cache, "/elephant", 300_000, now=0.0)
    assert cache.object_count == 0
    assert cache.admission_rejects == 1
    assert cache.used_mb == 0.0
    fill(cache, "/mouse", 200_000, now=1.0)
    assert cache.object_count == 1


def test_error_statuses_not_admitted():
    cache = EdgeCache()
    fill(cache, "/err", 1_000, status=503)
    assert cache.object_count == 0
    assert cache.admission_rejects == 0  # status filter, not a size reject


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        EdgeCache(capacity_mb=0)
    with pytest.raises(ValueError):
        EdgeCache(max_object_fraction=0.0)
    with pytest.raises(ValueError):
        EdgeCache(placement="cloud")


# --------------------------------------------------------------------------
# Per-protocol cacheability
# --------------------------------------------------------------------------


def test_quic_is_opaque_but_counted():
    cache = EdgeCache()
    req = request("/q", protocol="quic")
    outputs = cache.process(req, ctx())
    assert outputs == [req]  # passed through untouched
    assert cache.uncacheable_requests == 1
    assert cache.misses == 1
    response = pkt.make_http_response(req, body_bytes=1_000)
    response.metadata["app_protocol"] = "quic"
    cache.process(response, ctx(Direction.DOWNSTREAM))
    assert cache.object_count == 0  # never stored
    # A second identical request is still a miss: hit rate tracks the mix.
    cache.process(request("/q", protocol="quic"), ctx(now=1.0))
    assert cache.hit_ratio() == 0.0


def test_abr_segments_are_cacheable():
    cache = EdgeCache()
    fill(cache, "/clip/seg-1-500000.m4s", 125_000, protocol="abr")
    req = request("/clip/seg-1-500000.m4s", protocol="abr")
    outputs = cache.process(req, ctx(now=1.0))
    assert outputs[0].app.headers.get("X-Cache") == "HIT"
    assert cache.hits == 1


# --------------------------------------------------------------------------
# Placement ablation
# --------------------------------------------------------------------------


def test_edge_placement_serves_locally_and_accounts_backhaul():
    cache = EdgeCache(placement="edge")
    fill(cache, "/obj", 10_000)
    outputs = cache.process(request("/obj"), ctx(now=1.0))
    assert isinstance(outputs[0].app, pkt.HTTPResponse)
    assert outputs[0].ip.dst == CLIENT  # turned around at the station
    assert cache.bytes_served_from_cache == 10_000
    assert cache.backhaul_bytes_saved == 10_000 + _RESPONSE_OVERHEAD_BYTES


def test_core_placement_records_hit_but_forwards_upstream():
    cache = EdgeCache(placement="core")
    fill(cache, "/obj", 10_000)
    req = request("/obj")
    outputs = cache.process(req, ctx(now=1.0))
    assert outputs == [req]  # still crosses the uplink
    assert isinstance(outputs[0].app, pkt.HTTPRequest)
    assert cache.hits == 1
    assert cache.bytes_served_from_cache == 10_000
    assert cache.backhaul_bytes_saved == 0


# --------------------------------------------------------------------------
# Export/import: warm-cache migration (seeded property tests)
# --------------------------------------------------------------------------


def test_roundtrip_preserves_objects_and_counters():
    cache = EdgeCache(capacity_mb=0.5, ttl_s=60.0, placement="core")
    fill(cache, "/a", 10_000, now=0.0)
    fill(cache, "/b", 20_000, now=1.0)
    hit(cache, "/a", now=2.0)
    cache.process(request("/q", protocol="quic"), ctx(now=3.0))
    fill(cache, "/elephant", 200_000, now=4.0)
    clone = EdgeCache()
    clone.import_state(cache.export_state())
    assert clone.capacity_mb == cache.capacity_mb
    assert clone.ttl_s == cache.ttl_s
    assert clone.placement == "core"
    assert clone.object_count == cache.object_count
    assert clone.used_mb == pytest.approx(cache.used_mb)
    for counter in (
        "hits",
        "misses",
        "evictions",
        "expirations",
        "admission_rejects",
        "uncacheable_requests",
        "bytes_served_from_cache",
        "backhaul_bytes_saved",
    ):
        assert getattr(clone, counter) == getattr(cache, counter), counter
    assert clone.hit_ratio() == pytest.approx(cache.hit_ratio())


def test_roundtrip_preserves_ttl_and_eviction_ordering():
    cache = EdgeCache(ttl_s=10.0, capacity_mb=0.01, max_object_fraction=1.0)
    fill(cache, "/hot", 3_000, now=0.0)
    fill(cache, "/cold", 3_000, now=1.0)
    hit(cache, "/hot", now=2.0)
    clone = EdgeCache()
    clone.import_state(cache.export_state())
    # TTL clock survives: /hot stored at t=0 expires at t>10 on the clone.
    assert not hit(clone, "/hot", now=11.0)
    assert clone.expirations == cache.expirations + 1
    # Eviction ordering survives: /cold (never hit) is the next victim.
    clone2 = EdgeCache()
    clone2.import_state(cache.export_state())
    fill(clone2, "/new", 6_000, now=3.0)
    paths = {entry["url"] for entry in clone2.export_state()["objects"]}
    assert not any(path.endswith("/cold") for path in paths)
    assert any(path.endswith("/hot") for path in paths)


def _random_workload(cache, rng, start_now=0.0, steps=120):
    """Drive a random mix of stores/hits/expiries; return the final now."""
    now = start_now
    paths = [f"/obj{i}" for i in range(8)]
    for _ in range(steps):
        now += rng.uniform(0.1, 3.0)
        path = rng.choice(paths)
        action = rng.random()
        if action < 0.55:
            cache.process(request(path), ctx(now=now))
        elif action < 0.9:
            fill(cache, path, rng.randrange(1_000, 30_000), now=now)
        else:
            cache.process(request(path, protocol="quic"), ctx(now=now))
    return now


@pytest.mark.parametrize("case_seed", range(8))
def test_warm_cache_migration_preserves_future_hit_rate(case_seed):
    """Property: a migrated (exported+imported) cache behaves identically.

    The same post-migration request sequence must produce the same hits,
    misses, expirations and evictions on the migrated clone as it would
    have on the original -- byte-for-byte warm-cache semantics.
    """
    rng = random.Random(1000 + case_seed)
    cache = EdgeCache(capacity_mb=0.05, ttl_s=20.0)
    handover_at = _random_workload(cache, rng, steps=80)
    clone = EdgeCache()
    clone.import_state(cache.export_state())

    replay_seed = rng.randrange(2**32)
    final_a = _random_workload(cache, random.Random(replay_seed), start_now=handover_at)
    final_b = _random_workload(clone, random.Random(replay_seed), start_now=handover_at)
    assert final_a == final_b
    for counter in ("hits", "misses", "expirations", "evictions", "uncacheable_requests"):
        assert getattr(clone, counter) == getattr(cache, counter), counter
    assert clone.hit_ratio() == pytest.approx(cache.hit_ratio())
    assert clone.used_mb == pytest.approx(cache.used_mb)


@pytest.mark.parametrize("case_seed", range(4))
def test_counters_survive_iterative_precopy(case_seed):
    """Property: repeated export/import rounds (pre-copy) are lossless.

    Iterative pre-copy exports the cache several times while it keeps
    serving; every intermediate import must equal a fresh import of the
    same snapshot, and the final round must carry the complete ledger.
    """
    rng = random.Random(2000 + case_seed)
    cache = EdgeCache(capacity_mb=0.05, ttl_s=30.0)
    replica = EdgeCache()
    now = 0.0
    for _ in range(3):  # three pre-copy rounds with dirtying between them
        replica.import_state(cache.export_state())
        now = _random_workload(cache, rng, start_now=now, steps=30)
    replica.import_state(cache.export_state())  # final (freeze) round
    assert replica.object_count == cache.object_count
    assert replica.used_mb == pytest.approx(cache.used_mb)
    for counter in (
        "hits",
        "misses",
        "evictions",
        "expirations",
        "admission_rejects",
        "uncacheable_requests",
        "bytes_served_from_cache",
        "backhaul_bytes_saved",
    ):
        assert getattr(replica, counter) == getattr(cache, counter), counter
    exported = {entry["url"]: entry for entry in cache.export_state()["objects"]}
    imported = {entry["url"]: entry for entry in replica.export_state()["objects"]}
    assert exported == imported
