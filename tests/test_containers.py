"""Unit tests for the container runtime substrate (images, cgroups,
namespaces, lifecycle, checkpoint/restore, runtime engine)."""

from __future__ import annotations

import pytest

from repro.containers.cgroups import AdmissionError, CgroupEntry, ResourceAccount, ResourceRequest
from repro.containers.checkpoint import CheckpointEngine
from repro.containers.container import Container, ContainerState, InvalidTransitionError
from repro.containers.image import (
    ContainerImage,
    ImageLayer,
    ImageNotFoundError,
    ImageRegistry,
    default_nf_images,
)
from repro.containers.namespaces import MountNamespace, NetworkNamespace, PidNamespace
from repro.containers.runtime import ContainerRuntime, RuntimeTimings
from repro.netem.simulator import Simulator
from repro.nfs.firewall import Firewall


# --------------------------------------------------------------------------
# Images and the registry
# --------------------------------------------------------------------------


def test_image_build_splits_layers():
    image = ContainerImage.build("gnf/test", size_mb=9.0, nf_class="x.Y", layer_count=3)
    assert len(image.layers) == 3
    assert image.size_mb == pytest.approx(9.0)
    assert image.reference == "gnf/test:latest"


def test_image_build_validation():
    with pytest.raises(ValueError):
        ContainerImage.build("bad", size_mb=0, nf_class="x")
    with pytest.raises(ValueError):
        ContainerImage.build("bad", size_mb=1, nf_class="x", layer_count=0)


def test_image_layer_digests_are_content_addressed():
    a = ImageLayer.from_content("layer-a", 1.0)
    b = ImageLayer.from_content("layer-b", 1.0)
    assert a.digest != b.digest


def test_registry_push_get_and_contains():
    registry = ImageRegistry()
    image = ContainerImage.build("gnf/fw", size_mb=4.0, nf_class="x")
    registry.push(image)
    assert "gnf/fw" in registry
    assert registry.get("gnf/fw") is image
    assert registry.get("gnf/fw:latest") is image
    assert registry.catalog() == ["gnf/fw:latest"]


def test_registry_missing_image_raises():
    registry = ImageRegistry()
    with pytest.raises(ImageNotFoundError):
        registry.get("gnf/unknown")


def test_registry_pull_time_scales_with_bandwidth():
    registry = ImageRegistry(request_overhead_s=0.0)
    registry.push(ContainerImage.build("gnf/fw", size_mb=10.0, nf_class="x"))
    _, fast = registry.pull_time_s("gnf/fw", bandwidth_bps=100e6)
    _, slow = registry.pull_time_s("gnf/fw", bandwidth_bps=10e6)
    assert slow == pytest.approx(10 * fast)


def test_registry_pull_skips_cached_layers():
    registry = ImageRegistry(request_overhead_s=0.0)
    image = registry.push(ContainerImage.build("gnf/fw", size_mb=10.0, nf_class="x"))
    cached = {layer.digest for layer in image.layers}
    _, duration = registry.pull_time_s("gnf/fw", bandwidth_bps=100e6, cached_layers=cached)
    assert duration == pytest.approx(0.0)


def test_registry_pull_invalid_bandwidth():
    registry = ImageRegistry()
    registry.push(ContainerImage.build("gnf/fw", size_mb=1.0, nf_class="x"))
    with pytest.raises(ValueError):
        registry.pull_time_s("gnf/fw", bandwidth_bps=0)


def test_default_nf_images_catalogue():
    images = default_nf_images()
    names = {image.name for image in images}
    assert {"gnf/firewall", "gnf/http-filter", "gnf/dns-loadbalancer"} <= names
    assert all(image.size_mb < 20 for image in images)
    assert all(image.nf_class.startswith("repro.nfs.") for image in images)


# --------------------------------------------------------------------------
# cgroups / resource accounting
# --------------------------------------------------------------------------


def test_resource_account_admission_and_release():
    account = ResourceAccount(cpu_mhz=560, memory_mb=128, system_reserved_mb=48)
    assert account.allocatable_memory_mb == pytest.approx(80)
    account.admit("nf-1", ResourceRequest(memory_mb=30))
    assert account.free_memory_mb == pytest.approx(50)
    account.release("nf-1")
    assert account.free_memory_mb == pytest.approx(80)


def test_resource_account_rejects_overcommit():
    account = ResourceAccount(cpu_mhz=560, memory_mb=128, system_reserved_mb=48)
    account.admit("nf-1", ResourceRequest(memory_mb=70))
    with pytest.raises(AdmissionError):
        account.admit("nf-2", ResourceRequest(memory_mb=20))
    assert account.admission_failures == 1


def test_resource_account_duplicate_owner_rejected():
    account = ResourceAccount(cpu_mhz=560, memory_mb=128)
    account.admit("nf-1", ResourceRequest(memory_mb=10))
    with pytest.raises(AdmissionError):
        account.admit("nf-1", ResourceRequest(memory_mb=10))


def test_resource_request_validation():
    with pytest.raises(ValueError):
        ResourceRequest(memory_mb=0)
    with pytest.raises(ValueError):
        ResourceRequest(memory_mb=1, cpu_shares=0)


def test_resource_account_invalid_configuration():
    with pytest.raises(ValueError):
        ResourceAccount(cpu_mhz=0, memory_mb=10)
    with pytest.raises(ValueError):
        ResourceAccount(cpu_mhz=100, memory_mb=10, system_reserved_mb=20)


def test_resource_account_cpu_accounting_and_shares():
    account = ResourceAccount(cpu_mhz=3000, memory_mb=1024)
    account.admit("a", ResourceRequest(memory_mb=10, cpu_shares=256))
    account.admit("b", ResourceRequest(memory_mb=10, cpu_shares=768))
    account.charge_cpu("a", 0.5)
    account.charge_cpu("a", 0.25)
    assert account.cpu_seconds("a") == pytest.approx(0.75)
    assert account.total_cpu_seconds() == pytest.approx(0.75)
    assert account.cpu_share_fraction("b") == pytest.approx(0.75)
    assert account.cpu_share_fraction("missing") == 0.0


def test_resource_account_snapshot_fields():
    account = ResourceAccount(cpu_mhz=3000, memory_mb=1024)
    account.admit("a", ResourceRequest(memory_mb=100))
    snapshot = account.snapshot()
    assert snapshot["workloads"] == 1
    assert 0.0 < snapshot["memory_utilization"] < 1.0


# --------------------------------------------------------------------------
# Namespaces
# --------------------------------------------------------------------------


def test_network_namespace_interfaces_and_routes():
    ns = NetworkNamespace(name="netns-1")
    ns.add_interface("eth0")
    ns.add_interface("eth0")
    ns.add_route("0.0.0.0/0", "eth0")
    assert ns.interface_names == ["eth0"]
    assert ns.serialize()["routes"] == {"0.0.0.0/0": "eth0"}
    ns.remove_interface("eth0")
    assert ns.interface_names == []


def test_pid_namespace_spawn_and_kill():
    ns = PidNamespace(name="pidns-1")
    pid = ns.spawn("/usr/bin/firewall")
    assert ns.process_count == 1
    assert ns.kill(pid)
    assert not ns.kill(pid)
    ns.spawn("a")
    ns.spawn("b")
    assert ns.kill_all() == 2


def test_mount_namespace_layers_and_writes():
    ns = MountNamespace(name="mnt-1")
    ns.mount_layers(["abc", "def"])
    ns.write(2.5)
    assert ns.upper_layer_mb == pytest.approx(2.5)
    with pytest.raises(ValueError):
        ns.write(-1)
    assert ns.serialize()["lower_layers"] == ["abc", "def"]


# --------------------------------------------------------------------------
# Container lifecycle
# --------------------------------------------------------------------------


def make_container(name="fw-1"):
    image = ContainerImage.build("gnf/firewall", size_mb=4.0, nf_class="repro.nfs.firewall.Firewall")
    return Container(name=name, image=image, request=ResourceRequest(memory_mb=8.0), created_at=0.0)


def test_container_happy_path_lifecycle():
    container = make_container()
    assert container.state is ContainerState.CREATED
    container.mark_starting(0.1)
    container.mark_running(0.3)
    assert container.is_running
    assert container.boot_latency() == pytest.approx(0.3)
    container.mark_stopping(5.0)
    container.mark_stopped(5.1)
    assert container.is_terminal
    assert container.uptime(now=10.0) == pytest.approx(4.8)
    assert container.pid_namespace.process_count == 0


def test_container_pause_and_checkpoint_transitions():
    container = make_container()
    container.mark_starting(0.0)
    container.mark_running(0.2)
    container.mark_paused(1.0)
    container.mark_unpaused(1.5)
    container.mark_checkpointing(2.0)
    container.mark_checkpoint_done(2.3)
    assert container.is_running


def test_container_invalid_transitions_rejected():
    container = make_container()
    with pytest.raises(InvalidTransitionError):
        container.mark_running(0.0)
    container.mark_starting(0.0)
    with pytest.raises(InvalidTransitionError):
        container.mark_paused(0.1)
    container.mark_running(0.2)
    with pytest.raises(InvalidTransitionError):
        container.mark_unpaused(0.3)
    with pytest.raises(InvalidTransitionError):
        container.mark_checkpoint_done(0.3)


def test_container_discard_before_start():
    container = make_container()
    container.mark_stopping(1.0)
    assert container.state is ContainerState.STOPPED


def test_container_failure_records_reason():
    container = make_container()
    container.mark_starting(0.0)
    container.mark_failed(0.5, reason="image corrupt")
    assert container.state is ContainerState.FAILED
    assert container.history[-1].reason == "image corrupt"


def test_container_memory_footprint_includes_writable_layer():
    container = make_container()
    container.mount_namespace.write(3.0)
    assert container.memory_footprint_mb == pytest.approx(11.0)


def test_container_describe_document():
    container = make_container()
    doc = container.describe()
    assert doc["image"] == "gnf/firewall:latest"
    assert doc["state"] == "created"


# --------------------------------------------------------------------------
# Runtime engine
# --------------------------------------------------------------------------


def build_runtime(simulator, memory_mb=1024.0, timings=None, registry=None):
    resources = ResourceAccount(cpu_mhz=3000, memory_mb=memory_mb, system_reserved_mb=64)
    if registry is None:
        registry = ImageRegistry()
        for image in default_nf_images():
            registry.push(image)
    return ContainerRuntime(
        simulator,
        name="rt",
        resources=resources,
        registry=registry,
        timings=timings or RuntimeTimings.for_containers(),
        pull_bandwidth_bps=100e6,
    )


def test_runtime_pull_and_cache(simulator):
    runtime = build_runtime(simulator)
    image, pull_time = runtime.ensure_image("gnf/firewall")
    assert pull_time > 0
    _, again = runtime.ensure_image("gnf/firewall")
    assert again == 0.0
    assert runtime.pulls_performed == 1


def test_runtime_requires_registry_for_unknown_images(simulator):
    resources = ResourceAccount(cpu_mhz=3000, memory_mb=512)
    runtime = ContainerRuntime(simulator, "rt", resources, registry=None)
    with pytest.raises(KeyError):
        runtime.ensure_image("gnf/firewall")


def test_runtime_create_start_stop_cycle(simulator):
    runtime = build_runtime(simulator)
    image, _ = runtime.ensure_image("gnf/firewall")
    container = runtime.create(image, "fw-1")
    boot = runtime.start(container)
    assert boot > 0
    simulator.run()
    assert container.is_running
    assert runtime.running_count == 1
    runtime.stop(container)
    simulator.run()
    assert container.state is ContainerState.STOPPED
    assert runtime.resources.free_memory_mb == runtime.resources.allocatable_memory_mb
    runtime.destroy(container)
    assert "fw-1" not in runtime.containers


def test_runtime_duplicate_container_name_rejected(simulator):
    runtime = build_runtime(simulator)
    image, _ = runtime.ensure_image("gnf/firewall")
    runtime.create(image, "fw-1")
    with pytest.raises(ValueError):
        runtime.create(image, "fw-1")


def test_runtime_destroy_requires_terminal_state(simulator):
    runtime = build_runtime(simulator)
    image, _ = runtime.ensure_image("gnf/firewall")
    container = runtime.create(image, "fw-1")
    with pytest.raises(RuntimeError):
        runtime.destroy(container)


def test_runtime_admission_limits_density(simulator):
    runtime = build_runtime(simulator, memory_mb=128.0)
    image, _ = runtime.ensure_image("gnf/firewall")
    created = 0
    while runtime.can_fit(image):
        runtime.create(image, f"fw-{created}")
        created += 1
    assert created > 0
    with pytest.raises(AdmissionError):
        runtime.create(image, "one-too-many")


def test_container_boot_faster_than_vm_boot(simulator):
    container_runtime = build_runtime(simulator, timings=RuntimeTimings.for_containers())
    vm_runtime = build_runtime(simulator, timings=RuntimeTimings.for_vms())
    image, _ = container_runtime.ensure_image("gnf/firewall")
    vm_image, _ = vm_runtime.ensure_image("gnf/firewall")
    c = container_runtime.create(image, "c1")
    v = vm_runtime.create(vm_image, "v1")
    container_boot = container_runtime.start(c)
    vm_boot = vm_runtime.start(v)
    assert vm_boot > 10 * container_boot


def test_runtime_timings_router_slower_than_server():
    router = RuntimeTimings.for_station_profile("router-class")
    server = RuntimeTimings.for_station_profile("server-class")
    image = ContainerImage.build("gnf/x", size_mb=5.0, nf_class="x")
    assert router.start_duration_s(image) > server.start_duration_s(image)


def test_runtime_fail_releases_resources(simulator):
    runtime = build_runtime(simulator)
    image, _ = runtime.ensure_image("gnf/firewall")
    container = runtime.create(image, "fw-1")
    runtime.start(container)
    simulator.run()
    runtime.fail(container, "oom")
    assert container.state is ContainerState.FAILED
    assert runtime.containers_failed == 1
    assert runtime.resources.free_memory_mb == runtime.resources.allocatable_memory_mb


def test_runtime_charge_cpu_reaches_cgroups(simulator):
    runtime = build_runtime(simulator)
    image, _ = runtime.ensure_image("gnf/firewall")
    container = runtime.create(image, "fw-1")
    runtime.charge_cpu("fw-1", 0.02)
    assert runtime.resources.cpu_seconds("fw-1") == pytest.approx(0.02)


def test_runtime_utilization_snapshot(simulator):
    runtime = build_runtime(simulator)
    image, _ = runtime.ensure_image("gnf/firewall")
    container = runtime.create(image, "fw-1")
    runtime.start(container)
    simulator.run()
    util = runtime.utilization()
    assert util["containers_running"] == 1
    assert util["images_cached"] >= 1


# --------------------------------------------------------------------------
# Checkpoint / restore
# --------------------------------------------------------------------------


def test_checkpoint_captures_nf_state(simulator):
    runtime = build_runtime(simulator)
    image, _ = runtime.ensure_image("gnf/firewall")
    container = runtime.create(image, "fw-1", labels={"client": "10.10.0.5"})
    runtime.start(container)
    simulator.run()
    firewall = Firewall(name="fw")
    firewall.accepted = 42
    container.network_function = firewall
    checkpoint, duration = runtime.checkpoint(container)
    simulator.run()
    assert duration > 0
    assert container.is_running  # back to RUNNING after the dump
    assert checkpoint.nf_state["accepted"] == 42
    assert checkpoint.labels["client"] == "10.10.0.5"
    assert checkpoint.size_mb >= container.memory_footprint_mb


def test_checkpoint_transfer_time_scales_with_size():
    engine = CheckpointEngine()
    container = make_container()
    container.network_function = Firewall()
    checkpoint = engine.create(container, now=0.0)
    fast = checkpoint.transfer_time_s(bandwidth_bps=1e9)
    slow = checkpoint.transfer_time_s(bandwidth_bps=1e7)
    assert slow > fast
    with pytest.raises(ValueError):
        checkpoint.transfer_time_s(bandwidth_bps=0)


def test_restore_reinstates_nf_state(simulator):
    source = build_runtime(simulator)
    image, _ = source.ensure_image("gnf/firewall")
    container = source.create(image, "fw-1")
    source.start(container)
    simulator.run()
    firewall = Firewall()
    firewall.accepted = 7
    container.network_function = firewall
    checkpoint, _ = source.checkpoint(container)
    simulator.run()

    destination = build_runtime(simulator)
    restored, duration = destination.restore(checkpoint, name="fw-1-restored")
    restored.network_function = Firewall()
    simulator.run()
    assert duration > 0
    assert restored.is_running
    assert restored.network_function.accepted == 7
    assert destination.checkpoint_engine.restores_applied == 1
