"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.netem.simulator import Event, Process, SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_starts_at_custom_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "late")
    sim.schedule(1.0, seen.append, "early")
    sim.run()
    assert seen == ["early", "late"]


def test_equal_time_events_fire_in_insertion_order():
    sim = Simulator()
    seen = []
    for label in ("a", "b", "c"):
        sim.schedule(1.0, seen.append, label)
    sim.run()
    assert seen == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    sim.schedule(3.5, lambda: None)
    sim.run()
    assert sim.now == pytest.approx(3.5)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    event = sim.schedule(1.0, seen.append, "x")
    event.cancel()
    sim.run()
    assert seen == []
    assert not event.pending


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(10.0, seen.append, "b")
    sim.run(until=5.0)
    assert seen == ["a"]
    assert sim.now == pytest.approx(5.0)
    sim.run()
    assert seen == ["a", "b"]


def test_run_for_advances_relative_time():
    sim = Simulator()
    sim.run_for(2.0)
    assert sim.now == pytest.approx(2.0)
    sim.run_for(3.0)
    assert sim.now == pytest.approx(5.0)


def test_max_events_limit():
    sim = Simulator()
    seen = []
    for index in range(10):
        sim.schedule(float(index), seen.append, index)
    sim.run(max_events=3)
    assert len(seen) == 3


def test_events_processed_counter():
    sim = Simulator()
    for index in range(5):
        sim.schedule(float(index), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_callback_arguments_forwarded():
    sim = Simulator()
    captured = {}
    sim.schedule(1.0, lambda a, b=None: captured.update({"a": a, "b": b}), 1, b=2)
    sim.run()
    assert captured == {"a": 1, "b": 2}


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.schedule(1.0, seen.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == pytest.approx(2.0)


def test_periodic_task_fires_repeatedly_and_stops():
    sim = Simulator()
    ticks = []
    task = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=5.5)
    assert len(ticks) == 5
    task.stop()
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert len(ticks) == 5


def test_periodic_task_initial_delay():
    sim = Simulator()
    ticks = []
    sim.every(1.0, lambda: ticks.append(sim.now), initial_delay=0.5)
    sim.run(until=2.6)
    assert ticks == pytest.approx([0.5, 1.5, 2.5])


def test_periodic_interval_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


def test_process_sleeps_between_yields():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(("start", sim.now))
        yield 1.5
        trace.append(("mid", sim.now))
        yield 2.5
        trace.append(("end", sim.now))

    sim.process(worker())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.5), ("end", 4.0)]


def test_process_returns_value_and_finishes():
    sim = Simulator()

    def worker():
        yield 1.0
        return 42

    proc = sim.process(worker())
    sim.run()
    assert proc.finished
    assert proc.result == 42


def test_process_can_wait_on_another_process():
    sim = Simulator()
    order = []

    def inner():
        yield 2.0
        order.append("inner-done")
        return "payload"

    def outer():
        result = yield sim.process(inner())
        order.append(("outer-resumed", result, sim.now))

    sim.process(outer())
    sim.run()
    assert order[0] == "inner-done"
    assert order[1] == ("outer-resumed", "payload", 2.0)


def test_process_can_wait_on_event():
    sim = Simulator()
    resumed = []

    def worker(event):
        result = yield event
        resumed.append((sim.now, result))

    event = sim.schedule(2.0, lambda: "fired-result")
    sim.process(worker(event))
    sim.run()
    assert resumed == [(2.0, "fired-result")]


def test_process_waiting_on_already_fired_event_resumes_immediately():
    """A fired event behaves like a finished process: resume, don't hang."""
    sim = Simulator()
    event = sim.schedule(1.0, lambda: 99)
    sim.run()
    resumed = []

    def worker():
        result = yield event
        resumed.append((sim.now, result))

    sim.process(worker())
    sim.run()
    assert resumed == [(1.0, 99)]


def test_two_processes_can_wait_on_the_same_event():
    """Waiters are chained; the second process must not clobber the first."""
    sim = Simulator()
    event = sim.schedule(1.0, lambda: "shared")
    resumed = []

    def worker(label):
        result = yield event
        resumed.append((label, result))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert sorted(resumed) == [("a", "shared"), ("b", "shared")]


def test_process_waiting_on_cancelled_event_resumes_with_none():
    sim = Simulator()
    event = sim.schedule(5.0, lambda: None)
    event.cancel()
    resumed = []

    def worker():
        result = yield event
        resumed.append(result)

    sim.process(worker())
    sim.run()
    assert resumed == [None]


def test_cancel_after_wait_resumes_waiting_process():
    """Cancelling an event a process is already waiting on must not strand it."""
    sim = Simulator()
    event = sim.schedule(5.0, lambda: "never")
    resumed = []

    def worker():
        result = yield event
        resumed.append((sim.now, result))

    sim.process(worker())
    sim.schedule(1.0, event.cancel)
    sim.run()
    assert resumed == [(1.0, None)]


def test_event_waiter_does_not_disturb_callback_result():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: 7)
    event.add_waiter(lambda result: None)
    sim.run()
    assert event.result == 7


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    live = sim.schedule(1.0, lambda: None)
    doomed = sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    assert sim.queued_events == 2
    doomed.cancel()
    assert sim.pending_events == 1
    assert sim.queued_events == 2  # lazy deletion keeps it in the heap
    sim.run()
    assert sim.pending_events == 0
    assert sim.queued_events == 0
    assert live.fired


def test_double_cancel_does_not_skew_live_count():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.pending_events == 1


def test_process_invalid_yield_raises():
    sim = Simulator()

    def worker():
        yield "not a delay"

    sim.process(worker())
    with pytest.raises(SimulationError):
        sim.run()


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_drain_cancels_events():
    sim = Simulator()
    seen = []
    events = [sim.schedule(1.0, seen.append, index) for index in range(3)]
    sim.drain(events)
    sim.run()
    assert seen == []
