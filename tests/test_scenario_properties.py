"""Property-based scenario tests (stdlib-random driven, hypothesis-style).

Random scenario specs -- random topologies, fleets, workload mixes, chains,
churn and fault barrages -- must never deadlock the simulator and must
always drain to ``pending_events == 0`` after teardown.  The generator is
seeded, so every failure is replayable from the printed case seed.
"""

from __future__ import annotations

import random

import pytest

from repro.scenarios import (
    ChainAssignmentSpec,
    ClientFleetSpec,
    FaultSpec,
    MobilitySpec,
    ScenarioRunner,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

NF_POOL = ["firewall", "flow-monitor", "rate-limiter", "http-filter", "nat", "cache"]


def random_spec(rng: random.Random, case: int) -> ScenarioSpec:
    """Draw a small but structurally diverse random scenario."""
    station_count = rng.randint(1, 3)
    topology = TopologySpec(
        station_count=station_count,
        station_spacing_m=rng.choice([60.0, 70.0, 80.0]),
        station_profile=rng.choice(["router", "server"]),
        migration_strategy=rng.choice(["cold", "stateful", "precopy"]),
        fastpath_enabled=rng.random() < 0.8,
        handover_scan_jitter_s=rng.choice([0.0, 0.05]),
    )
    span = (station_count - 1) * topology.station_spacing_m
    fleets = []
    assignments = []
    for fleet_index in range(rng.randint(1, 2)):
        model = rng.choice(["static", "waypoint", "commuter"])
        if model == "waypoint":
            mobility = MobilitySpec(
                model="waypoint",
                start_s=rng.uniform(0.0, 2.0),
                params={
                    "area": (0.0, -20.0, max(span, 40.0), 20.0),
                    "speed_mps": (2.0, 9.0),
                    "pause_s": (0.0, 3.0),
                },
            )
        elif model == "commuter":
            mobility = MobilitySpec(
                model="commuter",
                start_s=rng.uniform(0.0, 2.0),
                params={
                    "anchor_a": (0.0, 0.0),
                    "anchor_b": (max(span, 40.0), 0.0),
                    "speed_mps": rng.uniform(5.0, 10.0),
                    "dwell_s": rng.uniform(1.0, 5.0),
                },
            )
        else:
            mobility = MobilitySpec(model="static")
        workloads = []
        for workload_index in range(rng.randint(0, 2)):
            kind = rng.choice(["cbr", "http", "dns", "video"])
            params = {}
            if kind == "cbr":
                params = {"rate_pps": rng.choice([5.0, 15.0, 30.0])}
            elif kind == "http":
                params = {"mean_think_time_s": rng.uniform(0.5, 2.0)}
            elif kind == "dns":
                params = {"query_interval_s": rng.uniform(0.5, 2.0)}
            else:
                params = {"segment_interval_s": 2.0, "packets_per_segment": 8}
            start = rng.uniform(1.0, 5.0)
            stop = start + rng.uniform(5.0, 15.0) if rng.random() < 0.3 else None
            workloads.append(WorkloadSpec(kind=kind, start_s=start, stop_s=stop, params=params))
        name = f"fleet{fleet_index + 1}"
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=rng.randint(1, 3),
                position=(rng.uniform(0.0, max(span, 1.0)), 0.0),
                spread_m=rng.uniform(0.0, 20.0),
                appear_at_s=rng.uniform(0.0, 3.0),
                appear_stagger_s=rng.uniform(0.0, 0.5),
                mobility=mobility,
                workloads=workloads,
            )
        )
        if rng.random() < 0.8:
            chain_len = rng.randint(1, 2)
            attach = rng.uniform(1.0, 4.0)
            detach = attach + rng.uniform(10.0, 20.0) if rng.random() < 0.4 else None
            daily = (8.0, 18.0) if rng.random() < 0.2 else None
            assignments.append(
                ChainAssignmentSpec(
                    fleet=name,
                    nfs=rng.sample(NF_POOL, chain_len),
                    attach_at_s=attach,
                    detach_at_s=detach,
                    daily_window=daily,
                    day_length_s=25.0,
                )
            )
    faults = []
    for _ in range(rng.randint(0, 3)):
        kind = rng.choice(["station-crash", "link-degrade", "link-down", "container-oom"])
        params = (
            {"bandwidth_factor": rng.uniform(0.05, 0.5), "loss_rate": rng.uniform(0.0, 0.2)}
            if kind == "link-degrade"
            else {}
        )
        faults.append(
            FaultSpec(
                kind=kind,
                station=rng.randint(1, station_count),
                at_s=rng.uniform(5.0, 20.0),
                duration_s=rng.uniform(4.0, 10.0) if kind != "container-oom" else None,
                params=params,
            )
        )
    return ScenarioSpec(
        name=f"property-case-{case}",
        seed=rng.randint(0, 2**32),
        duration_s=rng.uniform(15.0, 30.0),
        topology=topology,
        fleets=fleets,
        assignments=assignments,
        faults=faults,
    )


@pytest.mark.parametrize("case", range(10))
def test_random_scenarios_never_deadlock_and_always_drain(case):
    rng = random.Random(1000 + case)
    spec = random_spec(rng, case)
    spec.validate()
    result = ScenarioRunner(spec).run()
    assert result.drained, (
        f"case {case} (spec seed {spec.seed}) left "
        f"{result.pending_events_after_teardown} live events after teardown: "
        f"{result.testbed.simulator!r}"
    )
    assert result.pending_events_after_teardown == 0
    # The run must have made real progress, not silently no-oped.
    assert result.events_processed > 0
    assert result.duration_s == pytest.approx(spec.duration_s)


def test_random_scenarios_are_individually_deterministic():
    rng = random.Random(77)
    spec = random_spec(rng, 99)
    first = ScenarioRunner(spec).run()
    second = ScenarioRunner(spec).run()
    assert first.digest == second.digest, first.digest.diff(second.digest)


@pytest.mark.parametrize("case", range(6))
def test_random_federated_scenarios_drain_without_orphans(case):
    """Random specs run federated (region_count >= 2) must still drain to
    zero pending events, with no orphaned assignments or chain containers
    left in any region: every region-held assignment is indexed by the
    frontend under the right region, and no agent anywhere keeps running
    containers for an assignment that is no longer ACTIVE."""
    rng = random.Random(4000 + case)
    spec = random_spec(rng, case)
    while spec.topology.station_count < 2:
        spec = random_spec(rng, case)
    spec.validate()
    result = ScenarioRunner(spec).run(region_count=2, shard_count=2)
    assert result.drained, (
        f"case {case} (spec seed {spec.seed}) left "
        f"{result.pending_events_after_teardown} live events after teardown"
    )
    assert result.pending_events_after_teardown == 0
    manager = result.testbed.manager
    assert manager.region_count == 2
    # No orphaned assignments: the frontend's region index and each
    # region's table agree exactly, in both directions.
    for region_index, region in enumerate(manager.regions):
        for assignment_id in region.assignments:
            assert manager._assignment_region.get(assignment_id) == region_index
            assert assignment_id in manager.assignments
    for assignment_id, region_index in manager._assignment_region.items():
        assignment = manager.assignments[assignment_id]
        if assignment.state.value == "active":
            assert assignment_id in manager.regions[region_index].assignments
    # No orphaned segments: after teardown, any still-running chain
    # container belongs to an ACTIVE assignment (faults may have ended the
    # scenario with chains legitimately up; nothing REMOVED may linger).
    for agent in result.testbed.agents.values():
        for container in agent.runtime.containers.values():
            if not container.is_running:
                continue
            assignment_id = container.labels.get("assignment")
            if assignment_id is None:
                continue
            owner = manager.assignments.get(assignment_id)
            assert owner is not None, f"container for unknown assignment {assignment_id}"
            assert owner.state.value == "active", (
                f"case {case}: running container for {owner.state.value} "
                f"assignment {assignment_id} on {agent.station.name}"
            )
