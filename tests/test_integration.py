"""Integration tests reproducing the paper's demo scenario end-to-end
(Fig. 2) and exercising the whole stack together."""

from __future__ import annotations

import pytest

from repro.core.chain import ServiceChain
from repro.core.manager import AssignmentState
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import (
    CBRTrafficGenerator,
    DNSWorkloadGenerator,
    HTTPWorkloadGenerator,
    VideoWorkloadGenerator,
)
from repro.wireless.mobility import CommuterMobility, LinearMobility


def test_fig2_demo_scenario_end_to_end():
    """The paper's demo: a smartphone with firewall + HTTP filter + DNS LB
    roams from one wireless network to the other and its NFs follow."""
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy="cold"))
    phone = testbed.add_client("smartphone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    assert phone.current_station_name == "station-1"

    chain = ServiceChain(
        [
            *ServiceChain.single("firewall").specs,
            *ServiceChain.single("http-filter", config={"blocked_hosts": ["blocked.example.com"]}).specs,
            *ServiceChain.single(
                "dns-loadbalancer", config={"pools": {"cdn.example.com": ["198.18.0.1", "198.18.0.2"]}}
            ).specs,
        ],
        name="demo-chain",
    )
    assignment = testbed.ui.attach_chain(phone.ip, chain)
    testbed.run(8.0)
    assert assignment.state is AssignmentState.ACTIVE

    web = HTTPWorkloadGenerator(
        testbed.simulator, phone, server_ip=testbed.server_ip,
        sites=["blocked.example.com", "news.example.org"], mean_think_time_s=0.5,
    )
    dns = DNSWorkloadGenerator(
        testbed.simulator, phone, resolver_ip=testbed.server_ip,
        names=["cdn.example.com"], query_interval_s=1.0,
    )
    web.start()
    dns.start()
    testbed.run(10.0)

    # The demo UI's real-time statistics are available for station-1.
    station_view = testbed.ui.station_view("station-1")
    assert station_view["resources"]["containers_running"] == 3
    assert web.pages_blocked > 0
    assert dns.resolution_counts()["cdn.example.com"]

    # Roam to the second network.
    LinearMobility(testbed.simulator, phone, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    testbed.run(40.0)

    assert phone.current_station_name == "station-2"
    assert assignment.station_name == "station-2"
    assert assignment.migrations == 1
    record = testbed.roaming.records[0]
    assert record.success and record.nf_types == ["firewall", "http-filter", "dns-loadbalancer"]

    # Policy still enforced after the move: blocked pages stay blocked.
    blocked_before = web.pages_blocked
    testbed.run(15.0)
    assert web.pages_blocked > blocked_before

    # The UI reflects the new placement and the old station is drained.
    testbed.run(3.0)
    assert testbed.ui.station_view("station-2")["resources"]["containers_running"] == 3
    assert testbed.ui.station_view("station-1")["resources"]["containers_running"] == 0
    clients_row = testbed.ui.clients()[0]
    assert clients_row["station"] == "station-2"
    assert clients_row["migrations"] == 1

    web.stop()
    dns.stop()


def test_multiple_clients_with_independent_chains():
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    alice = testbed.add_client("alice", position=(0.0, 0.0))
    bob = testbed.add_client("bob", position=(80.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    assert alice.current_station_name == "station-1"
    assert bob.current_station_name == "station-2"

    a_assignment = testbed.manager.attach_nf(alice.ip, "firewall")
    b_assignment = testbed.manager.attach_nf(bob.ip, "rate-limiter", config={"rate_bps": 2e6})
    testbed.run(8.0)
    assert a_assignment.station_name == "station-1"
    assert b_assignment.station_name == "station-2"

    alice_gen = CBRTrafficGenerator(testbed.simulator, alice, server_ip=testbed.server_ip, rate_pps=20)
    bob_gen = CBRTrafficGenerator(testbed.simulator, bob, server_ip=testbed.server_ip, rate_pps=20)
    alice_gen.start()
    bob_gen.start()
    testbed.run(10.0)

    alice_nf = testbed.agents["station-1"].deployment_for_client(alice.ip).deployed_nfs[0]
    bob_nf = testbed.agents["station-2"].deployment_for_client(bob.ip).deployed_nfs[0]
    assert alice_nf.packets_processed > 0
    assert bob_nf.packets_processed > 0
    # Isolation: alice's chain never saw bob's traffic.
    assert alice_nf.nf.packets_in <= 2 * alice_gen.packets_sent + 5


def test_repeated_roaming_with_commuter_mobility():
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy="precopy"))
    phone = testbed.add_client("commuter", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    testbed.manager.attach_nf(phone.ip, "firewall")
    testbed.run(6.0)
    CommuterMobility(
        testbed.simulator, phone, anchor_a=(0.0, 0.0), anchor_b=(80.0, 0.0), speed_mps=8.0, dwell_s=15.0
    ).start()
    video = VideoWorkloadGenerator(testbed.simulator, phone, server_ip=testbed.server_ip, segment_interval_s=2.0)
    video.start()
    testbed.run(120.0)
    video.stop()

    handovers = testbed.handover.handover_count("commuter")
    assert handovers >= 2
    migrations = testbed.roaming.completed_migrations()
    assert len(migrations) >= 2
    assert all(record.success for record in migrations)
    # Service keeps working across repeated moves.
    assert video.responses_received > 0.7 * video.packets_sent
    assert testbed.manager.assignments_for_client(phone.ip)[0].migrations == len(migrations)


def test_hotspot_detection_on_overloaded_station():
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    # Pack memory-hungry NFs onto the router-class station until it is
    # nearly full; the Manager should flag it as a hotspot from heartbeats.
    for index in range(2):
        testbed.manager.attach_nf(phone.ip, "cache", config={"capacity_mb": 8.0})
    testbed.manager.attach_nf(phone.ip, "ids")
    testbed.run(10.0)
    hotspots = testbed.manager.hotspots.hotspot_stations()
    assert "station-1" in hotspots
    assert "station-1" in testbed.ui.overview()["hotspot_stations"]


def test_agent_offline_detection_when_heartbeats_stop():
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    testbed.run(5.0)
    assert testbed.manager.health.online_stations(testbed.simulator.now) == ["station-1", "station-2"]
    testbed.agents["station-2"].stop()
    testbed.run(30.0)
    now = testbed.simulator.now
    assert testbed.manager.health.offline_stations(now) == ["station-2"]
    assert testbed.manager.health.online_stations(now) == ["station-1"]
