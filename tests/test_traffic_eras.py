"""Traffic eras: spec validation, replay invariance, drain properties.

``TrafficEraSpec`` shifts the per-protocol traffic mix over scenario time
by driving every era-scalable generator's intensity knob.  The applied-era
log is digested client-side, so the digest of an era-driven scenario must
stay byte-identical across control-plane sharding, federation region
count and (bulk-free scenarios) the packet/hybrid engine choice -- the
full replay matrix is asserted here for both new canned scenarios.  The
property tests drive random era schedules through random small scenarios
and require a clean drain (``pending_events == 0``) every time.
"""

from __future__ import annotations

import random

import pytest

from repro.scenarios import (
    ChainAssignmentSpec,
    ClientFleetSpec,
    ScenarioRunner,
    ScenarioSpec,
    ScenarioSpecError,
    TopologySpec,
    TrafficEraSpec,
    WorkloadSpec,
    build_scenario,
    run_scenario,
    scenario_has_bulk,
)
from repro.scenarios.spec import ERA_SCALABLE_KINDS

# --------------------------------------------------------------------------
# TrafficEraSpec validation and intensity math
# --------------------------------------------------------------------------


def test_era_shares_must_sum_to_one():
    TrafficEraSpec(at_s=0.0, shares={"http": 0.5, "abr": 0.5}).validate()
    with pytest.raises(ScenarioSpecError):
        TrafficEraSpec(at_s=0.0, shares={"http": 0.5, "abr": 0.4}).validate()
    with pytest.raises(ScenarioSpecError):
        TrafficEraSpec(at_s=0.0, shares={"http": 1.2, "abr": -0.2}).validate()


def test_era_rejects_bad_fields():
    with pytest.raises(ScenarioSpecError):
        TrafficEraSpec(at_s=-1.0, shares={"http": 1.0}).validate()
    with pytest.raises(ScenarioSpecError):
        TrafficEraSpec(at_s=0.0, shares={}).validate()
    with pytest.raises(ScenarioSpecError):
        TrafficEraSpec(at_s=0.0, shares={"carrier-pigeon": 1.0}).validate()
    with pytest.raises(ScenarioSpecError):
        # bulk is a byte-budget contract, not an era-scalable share.
        TrafficEraSpec(at_s=0.0, shares={"bulk": 1.0}).validate()


def test_era_intensity_math():
    era = TrafficEraSpec(at_s=0.0, shares={"http": 0.5, "abr": 0.3, "dns": 0.2})
    # intensity = share * kind count, so uniform shares are neutral.
    assert era.intensity_for("http") == pytest.approx(1.5)
    assert era.intensity_for("abr") == pytest.approx(0.9)
    assert era.intensity_for("dns") == pytest.approx(0.6)
    assert era.intensity_for("quic") is None  # absent kinds untouched
    uniform = TrafficEraSpec(at_s=0.0, shares={"http": 0.5, "dns": 0.5})
    assert uniform.intensity_for("http") == pytest.approx(1.0)


def test_scenario_requires_increasing_era_times():
    spec = ScenarioSpec(
        name="bad-eras",
        seed=0,
        duration_s=10.0,
        topology=TopologySpec(station_count=1),
        fleets=[
            ClientFleetSpec(
                name="f",
                count=1,
                position=(0.0, 0.0),
                workloads=[WorkloadSpec(kind="http", start_s=1.0)],
            )
        ],
        eras=[
            TrafficEraSpec(at_s=5.0, shares={"http": 1.0}),
            TrafficEraSpec(at_s=5.0, shares={"http": 1.0}),
        ],
    )
    with pytest.raises(ScenarioSpecError):
        spec.validate()


def test_canned_scenarios_carry_valid_eras():
    for name in ("pandemic-surge", "cache-vs-backhaul"):
        spec = build_scenario(name, seed=0)
        assert spec.eras, name
        assert not scenario_has_bulk(spec), name  # sim-mode invariant by design
        for era in spec.eras:
            assert sum(era.shares.values()) == pytest.approx(1.0)
            assert set(era.shares) <= set(ERA_SCALABLE_KINDS)


# --------------------------------------------------------------------------
# Replay invariance: region x shard x sim-mode, both new scenarios
# --------------------------------------------------------------------------

_MATRIX = [
    (regions, shards, mode)
    for regions in (1, 2)
    for shards in (1, 4)
    for mode in ("packet", "hybrid")
    if (regions, shards, mode) != (1, 1, "packet")
]


@pytest.fixture(scope="module")
def era_scenario_baselines():
    return {
        name: run_scenario(name, seed=7).digest.hexdigest
        for name in ("pandemic-surge", "cache-vs-backhaul")
    }


@pytest.mark.parametrize("scenario", ["pandemic-surge", "cache-vs-backhaul"])
@pytest.mark.parametrize("regions,shards,mode", _MATRIX)
def test_era_scenarios_digest_invariant(
    era_scenario_baselines, scenario, regions, shards, mode
):
    result = run_scenario(
        scenario,
        seed=7,
        region_count=regions,
        shard_count=shards,
        simulation_mode=mode,
    )
    assert result.drained and result.pending_events_after_teardown == 0
    assert result.digest.hexdigest == era_scenario_baselines[scenario], (
        scenario,
        regions,
        shards,
        mode,
    )


def test_eras_are_part_of_the_digest():
    """Same scenario with a different era schedule must digest differently."""
    with_eras = run_scenario("cache-vs-backhaul", seed=5)
    spec = build_scenario("cache-vs-backhaul", seed=5)
    spec.eras = []
    without = ScenarioRunner(spec).run()
    assert with_eras.digest.hexdigest != without.digest.hexdigest


# --------------------------------------------------------------------------
# Property: random era schedules always drain
# --------------------------------------------------------------------------


def random_era_schedule(rng: random.Random, duration_s: float):
    """A random valid era schedule: increasing times, shares summing to 1."""
    eras = []
    at_s = 0.0
    for _ in range(rng.randint(1, 4)):
        kinds = rng.sample(list(ERA_SCALABLE_KINDS), rng.randint(1, 4))
        weights = [rng.uniform(0.05, 1.0) for _ in kinds]
        total = sum(weights)
        shares = {kind: weight / total for kind, weight in zip(kinds, weights)}
        # Float dust: pin the last share so the sum is exactly 1.
        last = kinds[-1]
        shares[last] = 1.0 - sum(value for kind, value in shares.items() if kind != last)
        eras.append(TrafficEraSpec(at_s=at_s, shares=shares, name=f"era-{len(eras)}"))
        at_s += rng.uniform(3.0, duration_s / 2.0)
        if at_s >= duration_s:
            break
    return eras


def random_era_spec(rng: random.Random, case: int) -> ScenarioSpec:
    duration_s = rng.uniform(12.0, 25.0)
    workload_kinds = rng.sample(["http", "dns", "quic", "abr", "cbr"], rng.randint(1, 3))
    workloads = []
    for kind in workload_kinds:
        params = {}
        if kind == "abr":
            params = {"segment_duration_s": 1.0, "loop_segments": 3}
        if kind == "quic":
            params = {"mean_gap_s": 0.8}
        if kind == "cbr":
            params = {"rate_pps": 15.0}
        workloads.append(
            WorkloadSpec(
                kind=kind,
                start_s=rng.uniform(0.5, 3.0),
                params=params,
                era_scaled=rng.random() < 0.9,
            )
        )
    return ScenarioSpec(
        name=f"era-prop-{case}",
        seed=rng.randrange(2**31),
        duration_s=duration_s,
        topology=TopologySpec(station_count=rng.randint(1, 2)),
        fleets=[
            ClientFleetSpec(
                name="fleet",
                count=rng.randint(1, 2),
                position=(rng.uniform(0.0, 20.0), 0.0),
                workloads=workloads,
            )
        ],
        assignments=(
            [ChainAssignmentSpec(fleet="fleet", nfs=["cache"], attach_at_s=1.0)]
            if rng.random() < 0.5
            else []
        ),
        eras=random_era_schedule(rng, duration_s),
    )


@pytest.mark.parametrize("case", range(6))
def test_random_era_schedules_drain_clean(case):
    rng = random.Random(4200 + case)
    spec = random_era_spec(rng, case).validate()
    for era in spec.eras:
        assert sum(era.shares.values()) == pytest.approx(1.0)
    result = ScenarioRunner(spec).run()
    assert result.drained, f"case {case} (seed {spec.seed}) did not drain"
    assert result.pending_events_after_teardown == 0
    # Replays byte-identically, eras included.
    again = ScenarioRunner(random_era_spec(random.Random(4200 + case), case).validate()).run()
    assert again.digest.hexdigest == result.digest.hexdigest
