"""Shared fixtures for the GNF reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.simulator import Simulator
from repro.netem.topology import EdgeTopology, TopologyConfig


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulation kernel."""
    return Simulator()


@pytest.fixture
def topology(simulator: Simulator) -> EdgeTopology:
    """A two-station topology with one core server."""
    return EdgeTopology(simulator, TopologyConfig(station_count=2, server_count=1))


@pytest.fixture
def testbed() -> GNFTestbed:
    """A ready-to-run two-station GNF deployment (no clients yet)."""
    return GNFTestbed(TestbedConfig(station_count=2))


@pytest.fixture
def connected_testbed() -> tuple:
    """A testbed with one static client already associated at station-1."""
    bed = GNFTestbed(TestbedConfig(station_count=2))
    client = bed.add_client("phone", position=(0.0, 0.0))
    bed.start()
    bed.run(1.0)
    return bed, client
