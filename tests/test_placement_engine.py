"""Tests for the PlacementEngine subsystem: strategies, admission, autoscaling.

Covers the PR's guarantees:

* the load-aware strategies prefer the client's station until it is loaded,
  so an unloaded deployment is behaviour-identical to closest-agent -- and
  they spread chains once a station saturates;
* the engine's pending-commitment ledger stops a same-tick attach burst from
  piling onto one stale-looking station;
* admission control queues deployments aimed at saturated stations, drains
  the queue when capacity frees and times entries out;
* the autoscaler scales hot chains out with load-balancer-fronted replicas,
  drains them on cool-down and rebalances through the migration engine
  without leaking a single replica container (the PR-4 soak-ledger pattern);
* the new scenarios replay to identical digests for shard_count 1 and 4.
"""

from __future__ import annotations

import pytest

from repro.core.chain import ChainSLO, NFRequirements, NFSpec, ServiceChain
from repro.core.errors import DeploymentError
from repro.core.manager import AssignmentState
from repro.core.placement import (
    STRATEGY_FACTORIES,
    AdmissionPolicy,
    BinPackingPlacement,
    EmbeddingPlacement,
    LatencyWeightedPlacement,
    LeastLoadedPlacement,
    LoadAwarePlacement,
    PlacementEngine,
    StationView,
    make_strategy,
)
from repro.core.repository import NFRepository
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.simulator import Simulator
from repro.scenarios import run_scenario
from repro.scenarios.spec import PLACEMENT_STRATEGIES

CLIENT_IP = "10.10.99.1"


def _view(name, free=80.0, util=0.1, latency=0.01, chains=0, allocatable=90.0, uplink=0.0):
    return StationView(
        name=name,
        free_memory_mb=free,
        memory_utilization=util,
        running_nfs=chains,
        control_latency_s=0.01,
        client_latency_s=latency,
        allocatable_memory_mb=allocatable,
        chains=chains,
        uplink_utilization=uplink,
    )


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def test_strategy_factory_matches_spec_registry():
    assert set(PLACEMENT_STRATEGIES) == set(STRATEGY_FACTORIES)
    for name in PLACEMENT_STRATEGIES:
        assert make_strategy(name).name == name
    with pytest.raises(DeploymentError):
        make_strategy("teleport")


def test_least_loaded_prefers_local_until_loaded():
    views = [_view("station-1", latency=0.0, util=0.3), _view("station-2", util=0.0)]
    assert LeastLoadedPlacement().choose("station-1", views) == "station-1"
    views[0].memory_utilization = 0.9
    views[0].free_memory_mb = 9.0
    assert LeastLoadedPlacement().choose("station-1", views) == "station-2"


def test_latency_weighted_trades_latency_for_load():
    views = [_view("station-1", latency=0.0, util=0.2), _view("station-2", util=0.1)]
    assert LatencyWeightedPlacement().choose("station-1", views) == "station-1"
    views[0].memory_utilization = 0.95
    assert LatencyWeightedPlacement().choose("station-1", views) == "station-2"


def test_bin_packing_packs_fullest_fitting_station():
    views = [
        _view("station-1", latency=0.0, free=2.0, util=0.97),  # client's, full
        _view("station-2", free=30.0, util=0.66),  # most loaded that fits
        _view("station-3", free=80.0, util=0.1),
    ]
    strategy = BinPackingPlacement()
    assert strategy.choose_sized("station-1", views, 10.0) == "station-2"
    # While the local station still fits, it wins (closest-agent behaviour).
    assert strategy.choose_sized("station-3", views, 10.0) == "station-3"
    # Nothing fits a huge chain: fall back to the least-loaded station.
    assert strategy.choose_sized("station-1", views, 500.0) == "station-3"


def test_bin_packing_choose_requires_size():
    """Regression: the plain ``choose`` assumed a zero-size chain, admitting
    chains the chosen station could not fit.  Only the sized path remains."""
    with pytest.raises(DeploymentError):
        BinPackingPlacement().choose("station-1", [_view("station-1")])


def test_load_aware_fallback_keeps_memory_floor():
    strategy = LoadAwarePlacement()  # latency budget 0.02 s, floor 8 MB
    views = [
        _view("station-1", latency=0.0, free=5.0),  # close but below the floor
        _view("station-2", latency=0.05, free=50.0),  # over budget, has memory
    ]
    # The latency budget relaxes before the memory floor does.
    assert strategy.choose("station-1", views) == "station-2"
    # Only when *nothing* clears the floor: raw fallback by free memory.
    views[1].free_memory_mb = 3.0
    assert strategy.choose("station-1", views) == "station-1"


# ---------------------------------------------------------------------------
# Embedding: split chains, SLO pricing, radio signal
# ---------------------------------------------------------------------------


def test_embedding_matches_least_loaded_while_unsaturated():
    views = [_view("station-1", latency=0.0, util=0.3), _view("station-2", util=0.0)]
    embedding = EmbeddingPlacement()
    assert embedding.choose("station-1", views) == LeastLoadedPlacement().choose(
        "station-1", views
    )
    # The unsaturated embed path is the same rule: whole chain, local.
    result = embedding.embed("station-1", views, [40.0, 40.0])
    assert result.feasible
    assert [(s.station_name, s.start, s.end) for s in result.segments] == [("station-1", 0, 2)]


def test_embedding_splits_prefix_local_remainder_spills():
    views = [
        _view("station-1", latency=0.0, free=26.0, util=0.7),  # fits two 10 MB NFs
        _view("station-2", free=80.0, util=0.1),
    ]
    result = EmbeddingPlacement().embed("station-1", views, [10.0, 10.0, 10.0, 10.0])
    assert result.feasible and not result.slo_violation
    assert [(s.station_name, s.start, s.end) for s in result.segments] == [
        ("station-1", 0, 2),
        ("station-2", 2, 4),
    ]


def test_embedding_spill_deprioritizes_weak_radio_stations():
    views = [
        _view("station-1", latency=0.0, free=5.0, util=0.9),
        _view("station-2", free=80.0, util=0.2),
        _view("station-3", free=80.0, util=0.2),
    ]
    strategy = EmbeddingPlacement()
    # Equal load: the station the client hears best wins the spill.
    result = strategy.embed(
        "station-1", views, [10.0, 10.0],
        radio_rates_bps={"station-2": 6e6, "station-3": 72e6},
    )
    assert [s.station_name for s in result.segments] == ["station-3"]
    # Without a radio signal the name tie-break favours station-2.
    result = strategy.embed("station-1", views, [10.0, 10.0])
    assert [s.station_name for s in result.segments] == ["station-2"]


def test_embedding_rejects_on_latency_slo():
    views = [
        _view("station-1", latency=0.0, free=5.0, util=0.9),
        _view("station-2", latency=0.02, free=80.0, util=0.2),
    ]
    result = EmbeddingPlacement().embed("station-1", views, [10.0], max_latency_s=0.03)
    assert not result.feasible and result.slo_violation
    assert "latency" in result.reason
    # A looser budget admits the same embedding, detour priced in.
    ok = EmbeddingPlacement().embed("station-1", views, [10.0], max_latency_s=0.05)
    assert ok.feasible
    assert ok.latency_s == pytest.approx(0.04)


def test_embedding_rejects_on_bandwidth_slo():
    strategy = EmbeddingPlacement()
    views = [_view("station-1", latency=0.0, util=0.1)]
    # A weak radio link gates even an all-local chain.
    result = strategy.embed(
        "station-1", views, [10.0],
        required_bandwidth_mbps=1.0, radio_rates_bps={"station-1": 0.5e6},
    )
    assert not result.feasible and result.slo_violation
    assert "bandwidth" in result.reason
    # So does a saturated backhaul: 100 Mbit/s uplink at 99.5 % leaves 0.5.
    views = [_view("station-1", latency=0.0, util=0.1, uplink=0.995)]
    result = strategy.embed(
        "station-1", views, [10.0],
        required_bandwidth_mbps=1.0, uplink_bandwidth_mbps=100.0,
    )
    assert not result.feasible and result.slo_violation


def test_embedding_capacity_infeasible_is_not_slo_violation():
    views = [
        _view("station-1", latency=0.0, free=5.0, util=0.9),
        _view("station-2", free=6.0, util=0.88),
    ]
    result = EmbeddingPlacement().embed("station-1", views, [10.0, 10.0])
    assert not result.feasible and not result.slo_violation
    assert "no embedding fits" in result.reason


def test_engine_split_decision_carries_segments_and_counters():
    engine = PlacementEngine(
        Simulator(),
        strategy=EmbeddingPlacement(),
        repository=NFRepository.with_default_catalog(),
    )
    chain = ServiceChain(
        [NFSpec("ids", requirements=NFRequirements(memory_mb=10.0)) for _ in range(4)]
    )
    views = [
        _view("station-1", latency=0.0, free=26.0, util=0.7),
        _view("station-2", free=80.0, util=0.1),
    ]
    decision = engine.place("station-1", views, chain)
    assert decision.admitted
    assert [(s.station_name, s.start, s.end) for s in decision.segments] == [
        ("station-1", 0, 2),
        ("station-2", 2, 4),
    ]
    stats = engine.stats()
    assert stats["split_placements"] == 1
    assert stats["segments_placed"] == 2


def test_engine_slo_rejection_is_terminal_not_queued():
    engine = PlacementEngine(
        Simulator(),
        strategy=EmbeddingPlacement(),
        repository=NFRepository.with_default_catalog(),
        admission=AdmissionPolicy(enabled=True),
    )
    views = [
        _view("station-1", latency=0.0, free=5.0, util=0.9),
        _view("station-2", latency=0.02, free=80.0, util=0.1),
    ]
    chain = ServiceChain(
        [NFSpec("firewall", requirements=NFRequirements(memory_mb=10.0))],
        slo=ChainSLO(max_latency_s=0.001),
    )
    decision = engine.place("station-1", views, chain)
    assert not decision.admitted and decision.slo_rejected and not decision.queued
    assert engine.stats()["slo_rejections"] == 1
    # Capacity-infeasible embeddings still queue like any other admission miss.
    big = ServiceChain([NFSpec("firewall", requirements=NFRequirements(memory_mb=500.0))])
    decision = engine.place("station-1", views, big)
    assert not decision.admitted and decision.queued and not decision.slo_rejected


def test_engine_prices_runtime_overhead_into_sizes():
    engine = PlacementEngine(Simulator(), repository=NFRepository.with_default_catalog())
    chain = ServiceChain([NFSpec("firewall", requirements=NFRequirements(memory_mb=10.0))])
    assert engine.chain_memory_mb(chain) == pytest.approx(10.0)
    engine.nf_overhead_mb = 1.5
    assert engine.chain_memory_mb(chain) == pytest.approx(11.5)
    # Catalogue-sized NFs carry the overhead too.
    assert engine.chain_memory_mb(ServiceChain.of("firewall")) == pytest.approx(
        engine.nf_memory_mb("firewall") + 1.5
    )


def test_engine_pending_commitments_spread_same_tick_bursts():
    """Without the ledger, a burst placed off one stale view piles onto the
    least-loaded station; with it, each decision sees the previous ones."""
    simulator = Simulator()
    engine = PlacementEngine(
        simulator,
        strategy=LeastLoadedPlacement(prefer_local_below=0.0),  # never prefer local
        repository=NFRepository.with_default_catalog(),
    )
    views = [_view("station-1", latency=0.0), _view("station-2"), _view("station-3")]
    chain = ServiceChain.of("cache")  # 32 MB, big enough to move the needle
    chosen = [engine.place("station-1", views, chain).station_name for _ in range(3)]
    assert len(set(chosen)) == 3, chosen


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


def _admission_testbed(**overrides) -> GNFTestbed:
    config = TestbedConfig(
        station_count=2,
        admission_control=True,
        admission_queue_timeout_s=overrides.pop("queue_timeout_s", 30.0),
        **overrides,
    )
    testbed = GNFTestbed(config)
    testbed.start()
    testbed.run(0.5)
    return testbed


def _fill_station(testbed: GNFTestbed, count: int, run_s: float = 2.1):
    """Attach ``count`` firewalls pinned to station-1, letting telemetry settle."""
    assignments = []
    for _ in range(count):
        assignments.append(
            testbed.manager.attach_chain(
                CLIENT_IP, ServiceChain.of("firewall"), station_name="station-1"
            )
        )
        testbed.run(run_s)
    # Let the admission retry task flush anything parked while heartbeats
    # caught up with the burst.
    testbed.run(8.0)
    return assignments


def test_admission_queues_on_saturated_station_and_drains_when_freed():
    testbed = _admission_testbed()
    assignments = _fill_station(testbed, 12)
    active = [a for a in assignments if a.state is AssignmentState.ACTIVE]
    assert len(active) >= 11  # the station really filled up
    overflow = testbed.manager.attach_chain(
        CLIENT_IP, ServiceChain.of("firewall"), station_name="station-1"
    )
    testbed.run(3.0)
    assert overflow.state is AssignmentState.PENDING
    assert overflow.assignment_id in testbed.placement_engine.queued_assignment_ids()
    assert testbed.placement_engine.stats()["rejections"] >= 1
    # Free capacity: the queued placement must dispatch and go active.
    for assignment in active[:3]:
        testbed.manager.detach(assignment.assignment_id)
    testbed.run(15.0)
    assert overflow.state is AssignmentState.ACTIVE
    assert testbed.placement_engine.stats()["dispatched_from_queue"] >= 1
    assert testbed.placement_engine.queued_assignment_ids() == []


def test_admission_queue_times_out_when_capacity_never_frees():
    testbed = _admission_testbed(queue_timeout_s=5.0)
    _fill_station(testbed, 12)
    overflow = testbed.manager.attach_chain(
        CLIENT_IP, ServiceChain.of("firewall"), station_name="station-1"
    )
    testbed.run(12.0)
    assert overflow.state is AssignmentState.FAILED
    assert "admission queue timeout" in overflow.failure_reason
    assert testbed.placement_engine.stats()["queue_timeouts"] >= 1
    # The retry task stopped with the queue empty: the run drains cleanly.
    testbed.stop()
    testbed.simulator.run(max_events=100_000)
    assert testbed.simulator.pending_events == 0


def test_detach_cancels_queued_placement():
    testbed = _admission_testbed()
    _fill_station(testbed, 12)
    overflow = testbed.manager.attach_chain(
        CLIENT_IP, ServiceChain.of("firewall"), station_name="station-1"
    )
    testbed.run(1.0)
    assert overflow.state is AssignmentState.PENDING
    testbed.manager.detach(overflow.assignment_id)
    assert overflow.state is AssignmentState.REMOVED
    assert overflow.assignment_id not in testbed.placement_engine.queued_assignment_ids()
    testbed.run(5.0)
    assert overflow.state is AssignmentState.REMOVED  # never resurrected


# ---------------------------------------------------------------------------
# Autoscaler
# ---------------------------------------------------------------------------


def _autoscale_testbed(**overrides) -> GNFTestbed:
    config = TestbedConfig(
        station_count=overrides.pop("station_count", 3),
        autoscale_enabled=True,
        autoscale_interval_s=1.0,
        autoscale_up_threshold=0.6,
        autoscale_down_threshold=0.3,
        autoscale_max_replicas=overrides.pop("max_replicas", 1),
        **overrides,
    )
    testbed = GNFTestbed(config)
    testbed.start()
    testbed.run(0.5)
    return testbed


def _replica_containers(testbed: GNFTestbed):
    return [
        (station_name, container.name)
        for station_name, agent in testbed.agents.items()
        for container in agent.runtime.containers.values()
        if container.is_running and "-scale-" in container.name
    ]


def test_autoscale_up_then_drain_down_leaves_no_replicas():
    testbed = _autoscale_testbed()
    assignments = []
    for _ in range(4):  # 4 x (firewall + http-filter) = 64 MB -> util 0.71
        assignments.append(
            testbed.manager.attach_chain(
                CLIENT_IP, ServiceChain.of("firewall", "http-filter"), station_name="station-1"
            )
        )
        testbed.run(2.1)
    testbed.run(6.0)
    autoscaler = testbed.autoscaler
    assert autoscaler.scale_ups >= 1
    assert autoscaler.active_replicas >= 1
    # The replica chain is the original fronted by a load-balancer NF.
    replica_deployments = [
        deployment
        for agent in testbed.agents.values()
        for assignment_id, deployment in agent.deployments.items()
        if "-scale-" in assignment_id
    ]
    assert replica_deployments
    assert replica_deployments[0].chain.nf_types[0] == "load-balancer"
    assert replica_deployments[0].chain.nf_types[1:] == ["firewall", "http-filter"]
    # Cool the station down: all but the replica's parent detach.
    parent_id = sorted(autoscaler._replicas)[0]
    for assignment in assignments:
        if assignment.assignment_id != parent_id:
            testbed.manager.detach(assignment.assignment_id)
    testbed.run(10.0)
    assert autoscaler.scale_downs >= 1
    assert autoscaler._replicas == {}
    assert _replica_containers(testbed) == []


def test_autoscaler_prunes_replicas_of_detached_parents():
    testbed = _autoscale_testbed()
    assignments = []
    for _ in range(4):
        assignments.append(
            testbed.manager.attach_chain(
                CLIENT_IP, ServiceChain.of("firewall", "http-filter"), station_name="station-1"
            )
        )
        testbed.run(2.1)
    testbed.run(6.0)
    assert testbed.autoscaler.active_replicas >= 1
    for assignment in assignments:
        testbed.manager.detach(assignment.assignment_id)
    testbed.run(5.0)
    assert testbed.autoscaler._replicas == {}
    assert _replica_containers(testbed) == []


def test_testbed_stop_tears_down_live_replicas():
    testbed = _autoscale_testbed()
    for _ in range(4):
        testbed.manager.attach_chain(
            CLIENT_IP, ServiceChain.of("firewall", "http-filter"), station_name="station-1"
        )
        testbed.run(2.1)
    testbed.run(6.0)
    assert testbed.autoscaler.active_replicas >= 1
    testbed.stop()
    testbed.simulator.run(max_events=200_000)
    assert testbed.simulator.pending_events == 0
    assert testbed.autoscaler._replicas == {}
    assert _replica_containers(testbed) == []


def test_autoscaler_rebalances_via_migration_engine_with_shard_handoff():
    """Replica budget 0 forces the rebalance path; on a sharded control
    plane the migration must hand the assignment off between shards."""
    testbed = _autoscale_testbed(station_count=2, max_replicas=0, shard_count=2)
    assignments = []
    for _ in range(4):
        assignments.append(
            testbed.manager.attach_chain(
                CLIENT_IP, ServiceChain.of("firewall", "http-filter"), station_name="station-1"
            )
        )
        testbed.run(2.1)
    testbed.run(12.0)
    autoscaler = testbed.autoscaler
    assert autoscaler.rebalances >= 1
    moved = [a for a in assignments if a.station_name == "station-2"]
    assert moved and moved[0].migrations >= 1
    assert testbed.roaming.completed_migrations()
    # Handoff-safe: the frontend moved the assignment between region shards.
    assert testbed.manager.handoffs
    handoff = testbed.manager.handoffs[0]
    assert handoff.to_station == "station-2"
    # Nothing staged by the synthetic roam leaks.
    assert testbed.roaming._captured_state == {}
    assert testbed.roaming._speculative == {}


# ---------------------------------------------------------------------------
# Scenario digests: the new canned pair, shard counts 1 and 4
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name, placement",
    [
        ("hotspot-stadium", None),
        ("hotspot-stadium", "least-loaded"),
        ("autoscale-daily-wave", None),
        ("slo-tight-embedding", None),
    ],
)
def test_new_scenarios_shard_invariant_digests(name, placement):
    first = run_scenario(name, seed=0, placement_strategy=placement)
    second = run_scenario(name, seed=0, placement_strategy=placement, shard_count=4)
    assert first.drained and second.drained
    assert first.digest == second.digest, first.digest.diff(second.digest)


def test_slo_tight_embedding_exercises_splits_and_slo_rejections():
    """The canned scenario really drives both new code paths: chains split
    across stations AND SLO-infeasible chains are terminally rejected."""
    result = run_scenario("slo-tight-embedding", seed=0)
    assert result.drained
    assert result.placement_stats["split_placements"] >= 1
    assert result.placement_stats["slo_rejections"] >= 1


def test_embedding_digest_matches_least_loaded_when_unsaturated():
    """Embedding's local-preference rule mirrors least-loaded exactly, so an
    unsaturated scenario must replay digest-identically under either."""
    baseline = run_scenario("fig2-roaming", seed=0, placement_strategy="least-loaded")
    embedded = run_scenario("fig2-roaming", seed=0, placement_strategy="embedding")
    assert baseline.drained and embedded.drained
    assert embedded.placement_stats["split_placements"] == 0
    assert baseline.digest == embedded.digest, baseline.digest.diff(embedded.digest)


def test_hotspot_stadium_least_loaded_admits_more_chains():
    """The E11 headline, pinned as a tier-1 fact at scenario scale."""
    closest = run_scenario("hotspot-stadium", seed=0)
    spread = run_scenario("hotspot-stadium", seed=0, placement_strategy="least-loaded")

    def admitted(result):
        return sum(
            1
            for assignment in result.testbed.manager.assignments.values()
            if assignment.state is AssignmentState.ACTIVE
        )

    assert admitted(spread) >= 1.5 * admitted(closest)
    assert spread.placement_stats["remote_placements"] > 0
    assert closest.placement_stats["remote_placements"] == 0
