"""The scenario engine: specs, runner, faults and the canned library.

The determinism matrix here is the PR's core regression gate: every canned
scenario is run twice under the same seed and must produce an identical
:class:`MetricsDigest`.  Anyone introducing global-``random`` calls,
dict-order nondeterminism or wall-clock leakage into the data path breaks
these tests loudly, with the digest diff naming the telemetry section that
moved.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    ChainAssignmentSpec,
    ClientFleetSpec,
    FaultSpec,
    MetricsDigest,
    MobilitySpec,
    ScenarioRunner,
    ScenarioSpec,
    ScenarioSpecError,
    TopologySpec,
    WorkloadSpec,
    build_scenario,
    run_scenario,
    scenario_names,
)

# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------


def test_spec_validation_rejects_bad_inputs():
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec(name="", duration_s=10.0).validate()
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec(name="x", duration_s=0.0).validate()
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec(
            name="x",
            fleets=[ClientFleetSpec(name="a", mobility=MobilitySpec(model="teleport"))],
        ).validate()
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec(
            name="x",
            fleets=[ClientFleetSpec(name="a", workloads=[WorkloadSpec(kind="carrier-pigeon")])],
        ).validate()
    # Assignment referencing a fleet that does not exist.
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec(
            name="x",
            fleets=[ClientFleetSpec(name="a")],
            assignments=[ChainAssignmentSpec(fleet="b", nfs=["firewall"])],
        ).validate()
    # Fault targeting a station beyond the topology.
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec(
            name="x",
            topology=TopologySpec(station_count=2),
            faults=[FaultSpec(kind="link-down", station=3, at_s=1.0)],
        ).validate()
    # Duplicate fleet names are ambiguous.
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec(
            name="x", fleets=[ClientFleetSpec(name="a"), ClientFleetSpec(name="a")]
        ).validate()


def test_spec_round_trips_to_plain_data():
    spec = build_scenario("chaos-soak", seed=5)
    data = spec.to_dict()
    assert data["name"] == "chaos-soak"
    assert data["seed"] == 5
    assert data["topology"]["station_count"] == 3
    assert all(isinstance(fault["kind"], str) for fault in data["faults"])
    # to_dict must be pure data (JSON-able), no live objects.
    import json

    json.dumps(data)


def test_chain_assignment_normalises_nf_entries():
    assignment = ChainAssignmentSpec(
        fleet="f",
        nfs=["firewall", {"nf_type": "http-filter", "config": {"blocked_hosts": ["x"]}}],
    )
    assert assignment.nf_specs() == [
        ("firewall", {}),
        ("http-filter", {"blocked_hosts": ["x"]}),
    ]


def test_chain_assignment_carries_requirements_and_slo():
    assignment = ChainAssignmentSpec(
        fleet="f",
        nfs=["firewall", {"nf_type": "ids", "requirements": {"memory_mb": 9.0}}],
        slo_max_latency_s=0.25,
        slo_min_bandwidth_mbps=1.0,
    )
    assert assignment.nf_requirements() == [None, {"memory_mb": 9.0}]
    assert assignment.has_slo()
    data = assignment.to_dict()
    assert data["slo_max_latency_s"] == 0.25
    assert data["slo_min_bandwidth_mbps"] == 1.0
    # Bad SLOs and unknown requirement keys are rejected at validate time.
    def spec_with(assignment_spec):
        return ScenarioSpec(
            name="x", fleets=[ClientFleetSpec(name="f")], assignments=[assignment_spec]
        )

    with pytest.raises(ScenarioSpecError):
        spec_with(
            ChainAssignmentSpec(fleet="f", nfs=["firewall"], slo_max_latency_s=0.0)
        ).validate()
    with pytest.raises(ScenarioSpecError):
        spec_with(
            ChainAssignmentSpec(fleet="f", nfs=["firewall"], slo_min_bandwidth_mbps=-1.0)
        ).validate()
    with pytest.raises(ScenarioSpecError):
        spec_with(
            ChainAssignmentSpec(
                fleet="f", nfs=[{"nf_type": "ids", "requirements": {"gpu_count": 1}}]
            )
        ).validate()


# ---------------------------------------------------------------------------
# The canned library + determinism matrix (the acceptance criterion)
# ---------------------------------------------------------------------------


def test_library_has_at_least_eight_canned_scenarios():
    names = scenario_names()
    assert len(names) >= 8, names
    for required in (
        "commuter-rush",
        "flash-crowd",
        "rolling-failure",
        "video-cell",
        "firewall-churn",
        "scheduler-day-cycle",
        "mixed-chain-density",
        "chaos-soak",
    ):
        assert required in names


@pytest.mark.parametrize("name", scenario_names())
def test_every_canned_scenario_replays_to_identical_digest(name):
    first = run_scenario(name, seed=11)
    second = run_scenario(name, seed=11)
    assert first.drained, f"{name}: first run left {first.pending_events_after_teardown} events"
    assert second.drained
    assert not first.attach_failures, first.attach_failures
    assert first.digest == second.digest, (
        f"{name} is not deterministic; differing telemetry sections: "
        f"{first.digest.diff(second.digest)}"
    )
    # The digest must be a real fingerprint, not a constant.
    assert first.digest.hexdigest != MetricsDigest.compute({}).hexdigest
    # Every scenario must generate actual traffic through the testbed.
    assert first.testbed.topology.gateway.packets_routed_upstream > 0


def test_different_seeds_change_seeded_scenarios():
    # commuter-rush draws speeds/dwell times from the seed, so two seeds must
    # diverge in telemetry (this is the "way to vary runs" the seed threading
    # exists for).
    a = run_scenario("commuter-rush", seed=1)
    b = run_scenario("commuter-rush", seed=2)
    assert a.digest != b.digest


# ---------------------------------------------------------------------------
# Rolling failure: a live chain demonstrably migrates (acceptance criterion)
# ---------------------------------------------------------------------------


def test_rolling_failure_migrates_live_chain():
    runner = ScenarioRunner(build_scenario("rolling-failure", seed=1))
    run = runner.start()
    # Station-1 crashes at t=15; by t=40 its user must have roamed away and
    # its chain must be live at the new station.
    run.advance(40.0)
    testbed = run.testbed
    client = testbed.clients["user1-1"]
    assert client.current_station_name not in (None, "station-1")
    new_station = client.current_station_name
    deployment = testbed.agents[new_station].deployment_for_client(client.ip)
    assert deployment is not None, "migrated chain not found at the new station"
    assert all(d.container.is_running for d in deployment.deployed_nfs)
    # Telemetry-based evidence: the migration record completed and the
    # migrated chain is processing the client's live traffic.
    records = [r for r in testbed.roaming.records if r.client_ip == client.ip and r.success]
    assert records, "no successful migration record in roaming telemetry"
    assert records[0].from_station == "station-1"
    assert records[0].to_station == new_station
    assert sum(d.packets_processed for d in deployment.deployed_nfs) > 0
    # Crash evidence also reached the provider-facing telemetry.
    assert testbed.manager.notifications.summary().get("critical", 0) >= 1
    sections = run.telemetry_sections()
    assert sections["faults"]["summary"]["faults_station-crash"] >= 1
    result = run.finalize()
    assert result.migrations_completed >= 1
    assert result.drained


# ---------------------------------------------------------------------------
# Fault injector details
# ---------------------------------------------------------------------------


def test_link_degrade_applies_and_recovers():
    spec = ScenarioSpec(
        name="degrade-test",
        seed=0,
        duration_s=20.0,
        topology=TopologySpec(station_count=1),
        fleets=[
            ClientFleetSpec(
                name="c",
                count=1,
                workloads=[WorkloadSpec(kind="cbr", start_s=1.0, params={"rate_pps": 50.0})],
            )
        ],
        faults=[
            FaultSpec(
                kind="link-degrade",
                station=1,
                at_s=5.0,
                duration_s=5.0,
                params={"bandwidth_factor": 0.01, "loss_rate": 0.2},
            )
        ],
    )
    run = ScenarioRunner(spec).start()
    link = run.testbed.topology.uplink_links["station-1"]
    original_bw = link.bandwidth_bps
    run.advance(6.0)
    assert link.bandwidth_bps == pytest.approx(original_bw * 0.01)
    assert link.loss_rate == pytest.approx(0.2)
    run.advance(6.0)
    assert link.bandwidth_bps == pytest.approx(original_bw)
    assert link.loss_rate == 0.0
    result = run.finalize()
    assert result.drained
    # Degradation must actually have cost packets.
    generator = run.generators["c-1/cbr0"]
    assert generator.loss_rate() > 0.0


def test_container_oom_kills_one_nf_container():
    spec = ScenarioSpec(
        name="oom-test",
        seed=0,
        duration_s=25.0,
        topology=TopologySpec(station_count=1),
        fleets=[ClientFleetSpec(name="c", count=1)],
        assignments=[ChainAssignmentSpec(fleet="c", nfs=["firewall"], attach_at_s=1.0)],
        faults=[FaultSpec(kind="container-oom", station=1, at_s=15.0)],
    )
    result = ScenarioRunner(spec).run()
    agent = result.testbed.agents["station-1"]
    assert agent.runtime.containers_failed == 1
    failed = [c for c in agent.runtime.containers.values() if c.state.value == "failed"]
    assert len(failed) == 1
    assert result.drained


def test_station_crash_recovery_restores_service():
    spec = ScenarioSpec(
        name="crash-recover-test",
        seed=0,
        duration_s=40.0,
        topology=TopologySpec(station_count=1),
        fleets=[
            ClientFleetSpec(
                name="c",
                count=1,
                workloads=[WorkloadSpec(kind="cbr", start_s=1.0, params={"rate_pps": 20.0})],
            )
        ],
        faults=[FaultSpec(kind="station-crash", station=1, at_s=10.0, duration_s=10.0)],
    )
    run = ScenarioRunner(spec).start()
    run.advance(15.0)
    # Crashed: cells silent, uplink down (single station => client is stuck).
    cell = next(iter(run.testbed.cells.values()))
    assert not cell.enabled
    assert not run.testbed.topology.uplink_links["station-1"].up
    run.advance(10.0)
    assert cell.enabled
    assert run.testbed.topology.uplink_links["station-1"].up
    generator = run.generators["c-1/cbr0"]
    before = generator.responses_received
    run.advance(10.0)
    # After recovery the client re-associates and echoes flow again.
    assert generator.responses_received > before
    assert run.finalize().drained


# ---------------------------------------------------------------------------
# Runner behaviours
# ---------------------------------------------------------------------------


def test_staggered_appearance_and_attach_burst():
    spec = build_scenario("flash-crowd", seed=2)
    run = ScenarioRunner(spec).start()
    assert len(run.testbed.clients) == 0  # everyone appears later
    run.advance(5.0)
    assert len(run.testbed.clients) == 8
    result = run.finalize()
    states = {a.state.value for _, a in run.assignments}
    assert len(run.assignments) == 8
    assert states == {"active"}
    assert result.drained


def test_detach_schedule_removes_chain():
    spec = build_scenario("firewall-churn", seed=0)
    run = ScenarioRunner(spec).start()
    run.advance(22.0)  # first wave attached at 2, detached at 18
    manager = run.testbed.manager
    removed = [a for _, a in run.assignments if a.state.value == "removed"]
    assert len(removed) == 3
    for station in run.testbed.agents.values():
        for deployment in station.deployments.values():
            assert deployment.assignment_id in manager.assignments
    assert run.finalize().drained


def test_runner_seed_override_wins_over_spec_seed():
    spec = build_scenario("commuter-rush", seed=1)
    result = ScenarioRunner(spec).run(seed=99)
    assert result.seed == 99
    # Same override replays identically.
    again = ScenarioRunner(build_scenario("commuter-rush", seed=1)).run(seed=99)
    assert result.digest == again.digest
