"""Seed threading and replay determinism.

Covers the satellite requirements: one master seed flows from
``TestbedConfig`` into every RNG (mobility, trafficgen, handover jitter),
derived per-component seeds are stable and independent, and the determinism
regression digest catches nondeterminism loudly.
"""

from __future__ import annotations

from repro.core.seeds import derive_seed
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import DNSWorkloadGenerator, HTTPWorkloadGenerator
from repro.scenarios import MetricsDigest, build_scenario, run_scenario
from repro.wireless.mobility import RandomWaypointMobility

# ---------------------------------------------------------------------------
# Seed derivation
# ---------------------------------------------------------------------------


def test_derive_seed_is_stable_and_path_sensitive():
    assert derive_seed(42, "mobility", "client-1") == derive_seed(42, "mobility", "client-1")
    assert derive_seed(42, "mobility", "client-1") != derive_seed(42, "mobility", "client-2")
    assert derive_seed(42, "mobility", "client-1") != derive_seed(43, "mobility", "client-1")
    assert derive_seed(42, "mobility") != derive_seed(42, "workload")
    # 64-bit, non-negative.
    assert 0 <= derive_seed(0) < 2**64


def test_testbed_threads_master_seed_to_components():
    bed_a = GNFTestbed(TestbedConfig(station_count=1, seed=7))
    bed_b = GNFTestbed(TestbedConfig(station_count=1, seed=7))
    bed_c = GNFTestbed(TestbedConfig(station_count=1, seed=8))
    assert bed_a.seed_for("mobility", "x") == bed_b.seed_for("mobility", "x")
    assert bed_a.seed_for("mobility", "x") != bed_c.seed_for("mobility", "x")


def test_generators_accept_threaded_seeds_and_keep_legacy_defaults():
    bed = GNFTestbed(TestbedConfig(station_count=1, seed=3))
    phone = bed.add_client("phone", position=(0.0, 0.0))
    bed.start()
    bed.run(1.0)

    # Threaded seeds give distinct, reproducible streams per component.
    waypoint_a = RandomWaypointMobility(
        bed.simulator, phone, seed=bed.seed_for("mobility", "phone")
    )
    waypoint_b = RandomWaypointMobility(
        bed.simulator, phone, seed=bed.seed_for("mobility", "phone")
    )
    assert waypoint_a._rng.random() == waypoint_b._rng.random()

    http = HTTPWorkloadGenerator(
        bed.simulator, phone, server_ip=bed.server_ip, seed=bed.seed_for("workload", "phone", 0)
    )
    dns = DNSWorkloadGenerator(
        bed.simulator, phone, resolver_ip=bed.server_ip, seed=bed.seed_for("workload", "phone", 1)
    )
    assert http._rng.random() != dns._rng.random()

    # Omitting the seed keeps the historical fixed defaults (3/7/11), so
    # pre-scenario callers see unchanged behaviour.
    import random

    legacy_wp = RandomWaypointMobility(bed.simulator, phone)
    assert legacy_wp._rng.random() == random.Random(3).random()
    legacy_http = HTTPWorkloadGenerator(bed.simulator, phone, server_ip=bed.server_ip)
    assert legacy_http._rng.random() == random.Random(7).random()
    legacy_dns = DNSWorkloadGenerator(bed.simulator, phone, resolver_ip=bed.server_ip)
    assert legacy_dns._rng.random() == random.Random(11).random()


# ---------------------------------------------------------------------------
# The determinism regression gate
# ---------------------------------------------------------------------------


def test_same_spec_same_seed_identical_digest_across_repeats():
    # Three runs, not two: global itertools counters (assignment ids,
    # container names) advance between runs, so any leakage of those into
    # behaviour or telemetry would show up here.
    digests = [run_scenario("commuter-rush", seed=21).digest for _ in range(3)]
    assert digests[0] == digests[1] == digests[2]


def test_digest_covers_event_counts_fastpath_and_latency_samples():
    result = run_scenario("fig2-roaming", seed=21)
    sections = set(result.digest.components)
    # The satellite list: event counts, fastpath hit rates, latency samples.
    assert {"simulator", "stations", "workloads", "handover", "roaming", "manager"} <= sections
    # And they carry real content for this traffic-ful scenario.
    http_stats = result.workload_stats["smartphone-1/http0"]
    assert http_stats["responses_received"] > 0


def test_digest_diff_names_changed_sections():
    base = MetricsDigest.compute({"a": {"x": 1}, "b": {"y": 2.0, "z": 5}})
    same = MetricsDigest.compute({"a": {"x": 1}, "b": {"y": 2.0, "z": 5}})
    changed = MetricsDigest.compute({"a": {"x": 1}, "b": {"y": 3.0, "z": 5}})
    assert base == same
    assert base.diff(same) == []
    # The mismatch localises to the changed key inside section "b".
    assert base.diff(changed) == ["b/y"]
    assert base != changed
    # Non-dict sections still diff at section granularity.
    flat = MetricsDigest.compute({"a": [1, 2], "b": {"y": 2.0, "z": 5}})
    flat_changed = MetricsDigest.compute({"a": [1, 3], "b": {"y": 2.0, "z": 5}})
    assert flat.diff(flat_changed) == ["a"]


def test_digest_diff_qualifies_keys_with_provenance():
    """A station-keyed mismatch names the owning region/shard -- the
    federation debuggability fix -- while provenance itself never affects
    digest equality (it differs across region counts by construction)."""
    provenance = {"station-3": "region-1/shard-0"}
    base = MetricsDigest.compute(
        {"stations": {"station-3": {"rx": 1}, "station-1": {"rx": 2}}}, provenance=provenance
    )
    changed = MetricsDigest.compute(
        {"stations": {"station-3": {"rx": 9}, "station-1": {"rx": 2}}}
    )
    # The label is picked up from whichever side carries it.
    assert base.diff(changed) == ["stations/station-3 [region-1/shard-0]"]
    assert changed.diff(base) == ["stations/station-3 [region-1/shard-0]"]
    # Same sections, different provenance: still equal digests.
    unlabelled = MetricsDigest.compute(
        {"stations": {"station-3": {"rx": 1}, "station-1": {"rx": 2}}}
    )
    assert base == unlabelled and base.hexdigest == unlabelled.hexdigest


def test_digest_canonicalisation_is_dict_order_independent():
    forward = MetricsDigest.compute({"s": {"a": 1, "b": 2, "c": 0.5}})
    backward = MetricsDigest.compute({"s": dict(reversed(list({"a": 1, "b": 2, "c": 0.5}.items())))})
    assert forward == backward


def test_digest_invariant_across_placement_strategies_when_unloaded():
    """The placement-engine satellite: with autoscaling off, the existing
    canned library replays to the *identical* digest under every engine
    strategy.  The load-aware strategies prefer the client's station until
    it is actually loaded, so on the (unsaturated) historical scenarios they
    must make exactly the closest-agent decisions -- byte for byte."""
    for name in ("fig2-roaming", "flash-crowd", "firewall-churn"):
        base = run_scenario(name, seed=0)
        for strategy in ("closest-agent", "least-loaded", "latency-weighted", "bin-packing"):
            other = run_scenario(name, seed=0, placement_strategy=strategy)
            assert other.digest == base.digest, (
                name,
                strategy,
                base.digest.diff(other.digest),
            )


def test_handover_jitter_is_seeded_not_global():
    # Two runs of a jittered scenario stay identical: the jitter RNG is
    # derived from the master seed, never from global random state.
    spec = build_scenario("commuter-rush", seed=5)
    assert spec.topology.handover_scan_jitter_s > 0
    import random

    random.seed(123)
    first = run_scenario("commuter-rush", seed=5)
    random.seed(456)
    second = run_scenario("commuter-rush", seed=5)
    assert first.digest == second.digest
