"""Tests for the flow-cached, batch-aware forwarding fast path.

Covers the four layers the fast path spans: the netem cache/batch machinery
(FlowKey, FlowCache, generation invalidation, Link.transmit_batch), the
switch integration (cache-before-table, batch pipeline, event reduction),
the NF batch API (vectorized firewall and rate limiter parity), and the
telemetry export of the hit-rate counters.
"""

from __future__ import annotations

import pytest

from repro.core.chain import ServiceChain
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem import packet as pkt
from repro.netem.fastpath import CompiledVerdict, FlowCache, FlowKey, PacketBatch
from repro.netem.flowtable import Action, ActionType, FlowTable, Match
from repro.netem.host import Host, Interface
from repro.netem.link import Link
from repro.netem.simulator import Simulator
from repro.netem.switch import SoftwareSwitch
from repro.netem.trafficgen import CBRTrafficGenerator
from repro.nfs.base import Direction, ProcessingContext
from repro.nfs.firewall import Firewall, FirewallAction, FirewallRule
from repro.nfs.rate_limiter import RateLimiter
from repro.telemetry.export import snapshot_to_json


def tcp_packet(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=80, payload=100):
    return pkt.make_tcp_packet(src, dst, sport, dport, payload_bytes=payload)


# --------------------------------------------------------------------------
# FlowKey
# --------------------------------------------------------------------------


def test_flow_key_stable_for_same_flow():
    a = FlowKey.extract(tcp_packet(), in_port=1)
    b = FlowKey.extract(tcp_packet(), in_port=1)
    assert a == b
    assert hash(a) == hash(b)


def test_flow_key_differs_across_ports_and_headers():
    base = FlowKey.extract(tcp_packet(), in_port=1)
    assert FlowKey.extract(tcp_packet(), in_port=2) != base
    assert FlowKey.extract(tcp_packet(sport=1001), in_port=1) != base
    assert FlowKey.extract(tcp_packet(dst="10.0.0.9"), in_port=1) != base


def test_flow_key_folds_only_referenced_metadata():
    packet = tcp_packet()
    packet.metadata["gnf_dir"] = "up"
    packet.metadata["probe_seq"] = 42  # unrelated metadata must not fragment keys
    with_meta = FlowKey.extract(packet, 1, ("gnf_dir",))
    assert with_meta.metadata == (("gnf_dir", "up"),)
    clean = FlowKey.extract(tcp_packet(), 1, ("gnf_dir",))
    assert clean.metadata == (("gnf_dir", None),)
    assert with_meta != clean


# --------------------------------------------------------------------------
# FlowCache
# --------------------------------------------------------------------------


def make_verdict(generation=0, port=2):
    table = FlowTable()
    rule = table.add(10, Match(), [Action.output(port)])
    return CompiledVerdict(rule, generation)


def test_cache_hit_and_miss_counters():
    cache = FlowCache()
    key = FlowKey.extract(tcp_packet(), 1)
    assert cache.lookup(key, 0) is None
    cache.store(key, make_verdict(generation=0))
    assert cache.lookup(key, 0) is not None
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_cache_entry_self_invalidates_on_generation_change():
    cache = FlowCache()
    key = FlowKey.extract(tcp_packet(), 1)
    cache.store(key, make_verdict(generation=3))
    assert cache.lookup(key, 3) is not None
    assert cache.lookup(key, 4) is None  # table changed: entry must die
    assert cache.invalidations == 1
    assert len(cache) == 0


def test_cache_fifo_eviction_at_capacity():
    cache = FlowCache(capacity=2)
    keys = [FlowKey.extract(tcp_packet(sport=1000 + i), 1) for i in range(3)]
    for key in keys:
        cache.store(key, make_verdict())
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.lookup(keys[0], 0) is None  # oldest entry was evicted


def test_cache_flush_ip_targets_only_that_client():
    cache = FlowCache()
    client_key = FlowKey.extract(tcp_packet(src="10.10.0.5"), 1)
    other_key = FlowKey.extract(tcp_packet(src="10.10.0.6"), 1)
    cache.store(client_key, make_verdict())
    cache.store(other_key, make_verdict())
    assert cache.flush_ip("10.10.0.5") == 1
    assert cache.lookup(other_key, 0) is not None
    assert cache.lookup(client_key, 0) is None


def test_cache_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        FlowCache(capacity=0)


def test_flowtable_generation_bumps_on_mutation():
    table = FlowTable()
    start = table.generation
    rule = table.add(10, Match(metadata=(("gnf_dir", "up"),)), [Action.output(1)])
    assert table.generation == start + 1
    assert table.referenced_metadata_keys == ("gnf_dir",)
    table.remove_rule(rule.rule_id)
    assert table.generation == start + 2
    assert table.referenced_metadata_keys == ()
    # No-op removals must not invalidate caches.
    table.remove_rule(rule.rule_id)
    assert table.generation == start + 2


# --------------------------------------------------------------------------
# Switch integration
# --------------------------------------------------------------------------


class Sink:
    def __init__(self):
        self.packets = []

    def send(self, packet):
        self.packets.append(packet)
        return True

    def send_batch(self, packets):
        self.packets.extend(packets)
        return len(packets)


def build_switch(simulator, fastpath=True, forwarding_delay_s=0.0, port_count=3):
    switch = SoftwareSwitch(
        simulator, "sw", forwarding_delay_s=forwarding_delay_s, fastpath_enabled=fastpath
    )
    sinks = {}
    for number in range(1, port_count + 1):
        iface = Interface(f"port{number}", mac=f"02:00:00:00:00:{number:02x}")
        switch.add_port(iface)
        sink = Sink()
        iface.send = sink.send
        iface.send_batch = sink.send_batch
        sinks[number] = sink
    return switch, sinks


def test_second_packet_hits_the_cache(simulator):
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(100, Match(ip_src="10.0.0.1"), [Action.output(2)])
    for _ in range(3):
        switch.receive_packet(tcp_packet(), switch.ports[1].interface)
        simulator.run()
    assert len(sinks[2].packets) == 3
    assert switch.flow_cache.hits == 2
    assert switch.flow_cache.misses == 1


def test_cache_hit_skips_forwarding_delay_event(simulator):
    switch, sinks = build_switch(simulator, forwarding_delay_s=0.001)
    switch.flow_table.add(100, Match(ip_src="10.0.0.1"), [Action.output(2)])
    packets = 20
    for _ in range(packets):
        switch.receive_packet(tcp_packet(), switch.ports[1].interface)
        simulator.run()
    # Only the first (miss) packet needed the scheduled slow-path event.
    assert simulator.events_processed == 1
    assert len(sinks[2].packets) == packets
    assert switch.flow_cache.hits == packets - 1


def test_fastpath_off_pays_one_event_per_packet(simulator):
    switch, sinks = build_switch(simulator, fastpath=False, forwarding_delay_s=0.001)
    switch.flow_table.add(100, Match(ip_src="10.0.0.1"), [Action.output(2)])
    packets = 20
    for _ in range(packets):
        switch.receive_packet(tcp_packet(), switch.ports[1].interface)
        simulator.run()
    assert simulator.events_processed == packets
    assert switch.flow_cache.hits == 0 and switch.flow_cache.misses == 0


def test_cached_verdict_keeps_rule_counters_accurate(simulator):
    switch, _ = build_switch(simulator)
    rule = switch.flow_table.add(100, Match(ip_src="10.0.0.1"), [Action.output(2)])
    for _ in range(4):
        switch.receive_packet(tcp_packet(), switch.ports[1].interface)
        simulator.run()
    assert rule.packets_matched == 4


def test_rule_install_invalidates_cached_verdict(simulator):
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(10, Match(ip_src="10.0.0.1"), [Action.output(2)])
    switch.receive_packet(tcp_packet(), switch.ports[1].interface)
    simulator.run()
    assert len(sinks[2].packets) == 1
    # A higher-priority drop rule lands: the cached output verdict must die.
    switch.flow_table.add(200, Match(ip_src="10.0.0.1"), [Action.drop()])
    switch.receive_packet(tcp_packet(), switch.ports[1].interface)
    simulator.run()
    assert len(sinks[2].packets) == 1
    assert switch.packets_dropped == 1
    assert switch.flow_cache.invalidations >= 1


def test_rule_removal_invalidates_cached_verdict(simulator):
    switch, sinks = build_switch(simulator)
    rule = switch.flow_table.add(100, Match(ip_src="10.0.0.1"), [Action.output(3)])
    switch.receive_packet(tcp_packet(), switch.ports[1].interface)
    simulator.run()
    assert len(sinks[3].packets) == 1
    switch.flow_table.remove_rule(rule.rule_id)
    # Without the rule the packet falls back to flooding, not the stale port 3.
    switch.receive_packet(tcp_packet(), switch.ports[1].interface)
    simulator.run()
    assert len(sinks[3].packets) == 2  # via flood
    assert len(sinks[2].packets) == 1  # flooded copy proves fallback ran
    assert switch.packets_flooded == 1


def test_fastpath_matches_slow_path_for_metadata_and_rewrites():
    """Every supported action must replay identically from the cache."""
    outcomes = {}
    for fastpath in (False, True):
        simulator = Simulator()
        switch, sinks = build_switch(simulator, fastpath=fastpath)
        switch.flow_table.add(
            100,
            Match(in_port=1),
            [
                Action.set_metadata("gnf_dir", "up"),
                Action(ActionType.SET_IP_DST, "99.9.9.9"),
                Action.output(2),
            ],
        )
        for _ in range(3):
            switch.receive_packet(tcp_packet(), switch.ports[1].interface)
            simulator.run()
        outcomes[fastpath] = [
            (p.metadata.get("gnf_dir"), p.ip.dst) for p in sinks[2].packets
        ]
    assert outcomes[True] == outcomes[False] == [("up", "99.9.9.9")] * 3


def test_receive_batch_matches_per_packet_outputs(simulator):
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(100, Match(ip_src="10.0.0.1"), [Action.output(2)])
    # Warm the cache, then feed a batch.
    switch.receive_packet(tcp_packet(), switch.ports[1].interface)
    simulator.run()
    batch = PacketBatch(tcp_packet() for _ in range(10))
    switch.receive_batch(batch, switch.ports[1].interface)
    simulator.run()
    assert len(sinks[2].packets) == 11
    assert switch.packets_forwarded == 11
    assert switch.ports[1].stats.rx_packets == 11


def test_receive_batch_replays_complex_verdicts_from_cache(simulator):
    """Drop / field-rewrite verdicts are served from the cache in batch mode."""
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(100, Match(ip_src="10.0.0.1"), [Action.drop()])
    switch.receive_packet(tcp_packet(), switch.ports[1].interface)  # compile verdict
    simulator.run()
    switch.receive_batch([tcp_packet() for _ in range(5)], switch.ports[1].interface)
    simulator.run()
    assert switch.packets_dropped == 6
    assert switch.flow_cache.hits == 5
    assert all(not sink.packets for sink in sinks.values())


def test_receive_batch_survives_unhashable_metadata_action(simulator):
    """A SET_METADATA action with an unhashable value must not crash a batch."""
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(
        100,
        Match(ip_src="10.0.0.1"),
        [Action.set_metadata("tag", ["unhashable"]), Action.output(2)],
    )
    switch.receive_packet(tcp_packet(), switch.ports[1].interface)
    simulator.run()
    switch.receive_batch([tcp_packet() for _ in range(4)], switch.ports[1].interface)
    simulator.run()
    assert len(sinks[2].packets) == 5
    assert all(p.metadata["tag"] == ["unhashable"] for p in sinks[2].packets)


def test_receive_batch_slow_path_for_misses(simulator):
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(100, Match(ip_src="10.0.0.1"), [Action.output(2)])
    batch = [tcp_packet(), tcp_packet(src="10.0.0.7"), tcp_packet()]
    switch.receive_batch(batch, switch.ports[1].interface)
    simulator.run()
    # The two 10.0.0.1 packets go to port 2 (one via slow path that compiles
    # the verdict, one possibly cached); the unknown source floods.
    assert len(sinks[2].packets) >= 2
    assert switch.packets_flooded == 1


def test_deferred_hit_preserves_per_port_fifo(simulator):
    """Hits must not overtake same-port packets still deferred in the slow path."""
    switch, sinks = build_switch(simulator, forwarding_delay_s=0.001)
    switch.flow_table.add(100, Match(in_port=1), [Action.output(2)])
    for seq in range(4):
        packet = tcp_packet()
        packet.metadata["seq"] = seq
        simulator.schedule(seq * 0.0002, switch.receive_packet, packet, switch.ports[1].interface)
    simulator.run()
    delivered = [packet.metadata["seq"] for packet in sinks[2].packets]
    assert delivered == [0, 1, 2, 3]


def test_stale_verdict_not_replayed_from_deferral_window(simulator):
    """A rule change inside the deferral window invalidates queued verdicts."""
    switch, sinks = build_switch(simulator, forwarding_delay_s=0.001)
    rule = switch.flow_table.add(100, Match(ip_src="10.0.0.1"), [Action.output(2)])
    # Warm the cache for flow A.
    switch.receive_packet(tcp_packet(), switch.ports[1].interface)
    simulator.run()
    assert len(sinks[2].packets) == 1

    def open_window():
        # A miss (flow B) opens a slow-path window on port 1...
        switch.receive_packet(tcp_packet(src="10.0.0.9"), switch.ports[1].interface)
        # ...so this flow-A hit is deferred behind it.
        switch.receive_packet(tcp_packet(), switch.ports[1].interface)

    simulator.schedule(1.0, open_window)
    # Remove the rule before the deferred apply fires: the captured verdict
    # is stale and must NOT steer the packet to port 2.
    simulator.schedule(1.0005, switch.flow_table.remove_rule, rule.rule_id)
    simulator.run()
    # Both windowed packets fell back to flooding (copies on ports 2 AND 3)
    # instead of flow A's packet replaying the stale unicast-to-port-2 verdict.
    assert switch.packets_flooded == 2
    assert len(sinks[3].packets) == 2
    assert len(sinks[2].packets) == 3  # the warm unicast + two flooded copies
    assert switch.packets_forwarded == 1  # no unicast after the rule removal


# --------------------------------------------------------------------------
# Link batching
# --------------------------------------------------------------------------


class BatchRecorder(Host):
    def __init__(self, simulator, name):
        super().__init__(simulator, name)
        self.batches = []
        self.packets = []

    def receive_batch(self, packets, interface):
        self.batches.append(list(packets))
        self.packets.extend(packets)

    def handle_packet(self, packet, interface):
        self.packets.append(packet)


def wire_hosts(simulator, **link_kwargs):
    a = BatchRecorder(simulator, "a")
    b = BatchRecorder(simulator, "b")
    a_iface = a.add_interface(Interface("a0", mac="02:00:00:00:00:01", ip="10.0.0.1"))
    b_iface = b.add_interface(Interface("b0", mac="02:00:00:00:00:02", ip="10.0.0.2"))
    link = Link(simulator, **link_kwargs)
    link.attach(a_iface, b_iface)
    return a, b, link


def test_transmit_batch_single_event_same_arrival_as_tail_packet(simulator):
    a, b, link = wire_hosts(simulator, bandwidth_bps=1e6, delay_s=0.01)
    packets = [pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload_bytes=500) for _ in range(10)]
    accepted = a.primary_interface.send_batch(packets)
    assert accepted == 10
    before = simulator.events_processed
    simulator.run()
    assert simulator.events_processed - before == 1  # one deliver event for all 10
    assert len(b.batches) == 1 and len(b.packets) == 10
    # The batch arrives when its last bit has propagated.
    expected = sum(p.size_bytes for p in packets) * 8 / 1e6 + 0.01
    assert simulator.now == pytest.approx(expected)


def test_transmit_batch_respects_queue_limit_and_stats(simulator):
    a, b, link = wire_hosts(simulator, bandwidth_bps=1e9, delay_s=0.0, max_queue_packets=4)
    packets = [pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2) for _ in range(6)]
    accepted = a.primary_interface.send_batch(packets)
    simulator.run()
    assert accepted == 4
    assert len(b.packets) == 4
    assert link.total_stats.dropped_packets == 2
    assert link.total_stats.tx_packets == 4


def test_transmit_batch_on_down_link_drops_everything(simulator):
    a, b, link = wire_hosts(simulator)
    link.set_up(False)
    accepted = a.primary_interface.send_batch(
        [pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2) for _ in range(3)]
    )
    simulator.run()
    assert accepted == 0
    assert b.packets == []
    assert link.total_stats.dropped_packets == 3


# --------------------------------------------------------------------------
# NF batch processing parity
# --------------------------------------------------------------------------


def _firewall_pair():
    rules = [
        FirewallRule(action=FirewallAction.DROP, protocol="tcp", dst_port_range=(9000, 9100)),
    ]
    return (
        Firewall(rules=list(rules)),
        Firewall(rules=list(rules)),
    )


def test_firewall_batch_matches_scalar_semantics():
    scalar_fw, batch_fw = _firewall_pair()
    context = ProcessingContext(now=1.0, direction=Direction.UPSTREAM, client_ip="10.0.0.1")
    packets = [tcp_packet(dport=9050 if i % 3 == 0 else 80, sport=1000 + i) for i in range(30)]

    scalar_out = []
    for packet in packets:
        scalar_out.extend(scalar_fw.process(packet.copy(), context))
    batch_out = batch_fw.process_batch([p.copy() for p in packets], context)

    assert len(batch_out) == len(scalar_out)
    assert batch_fw.counters() == scalar_fw.counters()
    assert batch_fw.accepted == scalar_fw.accepted
    assert batch_fw.dropped == scalar_fw.dropped
    assert batch_fw.conntrack_size == scalar_fw.conntrack_size


def test_firewall_batch_conntrack_admits_replies():
    firewall = Firewall()
    up = ProcessingContext(now=0.0, direction=Direction.UPSTREAM, client_ip="10.0.0.1")
    down = ProcessingContext(now=0.1, direction=Direction.DOWNSTREAM, client_ip="10.0.0.1")
    outbound = [tcp_packet(sport=2000 + i) for i in range(5)]
    firewall.process_batch(outbound, up)
    replies = [tcp_packet(src="10.0.0.2", dst="10.0.0.1", sport=80, dport=2000 + i) for i in range(5)]
    admitted = firewall.process_batch(replies, down)
    assert len(admitted) == 5
    assert firewall.conntrack_hits == 5


def test_rate_limiter_batch_matches_scalar_semantics():
    scalar_rl = RateLimiter(rate_bps=8e4, burst_bytes=2000)
    batch_rl = RateLimiter(rate_bps=8e4, burst_bytes=2000)
    context = ProcessingContext(now=5.0, direction=Direction.UPSTREAM, client_ip="10.0.0.1")
    packets = [tcp_packet(payload=300) for _ in range(10)]

    scalar_out = []
    for packet in packets:
        scalar_out.extend(scalar_rl.process(packet.copy(), context))
    batch_out = batch_rl.process_batch([p.copy() for p in packets], context)

    assert len(batch_out) == len(scalar_out)
    assert batch_rl.packets_policed == scalar_rl.packets_policed
    assert batch_rl.bytes_policed == scalar_rl.bytes_policed
    assert batch_rl.bucket_level(Direction.UPSTREAM) == pytest.approx(
        scalar_rl.bucket_level(Direction.UPSTREAM)
    )


def test_rate_limiter_batch_bulk_admission_when_tokens_cover_burst():
    limiter = RateLimiter(rate_bps=1e9, burst_bytes=1e9)
    context = ProcessingContext(now=1.0, direction=Direction.UPSTREAM, client_ip="10.0.0.1")
    outputs = limiter.process_batch([tcp_packet() for _ in range(50)], context)
    assert len(outputs) == 50
    assert limiter.packets_policed == 0


def test_default_process_batch_unrolls_scalar_hook():
    from repro.nfs.flow_monitor import FlowMonitor

    monitor = FlowMonitor()
    context = ProcessingContext(now=0.0, direction=Direction.UPSTREAM, client_ip="10.0.0.1")
    outputs = monitor.process_batch([tcp_packet(sport=3000 + i) for i in range(4)], context)
    assert len(outputs) == 4
    assert monitor.packets_in == 4


# --------------------------------------------------------------------------
# End-to-end: testbed traffic and telemetry export
# --------------------------------------------------------------------------


def test_testbed_traffic_populates_flow_cache_and_telemetry():
    testbed = GNFTestbed(TestbedConfig(station_count=1))
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    testbed.manager.attach_chain(client.ip, ServiceChain.of("firewall"))
    testbed.run(6.0)
    generator = CBRTrafficGenerator(
        testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=100
    )
    generator.start()
    testbed.run(5.0)
    generator.stop()

    switch = testbed.topology.station("station-1").switch
    assert generator.responses_received > 0
    assert switch.flow_cache.hits > switch.flow_cache.misses  # steady-state flows hit
    assert switch.summary()["fastpath_hits"] == switch.flow_cache.hits

    agent = testbed.agent_for("station-1")
    sample = agent.collector.sample_once()
    assert sample["fastpath.hit_rate"] > 0.5
    assert sample["fastpath.hits"] == float(switch.flow_cache.hits)
    exported = snapshot_to_json(agent.collector.latest())
    assert "fastpath.hit_rate" in exported


def test_fastpath_can_be_disabled_per_testbed():
    testbed = GNFTestbed(TestbedConfig(station_count=1, fastpath_enabled=False))
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    generator = CBRTrafficGenerator(
        testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=50
    )
    generator.start()
    testbed.run(3.0)
    switch = testbed.topology.station("station-1").switch
    assert generator.responses_received > 0
    assert switch.flow_cache.hits == 0 and switch.flow_cache.misses == 0
