"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.stats import mean, percentile, summarize
from repro.containers.cgroups import AdmissionError, ResourceAccount, ResourceRequest
from repro.netem import packet as pkt
from repro.netem.flowtable import Action, FlowTable, Match
from repro.netem.simulator import Simulator
from repro.nfs.base import Direction, ProcessingContext
from repro.nfs.dns_loadbalancer import DNSLoadBalancer
from repro.nfs.firewall import Firewall, FirewallAction, FirewallRule
from repro.nfs.nat import NAT
from repro.nfs.rate_limiter import TokenBucket
from repro.telemetry.metrics import TimeSeries

ip_octet = st.integers(min_value=1, max_value=254)
ips = st.builds(lambda a, b: f"10.{a % 32}.{b}.{a}", ip_octet, ip_octet)
ports = st.integers(min_value=1, max_value=65535)


# --------------------------------------------------------------------------
# Simulator ordering
# --------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_simulator_fires_events_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# --------------------------------------------------------------------------
# Packets and flow keys
# --------------------------------------------------------------------------


@given(ips, ips, ports, ports, st.integers(min_value=0, max_value=9000))
@settings(max_examples=100, deadline=None)
def test_packet_size_positive_and_copy_identical(src, dst, sport, dport, payload):
    packet = pkt.make_tcp_packet(src, dst, sport, dport, payload_bytes=payload)
    assert packet.size_bytes >= 64
    clone = packet.copy()
    assert clone.size_bytes == packet.size_bytes
    assert clone.flow_key == packet.flow_key


@given(ips, ips, ports, ports)
@settings(max_examples=100, deadline=None)
def test_flow_key_reverse_is_involution_and_canonical_is_stable(src, dst, sport, dport):
    key = pkt.FlowKey(src, dst, pkt.PROTO_TCP, sport, dport)
    assert key.reversed().reversed() == key
    assert key.canonical() == key.reversed().canonical()
    assert key.canonical().canonical() == key.canonical()


# --------------------------------------------------------------------------
# Flow table
# --------------------------------------------------------------------------


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=8)), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_flowtable_lookup_returns_highest_priority_match(rules):
    table = FlowTable()
    for priority, port in rules:
        table.add(priority, Match(), [Action.output(port)])
    packet = pkt.make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
    hit = table.lookup(packet, in_port=1)
    assert hit is not None
    assert hit.priority == max(priority for priority, _ in rules)


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_flowtable_remove_by_cookie_removes_exactly_that_cookie(cookies):
    table = FlowTable()
    for index, cookie in enumerate(cookies):
        table.add(index, Match(), [Action.drop()], cookie=cookie)
    removed = table.remove_by_cookie("a")
    assert removed == cookies.count("a")
    assert len(table) == len(cookies) - removed
    assert all(rule.cookie != "a" for rule in table.rules())


# --------------------------------------------------------------------------
# Resource accounting
# --------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=1.0, max_value=64.0, allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_resource_account_never_overcommits(memory_requests):
    account = ResourceAccount(cpu_mhz=1000, memory_mb=256, system_reserved_mb=32)
    admitted = 0
    for index, memory in enumerate(memory_requests):
        try:
            account.admit(f"c{index}", ResourceRequest(memory_mb=memory))
            admitted += 1
        except AdmissionError:
            pass
    assert account.allocated_memory_mb <= account.allocatable_memory_mb + 1e-9
    assert len(account.owners()) == admitted
    assert 0.0 <= account.memory_utilization() <= 1.0


# --------------------------------------------------------------------------
# Token bucket
# --------------------------------------------------------------------------


@given(
    st.floats(min_value=100.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=100.0, max_value=1e6, allow_nan=False),
    st.lists(st.tuples(st.floats(min_value=0.0, max_value=10.0), st.integers(min_value=1, max_value=2000)), max_size=50),
)
@settings(max_examples=50, deadline=None)
def test_token_bucket_never_exceeds_burst_or_goes_negative(rate, burst, events):
    bucket = TokenBucket(rate_bytes_per_s=rate, burst_bytes=burst)
    now = 0.0
    for delta, size in sorted(events):
        now += delta
        bucket.try_consume(size, now)
        assert -1e-6 <= bucket.tokens <= burst + 1e-6


# --------------------------------------------------------------------------
# NFs
# --------------------------------------------------------------------------


def _ctx(direction=Direction.UPSTREAM):
    return ProcessingContext(now=0.0, direction=direction, client_ip="10.10.0.5")


@given(st.lists(st.tuples(ips, ports), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_firewall_conservation_accepted_plus_dropped_equals_input(flows):
    firewall = Firewall(
        rules=[FirewallRule(action=FirewallAction.DROP, dst_port_range=(0, 1023))],
    )
    for dst, port in flows:
        packet = pkt.make_tcp_packet("10.10.0.5", dst, 40000, port)
        firewall.process(packet, _ctx())
    assert firewall.accepted + firewall.dropped == len(flows)
    assert firewall.packets_in == len(flows)
    assert firewall.packets_out + firewall.packets_dropped == len(flows)


@given(st.lists(st.tuples(ips, ports), min_size=1, max_size=40, unique=True))
@settings(max_examples=50, deadline=None)
def test_nat_translations_are_reversible_and_unique(flows):
    nat = NAT(public_ip="192.0.2.1")
    seen_public_ports = set()
    for src_unused, sport in flows:
        outbound = pkt.make_tcp_packet("10.10.0.5", "10.30.0.2", sport, 80)
        translated = nat.process(outbound, _ctx())[0]
        public_port = translated.l4.src_port
        # Distinct private ports must never share a public port.
        key = (sport,)
        if key not in seen_public_ports:
            seen_public_ports.add(public_port)
        reply = pkt.make_tcp_packet("10.30.0.2", "192.0.2.1", 80, public_port)
        reversed_packet = nat.process(reply, _ctx(Direction.DOWNSTREAM))[0]
        assert reversed_packet.ip.dst == "10.10.0.5"
        assert reversed_packet.l4.dst_port == sport
    assert nat.binding_count == len({sport for _, sport in flows})


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=60))
@settings(max_examples=50, deadline=None)
def test_dns_lb_round_robin_is_balanced(backend_count, queries):
    backends = [f"198.18.0.{i}" for i in range(1, backend_count + 1)]
    lb = DNSLoadBalancer(pools={"svc": backends})
    for _ in range(queries):
        query = pkt.make_dns_query("10.10.0.5", "10.30.0.2", name="svc")
        response = pkt.make_dns_response(query, addresses=("0.0.0.0",))
        lb.process(response, _ctx(Direction.DOWNSTREAM))
    distribution = lb.backend_distribution("svc")
    assert sum(distribution.values()) == queries
    if distribution:
        assert max(distribution.values()) - min(distribution.values() or [0]) <= 1


@given(st.dictionaries(st.sampled_from(["a.com", "b.com", "c.com"]), st.integers(1, 5), min_size=1))
@settings(max_examples=30, deadline=None)
def test_firewall_state_export_import_is_lossless(hosts):
    firewall = Firewall()
    for host_index, (host, count) in enumerate(hosts.items()):
        for index in range(count):
            packet = pkt.make_tcp_packet("10.10.0.5", f"10.30.0.{host_index + 1}", 40000 + index, 80)
            firewall.process(packet, _ctx())
    clone = Firewall()
    clone.import_state(firewall.export_state())
    assert clone.export_state() == firewall.export_state()


# --------------------------------------------------------------------------
# Telemetry and stats
# --------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_percentile_bounds_and_summary_consistency(values):
    assert min(values) <= percentile(values, 50) <= max(values)
    block = summarize(values)
    assert block["min"] <= block["median"] <= block["max"]
    assert block["min"] <= block["mean"] <= block["max"]
    assert block["p95"] <= block["max"] + 1e-9


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e4, allow_nan=False),
                          st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
                min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_timeseries_respects_bound_and_latest(samples):
    series = TimeSeries("x", max_samples=32)
    for timestamp, value in samples:
        series.record(timestamp, value)
    assert len(series) <= 32
    assert series.latest() == tuple(samples[-1])
