"""Unit tests for MAC/IPv4 address allocation."""

from __future__ import annotations

import pytest

from repro.netem.addressing import (
    AddressExhaustedError,
    AddressPlan,
    IPv4Allocator,
    MACAllocator,
    Subnet,
)


def test_mac_allocator_unique_and_locally_administered():
    allocator = MACAllocator()
    macs = {allocator.allocate() for _ in range(100)}
    assert len(macs) == 100
    assert all(mac.startswith("02:") for mac in macs)


def test_mac_allocator_custom_prefix():
    allocator = MACAllocator(prefix=0x06)
    assert allocator.allocate().startswith("06:")


def test_mac_allocator_invalid_prefix():
    with pytest.raises(ValueError):
        MACAllocator(prefix=0x1FF)


def test_mac_allocator_counts():
    allocator = MACAllocator()
    allocator.allocate()
    allocator.allocate()
    assert allocator.allocated_count == 2


def test_subnet_contains():
    subnet = Subnet("10.10.0.0/16", role="clients")
    assert subnet.contains("10.10.3.4")
    assert not subnet.contains("10.20.0.1")


def test_ipv4_allocator_skips_network_address():
    allocator = IPv4Allocator(Subnet("192.168.1.0/30"))
    first = allocator.allocate("host-a")
    assert first == "192.168.1.1"


def test_ipv4_allocator_records_owner():
    allocator = IPv4Allocator(Subnet("10.0.0.0/24"))
    address = allocator.allocate("phone")
    assert allocator.owner_of(address) == "phone"
    assert allocator.owner_of("10.0.0.250") is None
    assert len(allocator) == 1


def test_ipv4_allocator_exhaustion():
    allocator = IPv4Allocator(Subnet("10.0.0.0/30"))
    allocator.allocate()
    allocator.allocate()
    with pytest.raises(AddressExhaustedError):
        allocator.allocate()


def test_address_plan_roles():
    plan = AddressPlan()
    client_ip = plan.allocate_ip("clients", owner="phone")
    server_ip = plan.allocate_ip("servers", owner="web")
    assert plan.role_of(client_ip) == "clients"
    assert plan.role_of(server_ip) == "servers"
    assert plan.role_of("8.8.8.8") is None


def test_address_plan_unknown_role():
    plan = AddressPlan()
    with pytest.raises(KeyError):
        plan.allocate_ip("does-not-exist")


def test_address_plan_custom_subnet_overrides_default():
    plan = AddressPlan(subnets={"clients": "172.16.0.0/24"})
    address = plan.allocate_ip("clients")
    assert address.startswith("172.16.0.")


def test_address_plan_allocates_unique_ips_across_calls():
    plan = AddressPlan()
    addresses = {plan.allocate_ip("clients") for _ in range(50)}
    assert len(addresses) == 50
