"""Split-chain (embedding) deployments end to end.

Covers the PR's split-chain guarantees at testbed scale:

* a chain too big for the client's saturated station embeds across two
  stations, with the head (client-nearest) segment on the client's station;
* roaming moves *only* the head segment -- remote segments stay where the
  embedding put them, and nothing staged per-roam leaks (the soak-ledger
  pattern from the migration tests);
* detach tears down every segment's containers on every station.

The shard-count digest invariance of a splitting workload is asserted by
``test_new_scenarios_shard_invariant_digests`` over ``slo-tight-embedding``.
"""

from __future__ import annotations

from repro.core.api import ClientEvent
from repro.core.chain import NFRequirements, NFSpec, ServiceChain
from repro.core.manager import AssignmentState, segment_deployment_id
from repro.core.testbed import GNFTestbed, TestbedConfig

CLIENT_IP = "10.10.99.1"
FILLER_IP = "10.10.99.2"


def _event(testbed: GNFTestbed, station: str, kind: str, ip: str = CLIENT_IP) -> ClientEvent:
    return ClientEvent(
        station_name=station,
        client_ip=ip,
        client_name="phone",
        cell_name=f"{station}-cell1",
        event=kind,
        time=testbed.simulator.now,
    )


def _wait_active(testbed: GNFTestbed, assignment, budget_s: float = 30.0) -> None:
    waited = 0.0
    while assignment.state is not AssignmentState.ACTIVE and waited < budget_s:
        testbed.run(1.0)
        waited += 1.0
    assert assignment.state is AssignmentState.ACTIVE, assignment.state


def _split_chain() -> ServiceChain:
    """Four 9 MB NFs: too big for station-1's scraps, splits 2 + 2."""
    return ServiceChain(
        [
            NFSpec(nf_type, requirements=NFRequirements(memory_mb=9.0))
            for nf_type in ("ids", "cache", "http-filter", "flow-monitor")
        ],
        name="big-chain",
    )


def _split_testbed():
    """An embedding testbed with station-1 pre-filled so the next chain splits.

    Eight filler firewalls (a different client) push station-1 past the
    local-preference threshold while leaving scraps that fit exactly two of
    the split chain's NFs: the head lands locally, the tail spills to
    station-2.
    """
    testbed = GNFTestbed(TestbedConfig(station_count=3, placement_strategy="embedding"))
    testbed.start()
    testbed.run(0.5)
    for _ in range(8):
        testbed.manager.attach_chain(
            FILLER_IP, ServiceChain.of("firewall"), station_name="station-1"
        )
        testbed.run(2.1)
    testbed.run(8.0)  # let heartbeats settle and pending commitments expire
    assignment = testbed.manager.attach_chain(
        CLIENT_IP, _split_chain(), station_name="station-1"
    )
    testbed.run(5.0)
    assert assignment.state is AssignmentState.ACTIVE, assignment.failure_reason
    assert assignment.is_split, assignment.segments
    return testbed, assignment


def _running_containers(testbed: GNFTestbed, assignment_id: str):
    return [
        (station, container.name)
        for station, agent in testbed.agents.items()
        for container in agent.runtime.containers.values()
        if container.is_running and assignment_id in container.name
    ]


def test_split_deployment_lands_head_local_tail_remote():
    testbed, assignment = _split_testbed()
    assert [(s.station_name, s.start, s.end) for s in assignment.segments] == [
        ("station-1", 0, 2),
        ("station-2", 2, 4),
    ]
    head = testbed.agents["station-1"].deployments[assignment.assignment_id]
    assert head.chain.nf_types == ["ids", "cache"]
    tail_id = segment_deployment_id(assignment.assignment_id, 1)
    tail = testbed.agents["station-2"].deployments[tail_id]
    assert tail.chain.nf_types == ["http-filter", "flow-monitor"]
    # All four NFs run, split across exactly the two segment stations.
    containers = _running_containers(testbed, assignment.assignment_id)
    assert len(containers) == 4
    assert {station for station, _ in containers} == {"station-1", "station-2"}


def test_split_chain_roams_head_segment_only():
    testbed, assignment = _split_testbed()
    testbed.manager.receive_client_event(_event(testbed, "station-1", "disconnected"))
    testbed.run(0.3)
    testbed.manager.receive_client_event(_event(testbed, "station-3", "connected"))
    testbed.run(3.0)
    _wait_active(testbed, assignment)
    assert assignment.migrations == 1
    assert assignment.station_name == "station-3"
    assert assignment.segments[0].station_name == "station-3"
    # The remote segment did not move (and was not redeployed).
    assert assignment.segments[1].station_name == "station-2"
    tail_id = segment_deployment_id(assignment.assignment_id, 1)
    assert tail_id in testbed.agents["station-2"].deployments
    # The head moved whole: its two NFs now run at station-3, none remain
    # at station-1, and nothing staged for the roam leaks.
    moved = testbed.agents["station-3"].deployments[assignment.assignment_id]
    assert moved.chain.nf_types == ["ids", "cache"]
    assert assignment.assignment_id not in testbed.agents["station-1"].deployments
    assert len(_running_containers(testbed, assignment.assignment_id)) == 4
    assert testbed.roaming._captured_state == {}
    assert testbed.roaming._speculative == {}


def test_split_chain_roam_soak_leaks_nothing():
    testbed, assignment = _split_testbed()
    for _ in range(10):
        old = assignment.station_name
        new = "station-3" if old == "station-1" else "station-1"
        testbed.manager.receive_client_event(_event(testbed, old, "disconnected"))
        testbed.run(0.3)
        testbed.manager.receive_client_event(_event(testbed, new, "connected"))
        testbed.run(2.2)
        _wait_active(testbed, assignment)
    assert assignment.migrations == 10
    assert all(record.success for record in testbed.roaming.records)
    # Ledgers bounded, container census constant: 4 NFs, no strays.
    assert testbed.roaming._captured_state == {}
    assert testbed.roaming._speculative == {}
    assert len(_running_containers(testbed, assignment.assignment_id)) == 4
    # Exactly one station hosts the head; the tail never moved.
    heads = [
        station
        for station, agent in testbed.agents.items()
        if assignment.assignment_id in agent.deployments
    ]
    assert heads == [assignment.station_name]
    assert assignment.segments[1].station_name == "station-2"
    # The run drains cleanly.
    testbed.stop()
    testbed.simulator.run(max_events=200_000)
    assert testbed.simulator.pending_events == 0


def test_detach_split_chain_removes_every_segment_container():
    testbed, assignment = _split_testbed()
    testbed.manager.detach(assignment.assignment_id)
    testbed.run(2.0)
    assert assignment.state is AssignmentState.REMOVED
    assert _running_containers(testbed, assignment.assignment_id) == []
    for agent in testbed.agents.values():
        assert not any(
            key == assignment.assignment_id or key.startswith(f"{assignment.assignment_id}::")
            for key in agent.deployments
        )
