"""Unit tests for telemetry (metrics, collector, export) and analysis helpers."""

from __future__ import annotations

import json

import pytest

from repro.analysis.report import ExperimentReport, ExperimentResult
from repro.analysis.stats import mean, median, percentile, ratio, stdev, summarize
from repro.netem.simulator import Simulator
from repro.telemetry.collector import ResourceCollector
from repro.telemetry.export import render_table, snapshot_to_json
from repro.telemetry.metrics import Counter, Gauge, MetricsRegistry, TimeSeries


# --------------------------------------------------------------------------
# Metrics primitives
# --------------------------------------------------------------------------


def test_counter_increments_and_rejects_decrease():
    counter = Counter("packets")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.increment(-1)
    counter.reset()
    assert counter.value == 0


def test_gauge_set_and_add():
    gauge = Gauge("memory")
    gauge.set(10)
    gauge.add(-4)
    assert gauge.value == 6


def test_timeseries_records_and_summarises():
    series = TimeSeries("cpu")
    for t in range(5):
        series.record(float(t), float(t * 10))
    assert len(series) == 5
    assert series.latest() == (4.0, 40.0)
    assert series.mean() == pytest.approx(20.0)
    assert series.maximum() == 40.0
    assert series.rate_per_second() == pytest.approx(10.0)
    assert series.window(since=3.0) == [(3.0, 30.0), (4.0, 40.0)]


def test_timeseries_bounded():
    series = TimeSeries("x", max_samples=3)
    for t in range(10):
        series.record(float(t), float(t))
    assert len(series) == 3
    assert series.values() == [7.0, 8.0, 9.0]


def test_timeseries_empty_edge_cases():
    series = TimeSeries("empty")
    assert series.latest() is None
    assert series.mean() == 0.0
    assert series.rate_per_second() == 0.0
    with pytest.raises(ValueError):
        TimeSeries("bad", max_samples=0)


def test_registry_reuses_instruments_and_snapshots():
    registry = MetricsRegistry("station")
    registry.counter("a").increment()
    registry.counter("a").increment()
    registry.gauge("b").set(3)
    registry.series("c").record(1.0, 9.0)
    snapshot = registry.snapshot()
    assert snapshot == {"a": 2.0, "b": 3.0, "c": 9.0}
    assert registry.series_names() == ["c"]


# --------------------------------------------------------------------------
# Collector
# --------------------------------------------------------------------------


def test_collector_samples_sources_periodically():
    simulator = Simulator()
    collector = ResourceCollector(simulator, interval_s=1.0)
    values = {"cpu": 0.0}
    collector.add_source("host", lambda: dict(values))
    collector.start()
    values["cpu"] = 5.0
    simulator.run(until=3.5)
    series = collector.registry.series("host.cpu")
    assert len(series) == 3
    assert collector.samples_taken == 3
    assert collector.latest()["host.cpu"] == 5.0
    collector.stop()


def test_collector_survives_broken_source():
    simulator = Simulator()
    collector = ResourceCollector(simulator, interval_s=1.0)

    def broken():
        raise RuntimeError("boom")

    collector.add_source("bad", broken)
    collector.add_source("good", lambda: {"ok": 1.0})
    collector.start()
    simulator.run(until=2.5)
    assert collector.registry.counters()["bad.collection_errors"] == 2
    assert len(collector.registry.series("good.ok")) == 2


def test_collector_source_management():
    simulator = Simulator()
    collector = ResourceCollector(simulator, interval_s=1.0)
    collector.add_source("x", lambda: {})
    assert collector.sources() == ["x"]
    collector.remove_source("x")
    assert collector.sources() == []
    with pytest.raises(ValueError):
        ResourceCollector(simulator, interval_s=0)


# --------------------------------------------------------------------------
# Export helpers
# --------------------------------------------------------------------------


def test_snapshot_to_json_is_deterministic():
    first = snapshot_to_json({"b": 1, "a": {"y": 2, "x": 1}})
    second = snapshot_to_json({"a": {"x": 1, "y": 2}, "b": 1})
    assert first == second
    assert json.loads(first)["a"]["x"] == 1


def test_render_table_alignment_and_title():
    text = render_table(["name", "value"], [["a", 1.23456], ["longer-name", 2]], title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[2]
    assert "longer-name" in text
    assert "1.235" in text  # default precision 3


def test_render_table_bool_formatting():
    text = render_table(["flag"], [[True], [False]])
    assert "yes" in text and "no" in text


# --------------------------------------------------------------------------
# Analysis stats
# --------------------------------------------------------------------------


def test_mean_median_empty_and_simple():
    assert mean([]) == 0.0
    assert mean([1, 2, 3]) == 2.0
    assert median([]) == 0.0
    assert median([3, 1, 2]) == 2.0
    assert median([1, 2, 3, 4]) == 2.5


def test_percentile_interpolation_and_bounds():
    values = [1, 2, 3, 4, 5]
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 5
    assert percentile(values, 50) == 3
    assert percentile(values, 62.5) == pytest.approx(3.5)
    with pytest.raises(ValueError):
        percentile(values, 120)
    assert percentile([], 50) == 0.0
    assert percentile([7], 99) == 7


def test_stdev_and_ratio():
    assert stdev([5]) == 0.0
    assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)
    assert ratio(10, 4) == 2.5
    assert ratio(10, 0) == 0.0


def test_summarize_block():
    block = summarize([1.0, 2.0, 3.0, 4.0])
    assert block["count"] == 4
    assert block["min"] == 1.0 and block["max"] == 4.0
    assert block["mean"] == 2.5


# --------------------------------------------------------------------------
# Experiment reporting
# --------------------------------------------------------------------------


def test_experiment_result_render_and_markdown():
    result = ExperimentResult(
        experiment_id="E2",
        title="Instantiation latency",
        headers=["platform", "latency_s"],
        paper_claim="NFs can be attached in seconds",
    )
    result.add_row("container", 0.35)
    result.add_row("vm", 20.1)
    text = result.render()
    assert "E2: Instantiation latency" in text
    assert "paper claim" in text
    markdown = result.to_markdown()
    assert markdown.startswith("### E2")
    assert "| container |" in markdown


def test_experiment_report_save(tmp_path):
    report = ExperimentReport(title="run")
    result = ExperimentResult("E1", "Roaming", headers=["metric", "value"])
    result.add_row("handovers", 1)
    report.add(result)
    target = tmp_path / "report.md"
    report.save(str(target))
    content = target.read_text()
    assert "# run" in content
    assert "### E1" in content
    assert "handovers" in report.render()
