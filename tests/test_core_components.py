"""Unit tests for the GNF control-plane building blocks: policies, chains,
schedules, placement, monitoring, notifications, the NF repository and the
control channel."""

from __future__ import annotations

import pytest

from repro.containers.image import ContainerImage
from repro.core.api import ControlChannel
from repro.core.chain import NFSpec, ServiceChain
from repro.core.errors import CatalogError, DeploymentError, ScheduleError
from repro.core.monitoring import HealthMonitor, HotspotDetector
from repro.core.notifications import NotificationCenter, ProviderNotification
from repro.core.placement import (
    ClosestAgentPlacement,
    CorePlacement,
    LatencyAwarePlacement,
    LoadAwarePlacement,
    StationView,
)
from repro.core.policy import TrafficSelector
from repro.core.repository import NFRepository
from repro.core.scheduler import NFScheduler, ScheduleWindow, TimeSchedule
from repro.netem import packet as pkt
from repro.netem.simulator import Simulator


# --------------------------------------------------------------------------
# TrafficSelector
# --------------------------------------------------------------------------


def test_selector_all_traffic_matches_both_directions():
    selector = TrafficSelector.all_traffic()
    up = selector.upstream_match("10.10.0.5", in_port=3)
    down = selector.downstream_match("10.10.0.5", in_port=1)
    request = pkt.make_tcp_packet("10.10.0.5", "10.30.0.2", 1000, 80)
    response = pkt.make_tcp_packet("10.30.0.2", "10.10.0.5", 80, 1000)
    assert up.matches(request, 3)
    assert not up.matches(request, 4)
    assert down.matches(response, 1)


def test_selector_web_traffic_restricts_ports():
    selector = TrafficSelector.web_traffic()
    http = pkt.make_tcp_packet("10.10.0.5", "10.30.0.2", 1000, 80)
    ssh = pkt.make_tcp_packet("10.10.0.5", "10.30.0.2", 1000, 22)
    assert selector.upstream_match("10.10.0.5").matches(http, 1)
    assert not selector.upstream_match("10.10.0.5").matches(ssh, 1)
    response = pkt.make_tcp_packet("10.30.0.2", "10.10.0.5", 80, 1000)
    assert selector.downstream_match("10.10.0.5").matches(response, 1)


def test_selector_dns_traffic_uses_udp_53():
    selector = TrafficSelector.dns_traffic()
    assert selector.protocol_number == pkt.PROTO_UDP
    query = pkt.make_dns_query("10.10.0.5", "10.30.0.2", name="x")
    assert selector.upstream_match("10.10.0.5").matches(query, 1)


def test_selector_serialization_roundtrip():
    selector = TrafficSelector(protocol="tcp", remote_port=443, remote_ip="10.30.0.2", description="tls")
    restored = TrafficSelector.from_dict(selector.to_dict())
    assert restored == selector


def test_selector_rejects_unknown_protocol():
    with pytest.raises(ValueError):
        TrafficSelector(protocol="gre")


# --------------------------------------------------------------------------
# ServiceChain
# --------------------------------------------------------------------------


def test_chain_requires_at_least_one_nf():
    with pytest.raises(ValueError):
        ServiceChain([])


def test_chain_orders_and_types():
    chain = ServiceChain.of("firewall", "http-filter", "rate-limiter")
    assert chain.nf_types == ["firewall", "http-filter", "rate-limiter"]
    assert [spec.nf_type for spec in chain.upstream_order()] == chain.nf_types
    assert [spec.nf_type for spec in chain.downstream_order()] == list(reversed(chain.nf_types))
    assert len(chain) == 3


def test_chain_single_with_config():
    chain = ServiceChain.single("cache", config={"capacity_mb": 4.0})
    assert chain.specs[0].config == {"capacity_mb": 4.0}


def test_chain_serialization_roundtrip():
    chain = ServiceChain([NFSpec("firewall", config={"stateful": False}), NFSpec("nat")])
    restored = ServiceChain.from_dicts(chain.to_dicts(), name="copy")
    assert restored.nf_types == chain.nf_types
    assert restored.specs[0].config == {"stateful": False}


def test_chain_ids_unique():
    assert ServiceChain.of("firewall").chain_id != ServiceChain.of("firewall").chain_id


# --------------------------------------------------------------------------
# Schedules and the scheduler
# --------------------------------------------------------------------------


def test_schedule_always_active():
    assert TimeSchedule.always().is_active(0.0)
    assert TimeSchedule.always().is_active(1e9)


def test_schedule_window_semantics():
    schedule = TimeSchedule.between(10.0, 20.0)
    assert not schedule.is_active(5.0)
    assert schedule.is_active(10.0)
    assert schedule.is_active(19.999)
    assert not schedule.is_active(20.0)


def test_schedule_daily_window_wraps():
    schedule = TimeSchedule.daily(10.0, 20.0, day_length_s=100.0)
    assert schedule.is_active(15.0)
    assert schedule.is_active(115.0)
    assert not schedule.is_active(95.0)


def test_schedule_validation():
    with pytest.raises(ScheduleError):
        ScheduleWindow(5.0, 5.0)
    # A zero-length daily window is meaningless (start > end wraps instead).
    with pytest.raises(ScheduleError):
        TimeSchedule.daily(30.0, 30.0)
    with pytest.raises(ScheduleError):
        TimeSchedule.daily(-5.0, 20.0)
    with pytest.raises(ScheduleError):
        TimeSchedule.daily(10.0, 200.0, day_length_s=100.0)
    with pytest.raises(ScheduleError):
        TimeSchedule(day_length_s=0)


def test_schedule_daily_window_wrapping_day_boundary():
    # A "22:00 -> 02:00" night window on a compressed 24 s day.
    schedule = TimeSchedule.daily(22.0, 2.0, day_length_s=24.0)
    assert schedule.is_active(23.0)       # late evening, day 0
    assert schedule.is_active(24.0)       # exactly midnight -> day 1 begins
    assert schedule.is_active(25.0)       # small hours, day 1
    assert not schedule.is_active(2.0)    # window end is exclusive
    assert not schedule.is_active(12.0)   # midday
    assert schedule.is_active(22.0)       # window start is inclusive
    # The same pattern holds many compressed days in.
    assert schedule.is_active(10 * 24.0 + 23.5)
    assert not schedule.is_active(10 * 24.0 + 3.0)


def test_scheduler_drives_enable_disable_transitions():
    simulator = Simulator()
    enabled, disabled = [], []
    scheduler = NFScheduler(simulator, enabled.append, disabled.append, check_interval_s=1.0)
    scheduler.add("asg-1", TimeSchedule.between(3.0, 6.0), currently_active=True)
    scheduler.start()
    simulator.run(until=10.0)
    # Active at attach time, disabled before the window opens, re-enabled inside
    # it, disabled again after it closes.
    assert disabled == ["asg-1", "asg-1"]
    assert enabled == ["asg-1"]
    assert scheduler.transitions == 3
    scheduler.remove("asg-1")
    assert scheduler.tracked() == []
    scheduler.stop()


def test_scheduler_ignores_always_schedules():
    simulator = Simulator()
    enabled, disabled = [], []
    scheduler = NFScheduler(simulator, enabled.append, disabled.append)
    scheduler.add("asg-1", TimeSchedule.always(), currently_active=True)
    scheduler.start()
    simulator.run(until=5.0)
    assert enabled == [] and disabled == []


# --------------------------------------------------------------------------
# Placement
# --------------------------------------------------------------------------


def views():
    return [
        StationView("station-1", free_memory_mb=10, memory_utilization=0.9, running_nfs=5,
                    control_latency_s=0.01, client_latency_s=0.0),
        StationView("station-2", free_memory_mb=60, memory_utilization=0.2, running_nfs=1,
                    control_latency_s=0.01, client_latency_s=0.01),
        StationView("central", free_memory_mb=4000, memory_utilization=0.05, running_nfs=0,
                    control_latency_s=0.02, client_latency_s=0.03),
    ]


def test_closest_agent_placement_uses_client_station():
    assert ClosestAgentPlacement().choose("station-1", views()) == "station-1"
    with pytest.raises(DeploymentError):
        ClosestAgentPlacement().choose("station-99", views())


def test_load_aware_placement_prefers_free_memory_within_budget():
    placement = LoadAwarePlacement(latency_budget_s=0.02)
    assert placement.choose("station-1", views()) == "station-2"


def test_load_aware_placement_falls_back_when_nothing_eligible():
    placement = LoadAwarePlacement(latency_budget_s=0.001, min_free_memory_mb=10_000)
    assert placement.choose("station-1", views()) == "central"
    with pytest.raises(DeploymentError):
        placement.choose("station-1", [])


def test_latency_aware_placement_minimises_latency():
    assert LatencyAwarePlacement().choose("station-1", views()) == "station-1"
    with pytest.raises(DeploymentError):
        LatencyAwarePlacement().choose("station-1", [])


def test_core_placement_pins_to_central_station():
    assert CorePlacement("central").choose("station-1", views()) == "central"
    with pytest.raises(DeploymentError):
        CorePlacement("missing").choose("station-1", views())


# --------------------------------------------------------------------------
# Health monitoring and hotspot detection
# --------------------------------------------------------------------------


def test_health_monitor_tracks_liveness():
    monitor = HealthMonitor(heartbeat_timeout_s=5.0)
    monitor.register("station-1", now=0.0)
    monitor.record_heartbeat("station-1", now=2.0)
    assert monitor.online_stations(now=4.0) == ["station-1"]
    assert monitor.offline_stations(now=20.0) == ["station-1"]
    assert monitor.heartbeats_received("station-1") == 1
    assert not monitor.is_online("station-99", now=0.0)
    # Heartbeat from an unknown station auto-registers it.
    monitor.record_heartbeat("station-2", now=3.0)
    assert len(monitor) == 2


def test_hotspot_detector_memory_threshold():
    detector = HotspotDetector(memory_threshold=0.8)
    found = detector.observe("station-1", 1.0, {"memory_utilization": 0.95, "total_cpu_seconds": 0.0})
    assert len(found) == 1
    assert detector.hotspot_stations() == ["station-1"]
    assert detector.recent_hotspots(since=0.5)


def test_hotspot_detector_cpu_rate_needs_two_samples():
    detector = HotspotDetector(cpu_seconds_rate_threshold=0.5)
    assert detector.observe("s", 0.0, {"memory_utilization": 0.1, "total_cpu_seconds": 0.0}) == []
    found = detector.observe("s", 1.0, {"memory_utilization": 0.1, "total_cpu_seconds": 0.9})
    assert [hotspot.metric for hotspot in found] == ["cpu_busy_fraction"]


def test_hotspot_detector_quiet_station_never_flagged():
    detector = HotspotDetector()
    for t in range(5):
        detector.observe("s", float(t), {"memory_utilization": 0.2, "total_cpu_seconds": 0.01 * t})
    assert detector.hotspot_stations() == []


# --------------------------------------------------------------------------
# Notification centre
# --------------------------------------------------------------------------


def make_notification(severity="warning", station="station-1", nf="ids-1", raised=1.0, received=1.02):
    return ProviderNotification(
        received_at=received,
        raised_at=raised,
        station_name=station,
        nf_name=nf,
        severity=severity,
        message="event",
    )


def test_notification_center_stores_filters_and_fans_out():
    center = NotificationCenter()
    seen = []
    center.subscribe(seen.append)
    center.publish(make_notification("info"))
    center.publish(make_notification("critical", station="station-2", nf="fw-1"))
    assert len(center) == 2
    assert len(seen) == 2
    assert [n.severity for n in center.by_severity("warning")] == ["critical"]
    assert len(center.by_station("station-2")) == 1
    assert len(center.by_nf("ids-1")) == 1
    assert center.summary() == {"info": 1, "critical": 1}


def test_notification_delivery_latency_and_ack():
    center = NotificationCenter()
    center.publish(make_notification(raised=1.0, received=1.25))
    assert center.all()[0].delivery_latency_s == pytest.approx(0.25)
    assert len(center.unacknowledged()) == 1
    assert center.acknowledge_all() == 1
    assert center.unacknowledged() == []
    assert center.acknowledge_all() == 0


def test_notification_center_bounded():
    center = NotificationCenter(max_notifications=3)
    for _ in range(5):
        center.publish(make_notification())
    assert len(center) == 3


# --------------------------------------------------------------------------
# NF repository and control channel
# --------------------------------------------------------------------------


def test_repository_default_catalog_has_demo_nfs():
    repository = NFRepository.with_default_catalog()
    assert {"firewall", "http-filter", "dns-loadbalancer"} <= set(repository.types())
    entry = repository.lookup("firewall")
    assert entry.image_reference == "gnf/firewall:latest"
    assert entry.nf_class.endswith("Firewall")
    assert "firewall" in repository
    assert any(row["nf_type"] == "cache" for row in repository.describe())


def test_repository_unknown_type_raises():
    repository = NFRepository.with_default_catalog()
    with pytest.raises(CatalogError):
        repository.lookup("quantum-optimizer")


def test_repository_register_custom_entry():
    repository = NFRepository()
    image = ContainerImage.build("acme/scrubber", size_mb=2.0, nf_class="repro.nfs.flow_monitor.FlowMonitor")
    repository.register("scrubber", image, default_config={"top_talker_count": 3})
    entry = repository.lookup("scrubber")
    assert entry.default_config == {"top_talker_count": 3}
    assert "acme/scrubber" in repository.registry


def test_control_channel_delivers_after_latency():
    simulator = Simulator()
    channel = ControlChannel(simulator, latency_s=0.015)
    arrivals = []
    channel.call(lambda value: arrivals.append((value, simulator.now)), 42)
    simulator.run()
    assert arrivals == [(42, pytest.approx(0.015))]
    assert channel.stats()["messages_delivered"] == 1


def test_control_channel_rejects_negative_latency():
    with pytest.raises(ValueError):
        ControlChannel(Simulator(), latency_s=-1)
