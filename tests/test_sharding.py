"""Tests for the sharded control plane: station->shard routing, ControlBus
coalescing, aggregate views through the frontend, cross-shard roaming
handoffs, and digest-invariance of the shard count."""

from __future__ import annotations

import pytest

from repro.core.api import NFNotificationMessage
from repro.core.chain import ServiceChain
from repro.core.manager import AssignmentState, GNFManager
from repro.core.sharding import ShardedManager, StationShardMap
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import CBRTrafficGenerator
from repro.scenarios import run_scenario
from repro.wireless.mobility import LinearMobility


# ---------------------------------------------------------------------------
# Station -> shard routing
# ---------------------------------------------------------------------------


def test_shard_map_contiguous_balanced_bands():
    shard_map = StationShardMap(station_count=8, shard_count=4)
    shards = [shard_map.shard_for(f"station-{i}") for i in range(1, 9)]
    assert shards == [0, 0, 1, 1, 2, 2, 3, 3]
    # Contiguity: a station's shard never decreases as the index grows.
    assert shards == sorted(shards)
    assert shard_map.band(0) == (1, 2)
    assert shard_map.band(3) == (7, 8)


def test_shard_map_routing_is_consistent_and_total():
    shard_map = StationShardMap(station_count=5, shard_count=2)
    for name in ("station-1", "station-5", "gateway", "weird.name"):
        first = shard_map.shard_for(name)
        assert first == shard_map.shard_for(name)
        assert 0 <= first < 2


def test_shard_map_more_shards_than_stations_leaves_empty_bands():
    shard_map = StationShardMap(station_count=2, shard_count=4)
    assert shard_map.shard_for("station-1") != shard_map.shard_for("station-2")
    occupied = {shard_map.shard_for(f"station-{i}") for i in (1, 2)}
    assert len(occupied) == 2


def test_shard_map_rejects_bad_counts():
    with pytest.raises(ValueError):
        StationShardMap(station_count=4, shard_count=0)
    with pytest.raises(ValueError):
        StationShardMap(station_count=0, shard_count=1)


# ---------------------------------------------------------------------------
# ControlBus coalescing
# ---------------------------------------------------------------------------


def test_control_bus_coalesces_heartbeats_into_few_flushes():
    testbed = GNFTestbed(TestbedConfig(station_count=8, shard_count=4))
    testbed.start()
    testbed.run(10.0)
    manager = testbed.manager
    assert isinstance(manager, ShardedManager)
    bus = manager.bus
    # All 8 stations heartbeat on the same ticks: 8 messages ride each flush.
    assert bus.messages_enqueued >= 8 * 5
    assert bus.flushes < bus.messages_enqueued
    assert bus.largest_batch >= 2
    assert bus.stats()["coalescing_ratio"] > 1.0
    # Nothing is lost in the coalescing: every sent heartbeat is processed
    # (give the last wave its control-latency to land).
    testbed.run(0.5)
    sent = sum(agent.heartbeats_sent for agent in testbed.agents.values())
    assert manager.heartbeats_processed == sent
    # Channel traffic accounting still works per station.
    stats = manager.control_plane_stats()
    assert set(stats) == set(testbed.agents)
    assert all(entry["messages_delivered"] > 0 for entry in stats.values())


def test_notifications_flow_through_bus_to_shared_centre():
    testbed = GNFTestbed(TestbedConfig(station_count=4, shard_count=2))
    testbed.start()
    testbed.run(1.0)
    agent = testbed.agents["station-3"]
    agent._manager_notification_sink(
        NFNotificationMessage(
            station_name="station-3",
            nf_name="ids-1",
            severity="critical",
            message="intrusion attempt",
            time=testbed.simulator.now,
        )
    )
    testbed.run(1.0)
    stored = testbed.manager.notifications.by_station("station-3")
    assert len(stored) == 1
    assert stored[0].severity == "critical"
    assert stored[0].delivery_latency_s > 0


# ---------------------------------------------------------------------------
# Aggregate views through the frontend
# ---------------------------------------------------------------------------


def _built_pair(station_count=4, **kwargs):
    single = GNFTestbed(TestbedConfig(station_count=station_count, shard_count=1, **kwargs))
    sharded = GNFTestbed(TestbedConfig(station_count=station_count, shard_count=station_count, **kwargs))
    for testbed in (single, sharded):
        testbed.start()
        testbed.run(10.0)
    return single, sharded


def test_overview_and_station_views_aggregate_across_shards():
    single, sharded = _built_pair()
    assert isinstance(single.manager, GNFManager)
    assert isinstance(sharded.manager, ShardedManager)
    lone, fanned = single.manager.overview(), sharded.manager.overview()
    for key in ("online_stations", "offline_stations", "connected_clients",
                "assignments", "active_assignments", "enabled_nfs", "heartbeats_processed"):
        assert lone[key] == fanned[key], key
    assert fanned["shards"] == 4
    # The placement view spans every station regardless of shard ownership.
    names = [view.name for view in sharded.manager.station_views("station-1")]
    assert sorted(names) == single.station_names()
    # Health and per-station stats route through the facades.
    now = sharded.simulator.now
    assert sharded.manager.health.online_stations(now) == single.station_names()
    assert sharded.manager.health.is_online("station-2", now)
    assert len(sharded.manager.health) == 4
    assert set(sharded.manager.last_heartbeat) == set(single.station_names())


def test_dashboard_renders_through_sharded_frontend():
    _, sharded = _built_pair()
    # The UI is a facade over the Manager API; it must not notice sharding.
    assert "GNF network overview" in sharded.ui.render_overview()
    rows = sharded.ui.stations()
    assert len(rows) == 4
    assert all(row["online"] for row in rows)


def test_attach_routes_to_owning_shard():
    testbed = GNFTestbed(TestbedConfig(station_count=4, shard_count=2))
    client = testbed.add_client("phone", position=(3 * testbed.config.station_spacing_m, 0.0))
    testbed.start()
    testbed.run(1.0)
    manager = testbed.manager
    assignment = manager.attach_nf(client.ip, "firewall")
    assert assignment.station_name == "station-4"
    owner = manager.shard_of("station-4")
    assert assignment.assignment_id in owner.assignments
    other = manager.shard_of("station-1")
    assert assignment.assignment_id not in other.assignments
    # Frontend-level queries see it too.
    assert manager.assignments_for_client(client.ip) == [assignment]
    testbed.run(8.0)
    assert assignment.state is AssignmentState.ACTIVE
    # Detach routes back to the same shard.
    manager.detach(assignment.assignment_id)
    testbed.run(2.0)
    assert assignment.state is AssignmentState.REMOVED
    assert testbed.agents["station-4"].deployment_for_client(client.ip) is None


# ---------------------------------------------------------------------------
# Cross-shard roaming
# ---------------------------------------------------------------------------


def test_cross_shard_roaming_keeps_chain_and_tears_down_old_shard():
    """A client roams from shard 0's station to shard 1's: the chain follows
    via an explicit handoff and the old shard's steering rules are torn down
    (asserted from the telemetry the old station reports, not just live
    object state)."""
    testbed = GNFTestbed(TestbedConfig(station_count=2, shard_count=2, migration_strategy="cold"))
    manager = testbed.manager
    assert isinstance(manager, ShardedManager)
    assert manager.shard_map.shard_for("station-1") != manager.shard_map.shard_for("station-2")
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    baseline_rules = testbed.topology.stations["station-1"].switch.summary()["flow_rules"]
    assignment = manager.attach_chain(client.ip, ServiceChain.of("firewall", "http-filter"))
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20)
    generator.start()
    testbed.run(6.0)
    assert assignment.state is AssignmentState.ACTIVE
    # Traffic is flowing through the chain via the old station's fast path.
    assert testbed.topology.stations["station-1"].switch.flow_cache.stats()["hits"] > 0
    assert testbed.topology.stations["station-1"].switch.summary()["flow_rules"] > baseline_rules

    LinearMobility(testbed.simulator, client, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    testbed.run(40.0)

    # The migration completed and the chain kept following the client.
    assert client.current_station_name == "station-2"
    record = testbed.roaming.records[0]
    assert record.success and record.to_station == "station-2"
    assert assignment.state is AssignmentState.ACTIVE
    assert assignment.station_name == "station-2"
    assert assignment.migrations == 1

    # The explicit handoff moved the assignment between shards.
    assert len(manager.handoffs) == 1
    handoff = manager.handoffs[0]
    assert handoff.assignment_id == assignment.assignment_id
    assert handoff.from_shard != handoff.to_shard
    assert handoff.from_station == "station-1" and handoff.to_station == "station-2"
    source, target = manager.shards[handoff.from_shard], manager.shards[handoff.to_shard]
    assert assignment.assignment_id in target.assignments
    assert assignment.assignment_id not in source.assignments
    assert assignment.assignment_id in target.scheduler.tracked()
    assert assignment.assignment_id not in source.scheduler.tracked()

    # The new shard's station hosts the running chain...
    new_deployment = testbed.agents["station-2"].deployment_for_client(client.ip)
    assert new_deployment is not None
    assert all(d.container.is_running for d in new_deployment.deployed_nfs)
    testbed.run(5.0)
    # ...and the old shard's station tore everything down: no deployment, and
    # the telemetry it reports upstream (heartbeat switch stats + fast path)
    # shows the steering rules gone and the cached verdicts flushed.
    assert testbed.agents["station-1"].deployment_for_client(client.ip) is None
    old_switch = testbed.topology.stations["station-1"].switch
    assert old_switch.flow_table.rules(cookie=f"chain:{assignment.assignment_id}") == []
    reported = manager.last_heartbeat["station-1"]
    # The client's association rule left with the client, so the reported
    # rule count drops to (or below) the pre-attach baseline.
    assert reported.switch["flow_rules"] <= baseline_rules
    old_fastpath = old_switch.flow_cache.stats()
    assert old_fastpath["entries"] == 0
    assert old_fastpath["invalidations"] + old_fastpath["flushes"] > 0
    assert manager.overview()["cross_shard_handoffs"] == 1


def test_single_manager_ignores_station_change_hook():
    # The hook the roaming coordinator fires must be a no-op on a plain
    # GNFManager (the unsharded deployment).
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy="cold"))
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    assignment = testbed.manager.attach_nf(client.ip, "firewall")
    testbed.run(6.0)
    LinearMobility(testbed.simulator, client, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    testbed.run(40.0)
    assert assignment.station_name == "station-2"
    assert assignment.assignment_id in testbed.manager.assignments


# ---------------------------------------------------------------------------
# Digest invariance (the E10 acceptance criterion, tier-1 subset)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["fig2-roaming", "commuter-rush"])
def test_scenario_digest_is_shard_count_invariant(name):
    unsharded = run_scenario(name, seed=11, shard_count=1)
    sharded = run_scenario(name, seed=11, shard_count=4)
    assert unsharded.drained and sharded.drained
    assert unsharded.digest == sharded.digest, unsharded.digest.diff(sharded.digest)
    # And the sharded run really was sharded, with cross-shard traffic.
    manager = sharded.testbed.manager
    assert isinstance(manager, ShardedManager)
    assert manager.bus.stats()["coalescing_ratio"] > 1.0
    assert len(manager.handoffs) >= 1
