"""Unit tests for the wireless substrate: radio, cells, clients, mobility and
handover."""

from __future__ import annotations

import pytest

from repro.netem import packet as pkt
from repro.netem.simulator import Simulator
from repro.netem.topology import EdgeTopology, TopologyConfig
from repro.wireless.cell import Cell
from repro.wireless.client import MobileClient
from repro.wireless.handover import HandoverManager
from repro.wireless.mobility import (
    CommuterMobility,
    LinearMobility,
    RandomWaypointMobility,
    StaticMobility,
    TraceMobility,
)
from repro.wireless.radio import RadioEnvironment, distance_m


# --------------------------------------------------------------------------
# Radio model
# --------------------------------------------------------------------------


def test_distance():
    assert distance_m((0, 0), (3, 4)) == pytest.approx(5.0)


def test_rssi_decreases_with_distance():
    radio = RadioEnvironment()
    near = radio.rssi_dbm(20.0, 5.0)
    far = radio.rssi_dbm(20.0, 100.0)
    assert near > far


def test_rssi_clamps_below_reference_distance():
    radio = RadioEnvironment()
    assert radio.rssi_dbm(20.0, 0.0) == radio.rssi_dbm(20.0, radio.reference_distance_m)


def test_in_range_and_max_range_consistent():
    radio = RadioEnvironment()
    max_range = radio.max_range_m(20.0, sensitivity_dbm=-85.0)
    assert radio.in_range(20.0, (0, 0), (max_range * 0.9, 0))
    assert not radio.in_range(20.0, (0, 0), (max_range * 1.5, 0))


def test_link_rate_steps_monotonic():
    radio = RadioEnvironment()
    rates = [radio.link_rate_bps(rssi) for rssi in (-50, -60, -70, -80, -90, -120)]
    assert rates == sorted(rates, reverse=True)
    assert rates[-1] == 0.0


def test_link_rate_zero_exactly_when_unreachable():
    """Regression: the lowest rate step used to extend below the receiver
    sensitivity, serving 6 Mbit/s to clients ``in_range`` called unreachable."""
    radio = RadioEnvironment()
    max_range = radio.max_range_m(20.0)
    for fraction in (0.5, 0.95, 1.05, 2.0):
        position = (max_range * fraction, 0.0)
        reachable = radio.in_range(20.0, (0, 0), position)
        rate = radio.link_rate_bps(radio.rssi_between(20.0, (0, 0), position))
        assert reachable == (rate > 0.0), (fraction, reachable, rate)


def test_sensitivity_threshold_is_configurable_and_shared():
    strict = RadioEnvironment(sensitivity_dbm=-70.0)
    default = RadioEnvironment()
    # One knob governs both reachability and the rate floor.
    assert strict.link_rate_bps(-72.0) == 0.0
    assert default.link_rate_bps(-72.0) > 0.0
    assert strict.max_range_m(20.0) < default.max_range_m(20.0)


# --------------------------------------------------------------------------
# Mobility models
# --------------------------------------------------------------------------


def make_client(simulator, position=(0.0, 0.0)):
    return MobileClient(simulator, "phone", ip="10.10.0.5", mac="02:00:00:00:01:01", position=position)


def test_static_mobility_never_moves(simulator):
    client = make_client(simulator)
    StaticMobility(simulator, client).start()
    simulator.run(until=5.0)
    assert client.position == (0.0, 0.0)


def test_linear_mobility_moves_and_stops_at_destination(simulator):
    client = make_client(simulator)
    model = LinearMobility(simulator, client, velocity_mps=(10.0, 0.0), destination=(50.0, 0.0))
    model.start()
    simulator.run(until=20.0)
    assert client.position == (50.0, 0.0)
    assert model.arrived
    assert model.distance_travelled_m == pytest.approx(50.0, rel=0.05)


def test_linear_mobility_without_destination_keeps_going(simulator):
    client = make_client(simulator)
    LinearMobility(simulator, client, velocity_mps=(1.0, 1.0)).start()
    simulator.run(until=10.0)
    assert client.position[0] == pytest.approx(10.0, rel=0.05)
    assert client.position[1] == pytest.approx(10.0, rel=0.05)


def test_random_waypoint_stays_inside_area(simulator):
    client = make_client(simulator, position=(50.0, 50.0))
    model = RandomWaypointMobility(simulator, client, area=(0, 0, 100, 100), speed_mps=(5.0, 10.0), seed=1)
    model.start()
    positions = []
    simulator.every(1.0, lambda: positions.append(client.position))
    simulator.run(until=60.0)
    assert all(0 <= x <= 100 and 0 <= y <= 100 for x, y in positions)
    assert model.waypoints_visited > 0


def test_trace_mobility_interpolates(simulator):
    client = make_client(simulator)
    TraceMobility(simulator, client, trace=[(0.0, 0.0, 0.0), (10.0, 100.0, 0.0)]).start()
    simulator.run(until=5.0)
    assert client.position[0] == pytest.approx(50.0, abs=2.0)
    simulator.run(until=20.0)
    assert client.position == (100.0, 0.0)


def test_trace_mobility_requires_waypoints(simulator):
    client = make_client(simulator)
    with pytest.raises(ValueError):
        TraceMobility(simulator, client, trace=[])


def test_commuter_mobility_oscillates(simulator):
    client = make_client(simulator)
    model = CommuterMobility(
        simulator, client, anchor_a=(0.0, 0.0), anchor_b=(20.0, 0.0), speed_mps=10.0, dwell_s=1.0
    )
    model.start()
    simulator.run(until=30.0)
    assert model.trips_completed >= 4


def test_mobility_stop_freezes_position(simulator):
    client = make_client(simulator)
    model = LinearMobility(simulator, client, velocity_mps=(10.0, 0.0))
    model.start()
    simulator.run(until=2.0)
    model.stop()
    frozen = client.position
    simulator.schedule(10.0, lambda: None)
    simulator.run()
    assert client.position == frozen


def test_mobility_invalid_tick(simulator):
    client = make_client(simulator)
    with pytest.raises(ValueError):
        StaticMobility(simulator, client, tick_s=0)


# --------------------------------------------------------------------------
# Cells and clients
# --------------------------------------------------------------------------


def build_cell(simulator, topology, station="station-1", position=(0.0, 0.0), name="cell-a"):
    cell = Cell(
        simulator,
        name=name,
        station_name=station,
        position=position,
        mac=topology.addresses.allocate_mac(),
    )
    topology.connect_cell(cell, station, cell.wired_interface)
    return cell


def test_cell_association_creates_radio_link_and_fires_listeners(simulator, topology):
    cell = build_cell(simulator, topology)
    client = make_client(simulator)
    events = []
    cell.on_association(lambda c, ce: events.append(("assoc", c.name)))
    cell.on_disassociation(lambda c, ce: events.append(("disassoc", c.name)))
    cell.associate(client, topology.addresses.allocate_mac)
    assert client.is_connected
    assert client.current_cell_name == "cell-a"
    assert cell.is_associated("phone")
    cell.disassociate(client)
    assert not client.is_connected
    assert events == [("assoc", "phone"), ("disassoc", "phone")]


def test_cell_double_association_is_idempotent(simulator, topology):
    cell = build_cell(simulator, topology)
    client = make_client(simulator)
    cell.associate(client, topology.addresses.allocate_mac)
    cell.associate(client, topology.addresses.allocate_mac)
    assert cell.associated_clients == ["phone"]


def test_client_cannot_send_while_disconnected(simulator):
    client = make_client(simulator)
    sent = client.send_packet(pkt.make_udp_packet(client.ip, "10.30.0.2", 1, 2))
    assert not sent
    assert client.packets_sent_while_disconnected == 1


def test_client_traffic_reaches_server_through_cell(simulator, topology):
    cell = build_cell(simulator, topology)
    client = make_client(simulator)
    cell.associate(client, topology.addresses.allocate_mac)
    station = topology.station("station-1")
    station.register_client(client.ip, cell.name)
    topology.register_client(client.ip, client.mac, "station-1")
    client.gateway_mac = topology.gateway_mac_for["station-1"]

    received = []
    client.add_receive_listener(received.append)
    client.send_packet(pkt.make_udp_packet(client.ip, topology.any_server_ip(), 4000, 9000, payload_bytes=64))
    simulator.run()
    assert topology.server("server-1").udp_packets_echoed == 1
    assert len(received) == 1
    assert client.packets_received == 1


def test_client_ignores_traffic_for_other_destinations(simulator, topology):
    cell = build_cell(simulator, topology)
    client = make_client(simulator)
    cell.associate(client, topology.addresses.allocate_mac)
    foreign = pkt.make_udp_packet("10.30.0.2", "10.10.99.99", 1, 2)
    client.radio_interface.deliver(foreign)
    assert client.packets_received == 0


def test_cell_drops_downstream_for_unknown_client(simulator, topology):
    cell = build_cell(simulator, topology)
    packet = pkt.make_udp_packet("10.30.0.2", "10.10.0.99", 1, 2)
    cell.wired_interface.deliver(packet)
    assert cell.frames_dropped == 1


def test_cell_summary_counts(simulator, topology):
    cell = build_cell(simulator, topology)
    client = make_client(simulator)
    cell.associate(client, topology.addresses.allocate_mac)
    assert cell.summary()["associated_clients"] == 1


# --------------------------------------------------------------------------
# Handover
# --------------------------------------------------------------------------


def two_cell_setup(simulator):
    topology = EdgeTopology(simulator, TopologyConfig(station_count=2))
    cell_a = build_cell(simulator, topology, station="station-1", position=(0.0, 0.0), name="cell-a")
    cell_b = build_cell(simulator, topology, station="station-2", position=(80.0, 0.0), name="cell-b")
    manager = HandoverManager(simulator, topology, scan_interval_s=0.5, handover_delay_s=0.05)
    manager.add_cell(cell_a)
    manager.add_cell(cell_b)
    return topology, cell_a, cell_b, manager


def test_initial_association_picks_strongest_cell(simulator):
    topology, cell_a, cell_b, manager = two_cell_setup(simulator)
    client = make_client(simulator, position=(5.0, 0.0))
    manager.add_client(client)
    manager.start()
    simulator.run(until=1.0)
    assert client.current_cell_name == "cell-a"
    assert topology.gateway.client_locations[client.ip] == "station-1"
    assert topology.station("station-1").associated_client_rules() == [f"assoc:{client.ip}"]


def test_no_association_when_out_of_range(simulator):
    topology, cell_a, cell_b, manager = two_cell_setup(simulator)
    client = make_client(simulator, position=(5000.0, 5000.0))
    manager.add_client(client)
    manager.start()
    simulator.run(until=2.0)
    assert not client.is_connected


def test_handover_when_client_moves(simulator):
    topology, cell_a, cell_b, manager = two_cell_setup(simulator)
    client = make_client(simulator, position=(0.0, 0.0))
    manager.add_client(client)
    manager.start()
    LinearMobility(simulator, client, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    simulator.run(until=30.0)
    assert client.current_cell_name == "cell-b"
    assert manager.handover_count("phone") == 1
    event = manager.events[0]
    assert event.old_cell == "cell-a"
    assert event.new_cell == "cell-b"
    assert event.interruption_s == pytest.approx(0.05, abs=0.02)
    # The anchor and the association rules followed the client.
    assert topology.gateway.client_locations[client.ip] == "station-2"
    assert topology.station("station-1").associated_client_rules() == []
    assert topology.station("station-2").associated_client_rules() == [f"assoc:{client.ip}"]


def test_hysteresis_prevents_ping_pong(simulator):
    topology, cell_a, cell_b, manager = two_cell_setup(simulator)
    manager.hysteresis_db = 10.0
    # Exactly halfway: both cells have equal RSSI, so no handover should occur.
    client = make_client(simulator, position=(40.0, 0.0))
    manager.add_client(client)
    manager.start()
    simulator.run(until=10.0)
    assert manager.handover_count() == 0


def test_handover_listeners_fire_in_order(simulator):
    topology, cell_a, cell_b, manager = two_cell_setup(simulator)
    client = make_client(simulator, position=(0.0, 0.0))
    manager.add_client(client)
    events = []
    manager.on_handover_started(lambda event: events.append("started"))
    manager.on_handover_completed(lambda event: events.append("completed"))
    manager.start()
    LinearMobility(simulator, client, velocity_mps=(20.0, 0.0), destination=(80.0, 0.0)).start()
    simulator.run(until=20.0)
    assert events == ["started", "completed"]


def test_handover_summary(simulator):
    topology, cell_a, cell_b, manager = two_cell_setup(simulator)
    client = make_client(simulator, position=(0.0, 0.0))
    manager.add_client(client)
    manager.start()
    LinearMobility(simulator, client, velocity_mps=(20.0, 0.0), destination=(80.0, 0.0)).start()
    simulator.run(until=20.0)
    summary = manager.summary()
    assert summary["handovers"] == summary["handovers_completed"] == 1
    assert summary["mean_interruption_s"] > 0
    manager.stop()


def test_client_stats_and_history(simulator):
    topology, cell_a, cell_b, manager = two_cell_setup(simulator)
    client = make_client(simulator, position=(0.0, 0.0))
    manager.add_client(client)
    manager.start()
    LinearMobility(simulator, client, velocity_mps=(20.0, 0.0), destination=(80.0, 0.0)).start()
    simulator.run(until=20.0)
    stats = client.stats()
    assert stats["handovers"] == 1
    assert [name for _, name in client.association_history] == ["cell-a", "cell-b"]


def test_best_cell_tie_breaks_by_name_not_insertion_order():
    """Regression: two equidistant cells used to resolve by registration
    order, so cell-build order leaked into association (and digests)."""
    histories = []
    for order in (("cell-a", "cell-b"), ("cell-b", "cell-a")):
        simulator = Simulator()
        topology = EdgeTopology(simulator, TopologyConfig(station_count=2))
        cells = {
            "cell-a": build_cell(simulator, topology, station="station-1", position=(0.0, 0.0), name="cell-a"),
            "cell-b": build_cell(simulator, topology, station="station-2", position=(80.0, 0.0), name="cell-b"),
        }
        manager = HandoverManager(simulator, topology, scan_interval_s=0.5, handover_delay_s=0.05)
        for name in order:
            manager.add_cell(cells[name])
        client = make_client(simulator, position=(40.0, 0.0))  # exact RSSI tie
        manager.add_client(client)
        assert cells["cell-a"].rssi_to(client.position) == cells["cell-b"].rssi_to(client.position)
        assert manager.best_cell_for(client).name == "cell-a"
        manager.start()
        simulator.run(until=2.0)
        histories.append([name for _, name in client.association_history])
    assert histories[0] == histories[1] == ["cell-a"]


def test_station_link_rates_reflects_radio_quality(simulator):
    topology, cell_a, cell_b, manager = two_cell_setup(simulator)
    client = make_client(simulator, position=(5.0, 0.0))
    manager.add_client(client)
    rates = manager.station_link_rates(client.ip)
    assert set(rates) == {"station-1", "station-2"}
    assert rates["station-1"] > rates["station-2"] > 0.0
    # Unknown clients yield nothing; unreachable clients yield rate 0.
    assert manager.station_link_rates("10.99.99.99") == {}
    client.position = (5000.0, 5000.0)
    assert set(manager.station_link_rates(client.ip).values()) == {0.0}
