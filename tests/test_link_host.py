"""Unit tests for links, interfaces, hosts, veth pairs and the core server."""

from __future__ import annotations

import pytest

from repro.netem import packet as pkt
from repro.netem.host import Host, Interface, Server, VethPair
from repro.netem.link import Link
from repro.netem.simulator import Simulator


class RecordingHost(Host):
    """Test helper that records every packet it receives."""

    def __init__(self, simulator, name):
        super().__init__(simulator, name)
        self.received = []

    def handle_packet(self, packet, interface):
        self.received.append((packet, interface.name, self.simulator.now))


def make_pair(simulator, bandwidth=1e9, delay=0.001, loss=0.0, queue=1000):
    a_host = RecordingHost(simulator, "host-a")
    b_host = RecordingHost(simulator, "host-b")
    a_iface = Interface("a-eth0", mac="02:00:00:00:00:01", ip="10.0.0.1")
    b_iface = Interface("b-eth0", mac="02:00:00:00:00:02", ip="10.0.0.2")
    a_host.add_interface(a_iface)
    b_host.add_interface(b_iface)
    link = Link(simulator, bandwidth_bps=bandwidth, delay_s=delay, loss_rate=loss, max_queue_packets=queue)
    link.attach(a_iface, b_iface)
    return a_host, b_host, link


def test_link_delivers_packet_to_peer(simulator):
    a, b, link = make_pair(simulator)
    packet = pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload_bytes=100)
    a.send(packet)
    simulator.run()
    assert len(b.received) == 1
    assert b.received[0][0] is packet


def test_link_latency_includes_serialization_and_propagation(simulator):
    a, b, link = make_pair(simulator, bandwidth=1e6, delay=0.01)
    packet = pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload_bytes=1000)
    expected = packet.size_bytes * 8 / 1e6 + 0.01
    a.send(packet)
    simulator.run()
    assert b.received[0][2] == pytest.approx(expected)


def test_back_to_back_packets_queue_behind_each_other(simulator):
    a, b, link = make_pair(simulator, bandwidth=1e6, delay=0.0)
    p1 = pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload_bytes=1000)
    p2 = pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload_bytes=1000)
    a.send(p1)
    a.send(p2)
    simulator.run()
    t1 = b.received[0][2]
    t2 = b.received[1][2]
    assert t2 == pytest.approx(2 * t1)


def test_link_down_drops_packets(simulator):
    a, b, link = make_pair(simulator)
    link.set_up(False)
    accepted = a.primary_interface.send(pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2))
    simulator.run()
    assert not accepted
    assert b.received == []
    assert link.total_stats.dropped_packets == 1


def test_full_queue_drops_packets(simulator):
    a, b, link = make_pair(simulator, bandwidth=1e3, queue=2)
    for _ in range(5):
        a.send(pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload_bytes=500))
    simulator.run()
    assert len(b.received) == 2
    assert link.total_stats.dropped_packets == 3


def test_lossy_link_drops_a_fraction(simulator):
    a, b, link = make_pair(simulator, loss=0.5)
    for _ in range(200):
        a.send(pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2))
    simulator.run()
    assert 40 < len(b.received) < 160
    assert link.total_stats.dropped_packets + len(b.received) == 200


def test_link_stats_track_bytes(simulator):
    a, b, link = make_pair(simulator)
    packet = pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload_bytes=200)
    a.send(packet)
    simulator.run()
    stats = link.stats(a.primary_interface)
    assert stats.tx_packets == 1
    assert stats.tx_bytes == packet.size_bytes


def test_link_is_full_duplex(simulator):
    a, b, link = make_pair(simulator)
    a.send(pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2))
    b.send(pkt.make_udp_packet("10.0.0.2", "10.0.0.1", 2, 1))
    simulator.run()
    assert len(a.received) == 1
    assert len(b.received) == 1


def test_link_invalid_parameters(simulator):
    with pytest.raises(ValueError):
        Link(simulator, bandwidth_bps=0)
    with pytest.raises(ValueError):
        Link(simulator, delay_s=-1)
    with pytest.raises(ValueError):
        Link(simulator, loss_rate=1.5)


def test_link_double_attach_rejected(simulator):
    a, b, link = make_pair(simulator)
    with pytest.raises(RuntimeError):
        link.attach(a.primary_interface, b.primary_interface)


def test_peer_of_unknown_interface_rejected(simulator):
    a, b, link = make_pair(simulator)
    stranger = Interface("x", mac="02:00:00:00:00:99")
    with pytest.raises(ValueError):
        link.peer_of(stranger)


def test_host_duplicate_interface_name_rejected(simulator):
    host = Host(simulator, "h")
    host.add_interface(Interface("eth0", mac="02:00:00:00:00:01"))
    with pytest.raises(ValueError):
        host.add_interface(Interface("eth0", mac="02:00:00:00:00:02"))


def test_host_primary_interface_requires_one(simulator):
    host = Host(simulator, "empty")
    with pytest.raises(RuntimeError):
        _ = host.primary_interface
    assert host.ip is None


def test_interface_down_refuses_traffic(simulator):
    a, b, link = make_pair(simulator)
    b.primary_interface.up = False
    a.send(pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2))
    simulator.run()
    assert b.received == []


def test_packet_handler_override(simulator):
    host = Host(simulator, "h")
    iface = host.add_interface(Interface("eth0", mac="02:00:00:00:00:01"))
    seen = []
    host.packet_handler = lambda packet, interface: seen.append(packet)
    iface.deliver(pkt.make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2))
    assert len(seen) == 1


def test_veth_pair_crosses_between_ends(simulator):
    pair = VethPair(simulator, "veth0", "02:aa:00:00:00:01", "02:aa:00:00:00:02")
    seen = []
    pair.end_b.delivery_override = lambda packet, iface: seen.append(packet)
    pair.end_a.send(pkt.make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2))
    simulator.run()
    assert len(seen) == 1


def test_veth_pair_with_crossing_delay(simulator):
    pair = VethPair(simulator, "veth1", "02:aa:00:00:00:03", "02:aa:00:00:00:04", crossing_delay_s=0.01)
    times = []
    pair.end_b.delivery_override = lambda packet, iface: times.append(simulator.now)
    pair.end_a.send(pkt.make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2))
    simulator.run()
    assert times == [pytest.approx(0.01)]


def _connect_server(simulator, server):
    client = RecordingHost(simulator, "probe")
    client_iface = client.add_interface(Interface("probe-eth0", mac="02:00:00:00:01:01", ip="10.0.0.1"))
    server_iface = server.add_interface(Interface("srv-eth0", mac="02:00:00:00:01:02", ip="10.0.0.9"))
    link = Link(simulator, bandwidth_bps=1e9, delay_s=0.001)
    link.attach(client_iface, server_iface)
    return client


def test_server_answers_http_requests(simulator):
    server = Server(simulator, "web", http_body_bytes=2048)
    client = _connect_server(simulator, server)
    client.send(pkt.make_http_request("10.0.0.1", "10.0.0.9", host="example.com"))
    simulator.run()
    assert server.requests_served == 1
    response = client.received[0][0]
    assert isinstance(response.app, pkt.HTTPResponse)
    assert response.app.body_bytes == 2048


def test_server_answers_dns_from_zone(simulator):
    server = Server(simulator, "dns", dns_zone={"cdn.example.com": ["9.9.9.9"]})
    client = _connect_server(simulator, server)
    client.send(pkt.make_dns_query("10.0.0.1", "10.0.0.9", name="cdn.example.com"))
    simulator.run()
    response = client.received[0][0]
    assert response.app.addresses == ("9.9.9.9",)


def test_server_echoes_udp_and_icmp(simulator):
    server = Server(simulator, "echo")
    client = _connect_server(simulator, server)
    client.send(pkt.make_udp_packet("10.0.0.1", "10.0.0.9", 4000, 9000, payload_bytes=64))
    client.send(pkt.make_icmp_echo("10.0.0.1", "10.0.0.9"))
    simulator.run()
    assert server.udp_packets_echoed == 1
    assert server.icmp_echoes_served == 1
    assert len(client.received) == 2


def test_server_ignores_traffic_for_other_destinations(simulator):
    server = Server(simulator, "web")
    client = _connect_server(simulator, server)
    client.send(pkt.make_http_request("10.0.0.1", "10.0.0.200", host="example.com"))
    simulator.run()
    assert server.requests_served == 0
    assert client.received == []
