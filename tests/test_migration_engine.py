"""Tests for the link-aware MigrationEngine.

Covers the regression fixes this subsystem shipped with:

* captured NF state and speculative replicas never leak -- not across a
  100-roam soak, not on detach, not when the client bounces back to its
  home station, and not after any canned scenario drains;
* a pre-copy fallback that finds its replica still booting *adopts* it
  instead of tearing it down and double-deploying the same chain id;
* state transfers ride the simulated links (gateway-routed chunks, RTT +
  bandwidth sharing observable) and the analytic RTT formula stays pinned;
* the canned ``fig2-roaming`` / ``chaos-soak`` digests replay identically
  per strategy and shard count.
"""

from __future__ import annotations

import pytest

from repro.containers.checkpoint import Checkpoint
from repro.core.api import ClientEvent
from repro.core.chain import ServiceChain
from repro.core.manager import AssignmentState
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import CBRTrafficGenerator
from repro.scenarios import ScenarioRunner, build_scenario, run_scenario
from repro.wireless.mobility import LinearMobility

CLIENT_IP = "10.10.99.1"


def _event(testbed: GNFTestbed, station: str, kind: str, ip: str = CLIENT_IP) -> ClientEvent:
    """A synthetic Agent-reported client (dis)connection."""
    return ClientEvent(
        station_name=station,
        client_ip=ip,
        client_name="phone",
        cell_name=f"{station}-cell1",
        event=kind,
        time=testbed.simulator.now,
    )


def _pinned_assignment(testbed: GNFTestbed, chain: ServiceChain = None):
    """Attach a chain for a synthetic client pinned at station-1."""
    testbed.start()
    testbed.run(0.5)
    assignment = testbed.manager.attach_chain(
        CLIENT_IP, chain or ServiceChain.of("firewall"), station_name="station-1"
    )
    testbed.run(5.0)
    assert assignment.state is AssignmentState.ACTIVE
    return assignment


def _wait_active(testbed: GNFTestbed, assignment, budget_s: float = 30.0) -> None:
    waited = 0.0
    while assignment.state is not AssignmentState.ACTIVE and waited < budget_s:
        testbed.run(1.0)
        waited += 1.0
    assert assignment.state is AssignmentState.ACTIVE, assignment.state


# ---------------------------------------------------------------------------
# The RTT formula (analytic model, still pinned by a unit test)
# ---------------------------------------------------------------------------


def test_checkpoint_transfer_time_pins_rtt_and_bandwidth():
    checkpoint = Checkpoint(
        container_name="c1", image_reference="img", created_at=0.0, memory_mb=10.0
    )
    bandwidth = 50e6
    serialization = checkpoint.size_mb * 8 * 1_000_000 / bandwidth
    assert checkpoint.transfer_time_s(bandwidth, rtt_s=0.03) == pytest.approx(0.03 + serialization)
    # RTT defaults to zero: pure serialization.
    assert checkpoint.transfer_time_s(bandwidth) == pytest.approx(serialization)
    with pytest.raises(ValueError):
        checkpoint.transfer_time_s(0.0)


def test_engine_estimate_includes_path_rtt():
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    transfers = testbed.roaming.engine.transfers
    size_bytes = 1_000_000
    rtt = 2 * testbed.topology.station_to_station_latency("station-1", "station-2")
    expected = rtt + size_bytes * 8 / testbed.config.uplink_bandwidth_bps
    assert transfers.estimate_transfer_time("station-1", "station-2", size_bytes) == pytest.approx(
        expected
    )


# ---------------------------------------------------------------------------
# Leak regressions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["stateful", "precopy"])
def test_soak_100_roams_keeps_ledgers_bounded(strategy):
    """Regression: captured state (and replicas) used to accumulate forever."""
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy=strategy))
    assignment = _pinned_assignment(testbed)
    for _ in range(100):
        old = assignment.station_name
        new = "station-2" if old == "station-1" else "station-1"
        testbed.manager.receive_client_event(_event(testbed, old, "disconnected"))
        testbed.run(0.3)
        testbed.manager.receive_client_event(_event(testbed, new, "connected"))
        testbed.run(2.2)
        _wait_active(testbed, assignment)
    coordinator = testbed.roaming
    assert len(coordinator.records) == 100
    assert all(record.success for record in coordinator.records)
    assert assignment.migrations == 100
    # The ledgers are bounded: everything staged per-roam was consumed.
    assert coordinator._captured_state == {}
    assert coordinator._speculative == {}
    # Exactly one station still hosts the chain.
    hosts = [
        name for name, agent in testbed.agents.items() if agent.deployment_for_client(CLIENT_IP)
    ]
    assert hosts == [assignment.station_name]


def test_detach_releases_captured_state_and_replicas():
    testbed = GNFTestbed(TestbedConfig(station_count=3, migration_strategy="precopy"))
    assignment = _pinned_assignment(testbed)
    coordinator = testbed.roaming
    testbed.manager.receive_client_event(_event(testbed, "station-1", "disconnected"))
    testbed.run(0.2)
    assert coordinator._captured_state  # exported at disconnect
    assert coordinator._speculative  # replicas booting on candidates
    testbed.manager.detach(assignment.assignment_id)
    testbed.run(5.0)
    assert coordinator._captured_state == {}
    assert coordinator._speculative == {}
    for agent in testbed.agents.values():
        assert agent.deployment_for_client(CLIENT_IP) is None
        leftovers = [
            container
            for container in agent.runtime.containers.values()
            if container.labels.get("assignment") == assignment.assignment_id
            and container.is_running
        ]
        assert leftovers == []


def test_detach_racing_migration_does_not_resurrect_assignment():
    """A detach landing while a migration deploy is in flight must win: the
    assignment stays REMOVED and the freshly deployed chain is torn down."""
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy="cold"))
    assignment = _pinned_assignment(testbed)
    testbed.manager.receive_client_event(_event(testbed, "station-1", "disconnected"))
    testbed.run(0.1)
    testbed.manager.receive_client_event(_event(testbed, "station-2", "connected"))
    testbed.run(0.1)  # migration deploy dispatched, nowhere near finished
    assert assignment.state is AssignmentState.MIGRATING
    testbed.manager.detach(assignment.assignment_id)
    testbed.run(15.0)
    assert assignment.state is AssignmentState.REMOVED
    assert assignment.migrations == 0
    record = testbed.roaming.records[0]
    assert not record.success
    assert "detached mid-migration" in record.detail
    for agent in testbed.agents.values():
        assert agent.deployment_for_client(CLIENT_IP) is None


def test_same_station_reconnect_drops_staged_state():
    """A client bouncing back to its home station must not leak replicas."""
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy="precopy"))
    assignment = _pinned_assignment(testbed)
    coordinator = testbed.roaming
    testbed.manager.receive_client_event(_event(testbed, "station-1", "disconnected"))
    testbed.run(3.0)  # replica fully booted on station-2, state captured
    assert coordinator._captured_state and coordinator._speculative
    testbed.manager.receive_client_event(_event(testbed, "station-1", "connected"))
    testbed.run(3.0)
    assert coordinator._captured_state == {}
    assert coordinator._speculative == {}
    assert coordinator.records == []  # nothing migrated
    assert assignment.station_name == "station-1"
    assert testbed.agents["station-2"].deployment_for_client(CLIENT_IP) is None


# ---------------------------------------------------------------------------
# Pre-copy fallback: adopt the still-booting replica
# ---------------------------------------------------------------------------


def test_precopy_adopts_still_booting_replica():
    """Regression: the fallback used to tear the booting replica down and
    cold-deploy the same chain id on the same station in the same tick."""
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy="precopy"))
    assignment = _pinned_assignment(testbed)
    testbed.manager.receive_client_event(_event(testbed, "station-1", "disconnected"))
    testbed.run(0.05)  # speculative replica started, nowhere near booted
    testbed.manager.receive_client_event(_event(testbed, "station-2", "connected"))
    _wait_active(testbed, assignment)
    testbed.run(2.0)
    record = testbed.roaming.records[0]
    assert record.success
    assert "adopted still-booting replica" in record.detail
    agent2 = testbed.agents["station-2"]
    deployment = agent2.deployment_for_client(CLIENT_IP)
    assert deployment is not None
    # Exactly one chain's worth of containers and steering rules exists: the
    # old double-deploy left a second container and duplicate rules behind.
    running = [
        container
        for container in agent2.runtime.containers.values()
        if container.labels.get("assignment") == assignment.assignment_id and container.is_running
    ]
    assert len(running) == len(assignment.chain)
    cookie = f"chain:{assignment.assignment_id}"
    rules = agent2.station.switch.flow_table.rules(cookie=cookie)
    # 1-NF chain on a 1-cell station: cell entry + uplink continuation +
    # downstream entry = 3 rules; 6 would mean the double-deploy is back.
    assert len(rules) == 3


def test_cancelled_boot_rolls_back_containers():
    """remove_chain on an in-flight deployment cancels the boot cleanly."""
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    testbed.start()
    testbed.run(0.5)
    agent = testbed.agents["station-2"]
    results = []
    agent.deploy_chain(
        "asg-cancel",
        CLIENT_IP,
        ServiceChain.of("firewall", "http-filter"),
        None,
        None,
        lambda deployment, success, detail: results.append((success, detail)),
    )
    testbed.run(0.01)  # image pull / first boot still in flight
    agent.remove_chain("asg-cancel")
    testbed.run(10.0)
    assert results and results[0][0] is False
    assert "cancelled" in results[0][1]
    assert agent.deployments.get("asg-cancel") is None
    leftovers = [
        container
        for container in agent.runtime.containers.values()
        if container.labels.get("assignment") == "asg-cancel" and container.is_running
    ]
    assert leftovers == []
    assert agent.station.switch.flow_table.rules(cookie="chain:asg-cancel") == []


# ---------------------------------------------------------------------------
# Link-routed transfers: RTT + bandwidth sharing observable
# ---------------------------------------------------------------------------


def _mobility_roam(strategy: str, loaded: bool = False):
    """A real radio-handover roam from station-1 to station-2."""
    testbed = GNFTestbed(
        TestbedConfig(station_count=2, migration_strategy=strategy, uplink_bandwidth_bps=30e6)
    )
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    generators = []
    if loaded:
        for index, x in enumerate((2.0, 4.0, 78.0, 76.0)):
            background = testbed.add_client(f"bg-{index}", position=(x, 3.0))
            generators.append(
                CBRTrafficGenerator(
                    testbed.simulator,
                    background,
                    server_ip=testbed.server_ip,
                    rate_pps=250,
                    payload_bytes=1300,
                    src_port=41_000 + index,
                )
            )
    testbed.start()
    testbed.run(1.0)
    assignment = testbed.manager.attach_chain(phone.ip, ServiceChain.of("firewall", "http-filter"))
    testbed.run(6.0)
    for generator in generators:
        generator.start()
    LinearMobility(
        testbed.simulator, phone, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)
    ).start()
    testbed.run(45.0)
    for generator in generators:
        generator.stop()
    record = testbed.roaming.records[0]
    assert record.success, (strategy, loaded)
    return testbed, record


def test_stateful_transfer_rides_the_links():
    testbed, record = _mobility_roam("stateful")
    assert record.state_transferred_mb > 0
    assert record.bytes_moved > 0
    # The chunks crossed the gateway like any other backhaul traffic.
    assert testbed.topology.gateway.state_chunks_routed > 0
    engine = testbed.roaming.engine
    assert engine.transfers.transfers_completed >= 1
    counters = engine.transfers.station_counters
    assert counters["station-1"]["state_bytes_sent"] > 0
    assert counters["station-2"]["state_bytes_received"] > 0
    # The per-station collectors publish the same counters.
    latest = testbed.agents["station-2"].collector.sample_once()
    assert latest["migration.state_bytes_received"] > 0
    summary = testbed.roaming.summary()
    assert summary["transfer_state_bytes_received"] > 0


def test_loaded_backhaul_stretches_stateful_migration():
    """Bandwidth sharing is real: client traffic slows the state transfer."""
    _, idle = _mobility_roam("stateful", loaded=False)
    _, loaded = _mobility_roam("stateful", loaded=True)
    assert loaded.downtime_s > idle.downtime_s
    assert loaded.bytes_moved == pytest.approx(idle.bytes_moved, rel=0.2)


def test_precopy_downtime_beats_stateful_under_load():
    _, stateful = _mobility_roam("stateful", loaded=True)
    _, precopy = _mobility_roam("precopy", loaded=True)
    assert precopy.downtime_s < stateful.downtime_s


def test_precopy_runs_iterative_rounds_for_large_state():
    """Big dirty state forces shrinking delta rounds before the freeze."""
    testbed = GNFTestbed(
        TestbedConfig(
            station_count=2,
            migration_strategy="precopy",
            precopy_max_rounds=4,
            precopy_downtime_target_s=0.05,
            precopy_dirty_fraction=0.25,
        )
    )
    assignment = _pinned_assignment(testbed)
    coordinator = testbed.roaming
    testbed.manager.receive_client_event(_event(testbed, "station-1", "disconnected"))
    testbed.run(4.0)  # replica fully booted on station-2
    # Model a chain with ~4 MB of hot state: at 100 Mbit/s the first dirty
    # delta (25%) cannot fit inside the 50 ms downtime target, so the engine
    # must run intermediate rounds before freezing.
    coordinator._captured_state[assignment.assignment_id] = [{"blob": "x" * 4_000_000}]
    testbed.manager.receive_client_event(_event(testbed, "station-2", "connected"))
    _wait_active(testbed, assignment)
    record = testbed.roaming.records[0]
    assert record.success
    assert record.rounds >= 2
    # Every round moved bytes: more than one full-size copy ended up on the
    # wire, but the freeze window only paid for the final (smallest) delta.
    assert record.bytes_moved > 4_000_000
    assert record.downtime_s < record.coverage_gap_s
    assert record.freeze_time_s < 0.5
    assert coordinator._captured_state == {}


# ---------------------------------------------------------------------------
# Determinism and drain cleanliness per strategy / shard count
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["cold", "stateful", "precopy"])
@pytest.mark.parametrize("name", ["fig2-roaming", "chaos-soak"])
def test_canned_digest_invariant_per_strategy_and_shards(name, strategy):
    runner = ScenarioRunner(build_scenario(name, seed=3))
    first = runner.run(migration_strategy=strategy)
    second = runner.run(shard_count=2, migration_strategy=strategy)
    assert first.drained and second.drained
    assert first.digest == second.digest, first.digest.diff(second.digest)
    for result in (first, second):
        coordinator = result.testbed.roaming
        assert coordinator.strategy == strategy
        assert coordinator._captured_state == {}
        assert coordinator._speculative == {}


@pytest.mark.parametrize("name", ["precopy-commuters", "stateful-backhaul"])
def test_migration_scenarios_drain_without_leaks(name):
    result = run_scenario(name, seed=0)
    assert result.drained
    assert result.migrations_completed >= 1
    coordinator = result.testbed.roaming
    assert coordinator._captured_state == {}
    assert coordinator._speculative == {}
    if name == "stateful-backhaul":
        assert result.testbed.topology.gateway.state_chunks_routed > 0
