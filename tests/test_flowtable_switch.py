"""Unit tests for the flow table and the station software switch."""

from __future__ import annotations

import pytest

from repro.netem import packet as pkt
from repro.netem.flowtable import Action, ActionType, FlowRule, FlowTable, Match
from repro.netem.host import Interface
from repro.netem.switch import SoftwareSwitch


# --------------------------------------------------------------------------
# Match / FlowTable
# --------------------------------------------------------------------------


def tcp_packet(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=80):
    return pkt.make_tcp_packet(src, dst, sport, dport)


def test_wildcard_match_matches_everything():
    assert Match().matches(tcp_packet(), in_port=7)


def test_match_on_in_port():
    match = Match(in_port=3)
    assert match.matches(tcp_packet(), in_port=3)
    assert not match.matches(tcp_packet(), in_port=4)


def test_match_on_ip_fields():
    match = Match(ip_src="10.0.0.1", ip_dst="10.0.0.2", ip_proto=pkt.PROTO_TCP)
    assert match.matches(tcp_packet(), 1)
    assert not match.matches(tcp_packet(src="10.0.0.9"), 1)
    assert not match.matches(pkt.make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2), 1)


def test_match_on_ports():
    match = Match(l4_dst_port=80)
    assert match.matches(tcp_packet(dport=80), 1)
    assert not match.matches(tcp_packet(dport=443), 1)
    icmp = pkt.make_icmp_echo("10.0.0.1", "10.0.0.2")
    assert not match.matches(icmp, 1)


def test_match_on_metadata():
    match = Match(metadata=(("gnf_dir", "up"),))
    packet = tcp_packet()
    assert not match.matches(packet, 1)
    packet.metadata["gnf_dir"] = "up"
    assert match.matches(packet, 1)


def test_match_on_eth_addresses():
    packet = tcp_packet()
    match = Match(eth_src=packet.eth.src, eth_dst=packet.eth.dst)
    assert match.matches(packet, 1)
    assert not Match(eth_dst="ff:ff:ff:ff:ff:ff").matches(packet, 1)


def test_match_specificity_counts_concrete_fields():
    assert Match().specificity() == 0
    assert Match(in_port=1, ip_src="1.1.1.1", metadata=(("k", "v"),)).specificity() == 3


def test_flowtable_priority_ordering():
    table = FlowTable()
    low = table.add(1, Match(), [Action.output(1)])
    high = table.add(100, Match(ip_src="10.0.0.1"), [Action.output(2)])
    hit = table.lookup(tcp_packet(), in_port=5)
    assert hit is high
    hit_other = table.lookup(tcp_packet(src="10.0.0.99"), in_port=5)
    assert hit_other is low


def test_flowtable_equal_priority_latest_wins():
    table = FlowTable()
    table.add(10, Match(), [Action.output(1)])
    newer = table.add(10, Match(), [Action.output(2)])
    assert table.lookup(tcp_packet(), 1) is newer


def test_flowtable_counters_update_on_match():
    table = FlowTable()
    rule = table.add(10, Match(), [Action.output(1)])
    packet = tcp_packet()
    table.lookup(packet, 1)
    table.lookup(packet, 1)
    assert rule.packets_matched == 2
    assert rule.bytes_matched == 2 * packet.size_bytes


def test_flowtable_remove_by_cookie():
    table = FlowTable()
    table.add(10, Match(), [Action.output(1)], cookie="chain:a")
    table.add(10, Match(), [Action.output(2)], cookie="chain:a")
    table.add(10, Match(), [Action.output(3)], cookie="chain:b")
    assert table.remove_by_cookie("chain:a") == 2
    assert len(table) == 1
    assert table.rules(cookie="chain:b")


def test_flowtable_remove_rule_by_id():
    table = FlowTable()
    rule = table.add(10, Match(), [Action.drop()])
    assert table.remove_rule(rule.rule_id)
    assert not table.remove_rule(rule.rule_id)


def test_flowtable_miss_returns_none():
    table = FlowTable()
    table.add(10, Match(ip_src="1.2.3.4"), [Action.drop()])
    assert table.lookup(tcp_packet(), 1) is None


def test_flowtable_stats():
    table = FlowTable()
    table.add(10, Match(), [Action.output(1)])
    table.lookup(tcp_packet(), 1)
    stats = table.stats()
    assert stats["rules"] == 1
    assert stats["packets_matched"] == 1


def test_action_factories():
    assert Action.output(4).action_type is ActionType.OUTPUT
    assert Action.drop().action_type is ActionType.DROP
    assert Action.flood().action_type is ActionType.FLOOD
    assert Action.set_metadata("k", "v").value == ("k", "v")


# --------------------------------------------------------------------------
# SoftwareSwitch
# --------------------------------------------------------------------------


class Sink:
    """Captures packets delivered out of a switch port."""

    def __init__(self):
        self.packets = []

    def __call__(self, packet, interface):
        self.packets.append(packet)


def build_switch(simulator, port_count=3, no_flood_ports=()):
    switch = SoftwareSwitch(simulator, "sw", forwarding_delay_s=0.0)
    sinks = {}
    for number in range(1, port_count + 1):
        iface = Interface(f"port{number}", mac=f"02:00:00:00:00:{number:02x}")
        switch.add_port(iface, no_flood=(number in no_flood_ports))
        sink = Sink()
        # Outbound frames from the switch are "sent" on the port interface; with no
        # link attached we intercept them via the interface send hook.
        iface.send = (lambda s: (lambda packet: (s.packets.append(packet), True)[1]))(sink)
        sinks[number] = sink
    return switch, sinks


def inject(simulator, switch, packet, port_number):
    interface = switch.ports[port_number].interface
    switch.receive_packet(packet, interface)
    simulator.run()


def test_switch_floods_unknown_destination(simulator):
    switch, sinks = build_switch(simulator)
    packet = tcp_packet()
    inject(simulator, switch, packet, 1)
    assert len(sinks[2].packets) == 1
    assert len(sinks[3].packets) == 1
    assert sinks[1].packets == []
    assert switch.packets_flooded == 1


def test_switch_learns_and_unicasts(simulator):
    switch, sinks = build_switch(simulator)
    first = tcp_packet()
    inject(simulator, switch, first, 1)  # learns src MAC on port 1
    reply = tcp_packet(src="10.0.0.2", dst="10.0.0.1")
    reply.eth.src = first.eth.dst
    reply.eth.dst = first.eth.src
    inject(simulator, switch, reply, 2)
    assert len(sinks[1].packets) == 1
    assert len(sinks[3].packets) == 1  # only the initial flood reached port 3
    assert switch.mac_table[first.eth.src] == 1


def test_switch_flood_respects_no_flood_ports(simulator):
    switch, sinks = build_switch(simulator, no_flood_ports=(3,))
    inject(simulator, switch, tcp_packet(), 1)
    assert sinks[3].packets == []
    assert len(sinks[2].packets) == 1


def test_switch_flow_rule_overrides_learning(simulator):
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(100, Match(ip_src="10.0.0.1"), [Action.output(3)])
    inject(simulator, switch, tcp_packet(), 1)
    assert len(sinks[3].packets) == 1
    assert sinks[2].packets == []


def test_switch_drop_rule(simulator):
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(100, Match(), [Action.drop()])
    inject(simulator, switch, tcp_packet(), 1)
    assert all(not sink.packets for sink in sinks.values())
    assert switch.packets_dropped == 1


def test_switch_set_metadata_then_output(simulator):
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(
        100, Match(in_port=1), [Action.set_metadata("gnf_dir", "up"), Action.output(2)]
    )
    packet = tcp_packet()
    inject(simulator, switch, packet, 1)
    assert sinks[2].packets[0].metadata["gnf_dir"] == "up"


def test_switch_set_field_actions(simulator):
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(
        100,
        Match(in_port=1),
        [Action(ActionType.SET_IP_DST, "99.99.99.99"), Action(ActionType.SET_ETH_DST, "02:ff:ff:ff:ff:ff"), Action.output(2)],
    )
    inject(simulator, switch, tcp_packet(), 1)
    delivered = sinks[2].packets[0]
    assert delivered.ip.dst == "99.99.99.99"
    assert delivered.eth.dst == "02:ff:ff:ff:ff:ff"


def test_switch_output_to_missing_port_counts_drop(simulator):
    switch, sinks = build_switch(simulator)
    switch.flow_table.add(100, Match(), [Action.output(99)])
    inject(simulator, switch, tcp_packet(), 1)
    assert switch.packets_dropped == 1


def test_switch_hairpin_to_input_port_dropped(simulator):
    switch, sinks = build_switch(simulator)
    packet = tcp_packet()
    # Learn the source MAC on port 1, then send a frame destined to that MAC
    # arriving on port 1 again: the learning switch must not hairpin it.
    inject(simulator, switch, packet, 1)
    loop = tcp_packet(src="10.0.0.5", dst="10.0.0.1")
    loop.eth.dst = packet.eth.src
    inject(simulator, switch, loop, 1)
    assert sinks[1].packets == []


def test_switch_remove_port_clears_mac_entries(simulator):
    switch, sinks = build_switch(simulator)
    packet = tcp_packet()
    inject(simulator, switch, packet, 1)
    assert switch.mac_table
    switch.remove_port(1)
    assert 1 not in switch.ports
    assert packet.eth.src not in switch.mac_table


def test_switch_duplicate_port_number_rejected(simulator):
    switch, _ = build_switch(simulator)
    with pytest.raises(ValueError):
        switch.add_port(Interface("dup", mac="02:00:00:00:00:77"), port_number=1)


def test_switch_port_stats_and_summary(simulator):
    switch, sinks = build_switch(simulator)
    inject(simulator, switch, tcp_packet(), 1)
    stats = switch.port_stats()
    assert stats[1].rx_packets == 1
    assert stats[2].tx_packets == 1
    summary = switch.summary()
    assert summary["ports"] == 3
    assert summary["packets_forwarded"] + summary["packets_flooded"] >= 1


def test_switch_forwarding_delay_defers_output(simulator):
    switch = SoftwareSwitch(simulator, "slow", forwarding_delay_s=0.005)
    a = Interface("p1", mac="02:00:00:00:00:01")
    b = Interface("p2", mac="02:00:00:00:00:02")
    switch.add_port(a)
    switch.add_port(b)
    delivered_at = []
    b.send = lambda packet: (delivered_at.append(simulator.now), True)[1]
    switch.flow_table.add(10, Match(), [Action.output(2)])
    switch.receive_packet(tcp_packet(), a)
    simulator.run()
    assert delivered_at == [pytest.approx(0.005)]


def test_broadcast_frames_are_flooded(simulator):
    switch, sinks = build_switch(simulator)
    packet = tcp_packet()
    packet.eth.dst = pkt.BROADCAST_MAC
    inject(simulator, switch, packet, 1)
    assert len(sinks[2].packets) == 1 and len(sinks[3].packets) == 1
