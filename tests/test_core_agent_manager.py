"""Tests for the GNF Agent and Manager: chain deployment, traffic steering,
heartbeats, client events, notifications and the attach/detach API."""

from __future__ import annotations

import pytest

from repro.core.chain import ServiceChain
from repro.core.manager import AssignmentState
from repro.core.policy import TrafficSelector
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import CBRTrafficGenerator, DNSWorkloadGenerator, HTTPWorkloadGenerator


def deploy_and_settle(testbed, client, chain, selector=None, settle_s=6.0):
    assignment = testbed.manager.attach_chain(client.ip, chain, selector=selector)
    testbed.run(settle_s)
    return assignment


# --------------------------------------------------------------------------
# Agent: deployment mechanics
# --------------------------------------------------------------------------


def test_agent_deploys_chain_containers_and_rules(connected_testbed):
    testbed, client = connected_testbed
    assignment = deploy_and_settle(testbed, client, ServiceChain.of("firewall", "http-filter"))
    assert assignment.state is AssignmentState.ACTIVE
    agent = testbed.agents["station-1"]
    deployment = agent.deployment_for_client(client.ip)
    assert deployment is not None
    assert len(deployment.deployed_nfs) == 2
    assert all(d.container.is_running for d in deployment.deployed_nfs)
    # Two veth pairs per NF (ingress + egress ports on the switch).
    for deployed in deployment.deployed_nfs:
        assert deployed.ingress_port in agent.station.switch.ports
        assert deployed.egress_port in agent.station.switch.ports
        assert agent.station.switch.ports[deployed.ingress_port].no_flood
    # Chain steering rules were installed under the deployment cookie.
    rules = agent.station.switch.flow_table.rules(cookie=deployment.cookie)
    assert len(rules) >= 2 * len(deployment.deployed_nfs)


def test_agent_attach_latency_is_seconds_scale(connected_testbed):
    testbed, client = connected_testbed
    assignment = deploy_and_settle(testbed, client, ServiceChain.of("firewall"))
    assert assignment.attach_latency_s is not None
    assert 0.1 < assignment.attach_latency_s < 10.0


def test_agent_warm_deploy_faster_than_cold(connected_testbed):
    testbed, client = connected_testbed
    cold = deploy_and_settle(testbed, client, ServiceChain.of("firewall"))
    testbed.manager.detach(cold.assignment_id)
    testbed.run(2.0)
    warm = deploy_and_settle(testbed, client, ServiceChain.of("firewall"))
    assert warm.attach_latency_s < cold.attach_latency_s


def test_agent_deployment_failure_on_tiny_station():
    testbed = GNFTestbed(TestbedConfig(station_count=1))
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    # The cache NF alone fits, but a long chain of caches exceeds 128 MB RAM.
    chain = ServiceChain.of(*(["cache"] * 6))
    assignment = testbed.manager.attach_chain(client.ip, chain)
    testbed.run(10.0)
    assert assignment.state is AssignmentState.FAILED
    assert assignment.failure_reason
    agent = testbed.agents["station-1"]
    # Rollback removed partial containers and rules.
    assert agent.deployment_for_client(client.ip) is None
    assert agent.station.switch.flow_table.rules(cookie=f"chain:{assignment.assignment_id}") == []


def test_agent_remove_chain_releases_resources(connected_testbed):
    testbed, client = connected_testbed
    assignment = deploy_and_settle(testbed, client, ServiceChain.of("firewall", "flow-monitor"))
    agent = testbed.agents["station-1"]
    free_before_removal = agent.runtime.resources.free_memory_mb
    testbed.manager.detach(assignment.assignment_id)
    testbed.run(3.0)
    assert agent.deployment_for_client(client.ip) is None
    assert agent.runtime.resources.free_memory_mb > free_before_removal
    assert assignment.state is AssignmentState.REMOVED


def test_agent_set_chain_active_toggles_rules(connected_testbed):
    testbed, client = connected_testbed
    assignment = deploy_and_settle(testbed, client, ServiceChain.of("firewall"))
    agent = testbed.agents["station-1"]
    cookie = f"chain:{assignment.assignment_id}"
    assert agent.station.switch.flow_table.rules(cookie=cookie)
    assert agent.set_chain_active(assignment.assignment_id, False)
    assert agent.station.switch.flow_table.rules(cookie=cookie) == []
    assert agent.set_chain_active(assignment.assignment_id, True)
    assert agent.station.switch.flow_table.rules(cookie=cookie)
    assert not agent.set_chain_active("asg-9999", True)


def test_agent_heartbeats_reach_manager(connected_testbed):
    testbed, client = connected_testbed
    testbed.run(10.0)
    manager = testbed.manager
    assert manager.heartbeats_processed > 0
    assert set(manager.last_heartbeat) == {"station-1", "station-2"}
    heartbeat = manager.last_heartbeat["station-1"]
    assert client.ip in heartbeat.connected_clients
    assert manager.health.online_stations(testbed.simulator.now) == ["station-1", "station-2"]


def test_agent_client_events_update_manager_locations(connected_testbed):
    testbed, client = connected_testbed
    assert testbed.manager.client_locations[client.ip] == "station-1"
    assert testbed.manager.client_names[client.ip] == "phone"
    assert testbed.manager.client_events_processed >= 1


# --------------------------------------------------------------------------
# Dataplane through deployed chains
# --------------------------------------------------------------------------


def test_traffic_traverses_chain_in_both_directions(connected_testbed):
    testbed, client = connected_testbed
    deploy_and_settle(testbed, client, ServiceChain.of("firewall", "flow-monitor"))
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=50)
    generator.start()
    testbed.run(5.0)
    generator.stop()
    assert generator.responses_received > 100
    deployment = testbed.agents["station-1"].deployment_for_client(client.ip)
    firewall = deployment.nf_by_type("firewall").nf
    monitor = deployment.nf_by_type("flow-monitor").nf
    # Both directions crossed both NFs.
    assert firewall.packets_in >= 2 * generator.responses_received - 10
    assert monitor.upstream_bytes > 0
    assert monitor.downstream_bytes > 0


def test_http_filter_blocks_end_to_end(connected_testbed):
    testbed, client = connected_testbed
    chain = ServiceChain.single("http-filter", config={"blocked_hosts": ["blocked.example.com"]})
    deploy_and_settle(testbed, client, chain)
    workload = HTTPWorkloadGenerator(
        testbed.simulator,
        client,
        server_ip=testbed.server_ip,
        sites=["blocked.example.com", "ok.example.org"],
        mean_think_time_s=0.2,
        seed=3,
    )
    workload.start()
    testbed.run(20.0)
    workload.stop()
    assert workload.pages_blocked > 0
    assert workload.pages_fetched > 0
    # Blocked answers are produced at the edge, so they come back faster than
    # pages served by the origin across the backhaul.
    assert workload.responses_received == workload.pages_blocked + workload.pages_fetched


def test_selector_restricts_nf_to_traffic_subset(connected_testbed):
    testbed, client = connected_testbed
    chain = ServiceChain.of("flow-monitor")
    deploy_and_settle(testbed, client, chain, selector=TrafficSelector.web_traffic())
    http = HTTPWorkloadGenerator(testbed.simulator, client, server_ip=testbed.server_ip, mean_think_time_s=0.3)
    cbr = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=50, dst_port=9000)
    http.start()
    cbr.start()
    testbed.run(10.0)
    deployment = testbed.agents["station-1"].deployment_for_client(client.ip)
    monitor = deployment.nf_by_type("flow-monitor").nf
    # Only the web traffic subset traversed the NF; the UDP probe stream bypassed it.
    assert monitor.packets_in > 0
    assert monitor.packets_in < cbr.packets_sent
    assert cbr.responses_received > 0


def test_dns_loadbalancer_rewrites_answers_end_to_end(connected_testbed):
    testbed, client = connected_testbed
    chain = ServiceChain.single(
        "dns-loadbalancer",
        config={"pools": {"cdn.example.com": ["198.18.0.1", "198.18.0.2"]}},
    )
    deploy_and_settle(testbed, client, chain, selector=TrafficSelector.dns_traffic())
    dns = DNSWorkloadGenerator(
        testbed.simulator, client, resolver_ip=testbed.server_ip,
        names=["cdn.example.com"], query_interval_s=0.5,
    )
    dns.start()
    testbed.run(10.0)
    counts = dns.resolution_counts()["cdn.example.com"]
    assert set(counts) == {"198.18.0.1", "198.18.0.2"}
    assert abs(counts["198.18.0.1"] - counts["198.18.0.2"]) <= 1


def test_nf_notifications_relayed_to_manager(connected_testbed):
    testbed, client = connected_testbed
    chain = ServiceChain.single("ids", config={"port_scan_threshold": 5, "malware_signatures": ["EICAR"]})
    deploy_and_settle(testbed, client, chain)
    generator = CBRTrafficGenerator(testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20)
    generator.start()
    # Inject a malware-tagged packet directly through the client.
    from repro.netem import packet as pkt

    bad = pkt.make_tcp_packet(client.ip, testbed.server_ip, 40000, 80)
    bad.metadata["payload_signature"] = "EICAR"
    testbed.simulator.schedule(1.0, client.send_packet, bad)
    testbed.run(5.0)
    notifications = testbed.manager.notifications.by_severity("critical")
    assert len(notifications) >= 1
    assert notifications[0].station_name == "station-1"
    assert notifications[0].delivery_latency_s > 0


# --------------------------------------------------------------------------
# Manager API behaviour
# --------------------------------------------------------------------------


def test_manager_rejects_unknown_client(testbed):
    from repro.core.errors import UnknownClientError

    with pytest.raises(UnknownClientError):
        testbed.manager.attach_nf("10.99.99.99", "firewall")


def test_manager_attach_with_explicit_station(testbed):
    assignment = testbed.manager.attach_nf("10.10.0.77", "firewall", station_name="station-2")
    testbed.run(6.0)
    assert assignment.station_name == "station-2"
    assert assignment.state is AssignmentState.ACTIVE


def test_manager_unknown_agent_and_assignment_errors(testbed):
    from repro.core.errors import UnknownAgentError, UnknownAssignmentError

    with pytest.raises(UnknownAgentError):
        testbed.manager.agent("station-99")
    with pytest.raises(UnknownAssignmentError):
        testbed.manager.detach("asg-9999")


def test_manager_overview_and_station_views(connected_testbed):
    testbed, client = connected_testbed
    deploy_and_settle(testbed, client, ServiceChain.of("firewall"))
    overview = testbed.manager.overview()
    assert overview["active_assignments"] == 1
    assert overview["enabled_nfs"] == 1
    assert client.ip in overview["connected_clients"]
    views = testbed.manager.station_views("station-1")
    assert {view.name for view in views} == {"station-1", "station-2"}
    local = next(view for view in views if view.name == "station-1")
    assert local.client_latency_s == 0.0
    assert testbed.manager.control_plane_stats()["station-1"]["messages_delivered"] > 0


def test_manager_assignments_for_client(connected_testbed):
    testbed, client = connected_testbed
    deploy_and_settle(testbed, client, ServiceChain.of("firewall"))
    deploy_and_settle(testbed, client, ServiceChain.of("flow-monitor"))
    assert len(testbed.manager.assignments_for_client(client.ip)) == 2


def test_scheduler_disable_racing_inflight_deployment(connected_testbed):
    """A disable that lands while the chain is still booting must stick.

    The schedule's window is already closed when the deployment completes, so
    the scheduler's disable arrives while containers are mid-boot.  The agent
    must record the desired state and never install steering rules for the
    half-built (or freshly completed) chain.
    """
    from repro.core.scheduler import TimeSchedule

    testbed, client = connected_testbed
    now = testbed.simulator.now
    # Window closes at +0.2 s -- long before the multi-second container boot
    # finishes, so the scheduler's disable races the in-flight deployment.
    assignment = testbed.manager.attach_nf(
        client.ip, "firewall", schedule=TimeSchedule.between(now + 0.1, now + 0.2)
    )
    agent = testbed.agents["station-1"]
    cookie = f"chain:{assignment.assignment_id}"
    testbed.run(12.0)
    assert assignment.state.value == "active"  # containers did deploy...
    deployment = agent.deployments[assignment.assignment_id]
    assert deployment.desired_active is False
    assert deployment.rules_installed is False  # ...but steering stayed off
    assert agent.station.switch.flow_table.rules(cookie=cookie) == []


def test_scheduler_enable_racing_inflight_deployment(connected_testbed):
    """The mirror race: enable mid-boot must steer once (and only once).

    The window opens while containers are booting; when the deployment
    completes it must come up steered, without double-installed rules.
    """
    from repro.core.scheduler import TimeSchedule

    testbed, client = connected_testbed
    now = testbed.simulator.now
    assignment = testbed.manager.attach_nf(
        client.ip, "firewall", schedule=TimeSchedule.between(now + 1.0, now + 60.0)
    )
    agent = testbed.agents["station-1"]
    cookie = f"chain:{assignment.assignment_id}"
    # Let the deploy request reach the agent but not finish booting, then
    # poke both transitions through the agent API the scheduler uses;
    # neither may install rules on the incomplete chain.
    testbed.run(0.2)
    assert assignment.state.value == "deploying"
    assert agent.set_chain_active(assignment.assignment_id, False)
    assert agent.set_chain_active(assignment.assignment_id, True)
    assert agent.station.switch.flow_table.rules(cookie=cookie) == []
    testbed.run(12.0)
    assert assignment.state.value == "active"
    rules = agent.station.switch.flow_table.rules(cookie=cookie)
    assert rules  # steered after completion
    deployment = agent.deployments[assignment.assignment_id]
    assert deployment.rules_installed is True
    # Toggling now behaves as before the fix.
    agent.set_chain_active(assignment.assignment_id, False)
    assert agent.station.switch.flow_table.rules(cookie=cookie) == []


def test_scheduled_assignment_enables_and_disables(connected_testbed):
    from repro.core.scheduler import TimeSchedule

    testbed, client = connected_testbed
    now = testbed.simulator.now
    assignment = testbed.manager.attach_nf(
        client.ip, "firewall", schedule=TimeSchedule.between(now + 20.0, now + 30.0)
    )
    testbed.run(8.0)  # deployed, then the scheduler disables it (outside the window)
    agent = testbed.agents["station-1"]
    cookie = f"chain:{assignment.assignment_id}"
    assert agent.station.switch.flow_table.rules(cookie=cookie) == []
    testbed.run(18.0)  # inside the window now
    assert agent.station.switch.flow_table.rules(cookie=cookie)
    testbed.run(10.0)  # window closed again
    assert agent.station.switch.flow_table.rules(cookie=cookie) == []
