"""FlowTracker TTL expiry wiring (the unbounded-growth satellite).

``FlowTracker.expire_idle`` existed but nothing in the running system ever
called it, so long soak runs leaked one entry per five-tuple forever.  Two
sweeps now run it on real clocks:

* the FlowMonitor dataplane sweeps opportunistically every half TTL, and
* every Agent's ResourceCollector tick sweeps all trackers on its station
  and publishes the aggregate as ``flows.*`` telemetry (including the
  ``flows.expired_flows`` counter).
"""

from __future__ import annotations

from repro.core.chain import ServiceChain
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem import packet as pkt
from repro.nfs.base import Direction, ProcessingContext
from repro.nfs.flow_monitor import FlowMonitor

CLIENT = "10.10.0.5"
SERVER = "10.30.0.2"


def _packet(src_port: int):
    return pkt.make_udp_packet(CLIENT, SERVER, src_port, 9000, payload_bytes=100)


def test_flow_monitor_dataplane_sweep_expires_idle_flows():
    monitor = FlowMonitor(idle_timeout_s=10.0)
    context = ProcessingContext(now=0.0, direction=Direction.UPSTREAM, client_ip=CLIENT)
    for port in range(40_000, 40_005):
        monitor.process(_packet(port), context)
    assert len(monitor.tracker) == 5

    # Far past the TTL a single new packet triggers the opportunistic
    # sweep: the five idle flows go, only the fresh one stays.
    context.now = 25.0
    monitor.process(_packet(41_000), context)
    assert len(monitor.tracker) == 1
    assert monitor.tracker.expired_flows == 5
    assert monitor.traffic_summary()["expired_flows"] == 5.0

    # Expiry shrinks the migration payload too: state size tracks the
    # *live* flow table, not everything ever seen.
    assert monitor.state_size_mb < FlowMonitor.base_state_mb + 2 * 120 / 1e6


def test_agent_collector_sweeps_trackers_and_reports_flows_telemetry():
    testbed = GNFTestbed(TestbedConfig(station_count=1))
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    testbed.manager.attach_chain(
        phone.ip, ServiceChain.of("flow-monitor"), station_name="station-1"
    )
    testbed.run(2.0)

    agent = testbed.agents["station-1"]
    assert "flows" in agent.collector.sources()
    monitor = next(
        container.network_function
        for container in agent.runtime.running_containers()
        if isinstance(container.network_function, FlowMonitor)
    )
    # Plant idle flows directly in the tracker: stale since t~3.
    now = testbed.simulator.now
    for port in range(42_000, 42_004):
        monitor.tracker.observe(_packet(port), now)
    assert len(monitor.tracker) == 4

    # One TTL later the collector tick (1 s interval) must have swept them,
    # with no dataplane traffic needed.
    testbed.run(monitor.tracker.idle_timeout_s + 2.0)
    assert len(monitor.tracker) == 0
    assert monitor.tracker.expired_flows == 4

    latest = agent.collector.latest()
    assert latest["flows.trackers"] == 1.0
    assert latest["flows.expired_flows"] == 4.0
    assert latest["flows.active_flows"] == 0.0
    testbed.stop()
