"""Tier-1 wrapper around the docs consistency check (`tools/docs_check.py`).

Keeps the documentation honest on every test run: cited file paths must
exist and the scenario table must match the registry exactly.  The slower
README-snippet execution runs in the CI ``docs-check`` job instead.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "tools"))

import docs_check


def test_doc_files_are_present():
    assert "README.md" in docs_check.DOC_FILES
    assert "docs/ARCHITECTURE.md" in docs_check.DOC_FILES
    assert "docs/SCENARIOS.md" in docs_check.DOC_FILES
    assert "docs/BENCHMARKS.md" in docs_check.DOC_FILES


def test_cited_paths_exist():
    assert docs_check.check_paths(docs_check.DOC_FILES) == []


def test_scenario_citations_match_registry():
    assert docs_check.check_scenario_names(docs_check.DOC_FILES) == []


def test_benchmark_catalogue_matches_bench_modules():
    assert docs_check.check_bench_catalogue() == []


def test_bench_catalogue_detects_drift(tmp_path, monkeypatch):
    docs = tmp_path / "docs"
    docs.mkdir()
    (tmp_path / "benchmarks").mkdir()
    (tmp_path / "benchmarks" / "bench_e99_future.py").write_text("")
    (docs / "BENCHMARKS.md").write_text(
        "| E1 | `benchmarks/bench_e1_gone.py` | x | y |\n"
    )
    monkeypatch.setattr(docs_check, "REPO_ROOT", str(tmp_path))
    problems = docs_check.check_bench_catalogue()
    assert len(problems) == 2  # uncatalogued module + stale citation


def test_readme_has_runnable_quickstart_snippets():
    # The snippets themselves run in CI's docs-check job; tier-1 just pins
    # that they exist and still import from the public scenario API.
    snippets = docs_check.readme_snippets()
    assert snippets, "README.md lost its python quickstart snippet"
    assert any("run_scenario" in code for _, code in snippets)


def test_docs_check_detects_a_broken_citation(tmp_path, monkeypatch):
    rigged = tmp_path / "BROKEN.md"
    rigged.write_text("see `src/repro/core/no_such_module.py` and `docs/*.md`\n")
    monkeypatch.setattr(docs_check, "REPO_ROOT", str(tmp_path))
    problems = docs_check.check_paths(["BROKEN.md"])
    assert len(problems) == 2  # missing file + glob matching nothing
