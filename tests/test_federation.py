"""The federation test harness: multi-region control plane + streaming rollups.

Gates the federated tier end to end:

* station -> region routing and config validation;
* streaming rollup exactness (the ``HealthRollup`` liveness predicate must
  match the monitor's scan formula bit-for-bit, including at the float
  boundary);
* the global client directory stays consistent with the per-region
  directories under concurrent cross-region roams;
* a cross-region handoff keeps the chain and tears the old region's station
  down (steering rules + fast path asserted from reported telemetry);
* a 100-roam cross-region soak keeps the migration ledgers bounded and the
  container census exact (mirrors ``test_migration_engine``'s soak);
* every canned scenario replays to a byte-identical digest across
  region_count {1,2} x shard_count {1,4}, and after every federated run the
  streaming ``overview()`` equals the brute-force ``full_scan_overview()``.
"""

from __future__ import annotations

import pytest

from repro.core.api import ClientEvent
from repro.core.chain import ServiceChain
from repro.core.federation import FederatedManager
from repro.core.manager import AssignmentState
from repro.core.sharding import ShardedManager
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import CBRTrafficGenerator
from repro.scenarios import ScenarioRunner, build_scenario, scenario_names
from repro.telemetry.rollup import HealthRollup
from repro.wireless.mobility import LinearMobility

CLIENT_IP = "10.10.99.1"


def _event(testbed: GNFTestbed, station: str, kind: str, ip: str = CLIENT_IP) -> ClientEvent:
    """A synthetic Agent-reported client (dis)connection."""
    return ClientEvent(
        station_name=station,
        client_ip=ip,
        client_name=f"phone-{ip.rsplit('.', 1)[-1]}",
        cell_name=f"{station}-cell1",
        event=kind,
        time=testbed.simulator.now,
    )


def _wait_active(testbed: GNFTestbed, assignment, budget_s: float = 30.0) -> None:
    waited = 0.0
    while assignment.state is not AssignmentState.ACTIVE and waited < budget_s:
        testbed.run(1.0)
        waited += 1.0
    assert assignment.state is AssignmentState.ACTIVE, assignment.state


def _assert_directory_consistent(manager: FederatedManager) -> None:
    """The global directory is exactly the disjoint union of the region
    directories, and every entry lives in the region owning its station."""
    merged = {}
    for region_index, region in enumerate(manager.regions):
        for client_ip, station in region.client_locations.items():
            assert client_ip not in merged, (
                f"client {client_ip} appears in two region directories"
            )
            merged[client_ip] = station
            assert manager.region_index_of(station) == region_index
    assert merged == manager.client_locations


# ---------------------------------------------------------------------------
# Station -> region routing and config validation
# ---------------------------------------------------------------------------


def test_region_map_bands_and_validation():
    manager = GNFTestbed(
        TestbedConfig(station_count=4, region_count=2, shard_count=2)
    ).manager
    assert isinstance(manager, FederatedManager)
    assert manager.region_count == 2
    assert manager.total_shard_count == 4
    # Contiguous bands, same scheme shards use one tier down.
    assert [manager.region_index_of(f"station-{i}") for i in (1, 2, 3, 4)] == [0, 0, 1, 1]
    # Each region's shard map covers only its own band.
    assert manager.regions[0].shard_map.band(0) == (1, 1)
    assert manager.regions[1].shard_map.band(0) == (3, 3)
    assert manager.regions[1].shard_map.band(1) == (4, 4)
    with pytest.raises(ValueError):
        FederatedManager(manager.simulator, region_count=0)
    with pytest.raises(ValueError):
        FederatedManager(manager.simulator, region_count=2, shards_per_region=0)
    with pytest.raises(ValueError):
        FederatedManager(manager.simulator, region_count=5, station_count=4)
    with pytest.raises(ValueError):
        GNFTestbed(TestbedConfig(station_count=2, region_count=3))


# ---------------------------------------------------------------------------
# Streaming rollup exactness
# ---------------------------------------------------------------------------


def test_health_rollup_matches_monitor_predicate_at_the_boundary():
    """Liveness must flip at exactly ``(now - last) <= timeout`` -- the heap
    is only a nomination mechanism, the monitor formula decides."""
    rollup = HealthRollup(heartbeat_timeout_s=10.0)
    rollup.record("station-1", 5.0)
    assert rollup.is_online("station-1", 15.0)  # boundary: still online
    assert rollup.online_stations(15.0) == ("station-1",)
    just_past = 15.0 + 1e-9
    assert not rollup.is_online("station-1", just_past)
    assert rollup.online_stations(just_past) == ()
    assert rollup.offline_stations(just_past) == ("station-1",)
    # A fresh heartbeat resurrects the station (and bumps the version).
    version = rollup.version
    rollup.record("station-1", 20.0)
    assert rollup.version > version
    assert rollup.online_stations(25.0) == ("station-1",)
    assert rollup.offline_stations(25.0) == ()


def test_federated_overview_matches_single_manager_and_full_scan():
    """The streaming rollup overview agrees with a single Manager's scanned
    one on a live fleet, and with the brute-force recomputation."""
    single = GNFTestbed(TestbedConfig(station_count=4, shard_count=1))
    federated = GNFTestbed(TestbedConfig(station_count=4, region_count=2, shard_count=2))
    for testbed in (single, federated):
        testbed.start()
        testbed.run(10.0)
    manager = federated.manager
    assert isinstance(manager, FederatedManager)
    lone, fanned = single.manager.overview(), manager.overview()
    for key in (
        "online_stations", "offline_stations", "assignments",
        "active_assignments", "enabled_nfs", "heartbeats_processed",
    ):
        assert lone[key] == fanned[key], key
    # The federation reports the directory as a count at this tier.
    assert fanned["connected_clients"] == len(lone["connected_clients"])
    assert fanned["regions"] == 2 and fanned["shards"] == 4
    assert manager.overview() == manager.full_scan_overview()
    # The placement view spans every station, in global station order.
    names = [view.name for view in manager.station_views("station-1")]
    assert names == single.station_names()
    # Health facade: point and list queries agree with the per-region truth.
    now = federated.simulator.now
    assert manager.health.online_stations(now) == single.station_names()
    assert manager.health.is_online("station-3", now)
    assert len(manager.health) == 4
    assert set(manager.last_heartbeat) == set(single.station_names())
    # The UI renders through the facade without noticing federation.
    assert "GNF network overview" in federated.ui.render_overview()


# ---------------------------------------------------------------------------
# Cross-region roaming: handoff, teardown, directory
# ---------------------------------------------------------------------------


def test_cross_region_roaming_keeps_chain_and_tears_down_old_region():
    """A client roams from region 0's station to region 1's: the chain
    follows via an explicit release/adopt handoff and the old region's
    station tears everything down (asserted from reported telemetry, not
    just live object state) -- the region-tier twin of the cross-shard test."""
    testbed = GNFTestbed(
        TestbedConfig(station_count=2, region_count=2, migration_strategy="cold")
    )
    manager = testbed.manager
    assert isinstance(manager, FederatedManager)
    assert manager.region_index_of("station-1") != manager.region_index_of("station-2")
    client = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    baseline_rules = testbed.topology.stations["station-1"].switch.summary()["flow_rules"]
    assignment = manager.attach_chain(client.ip, ServiceChain.of("firewall", "http-filter"))
    generator = CBRTrafficGenerator(
        testbed.simulator, client, server_ip=testbed.server_ip, rate_pps=20
    )
    generator.start()
    testbed.run(6.0)
    assert assignment.state is AssignmentState.ACTIVE
    assert testbed.topology.stations["station-1"].switch.flow_cache.stats()["hits"] > 0

    LinearMobility(
        testbed.simulator, client, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)
    ).start()
    testbed.run(40.0)

    # The migration completed and the chain kept following the client.
    assert client.current_station_name == "station-2"
    record = testbed.roaming.records[0]
    assert record.success and record.to_station == "station-2"
    assert assignment.state is AssignmentState.ACTIVE
    assert assignment.station_name == "station-2"

    # The explicit handoff moved the assignment between regions.
    assert len(manager.handoffs) == 1
    handoff = manager.handoffs[0]
    assert handoff.assignment_id == assignment.assignment_id
    assert handoff.from_region == 0 and handoff.to_region == 1
    assert handoff.from_station == "station-1" and handoff.to_station == "station-2"
    source, target = manager.regions[0], manager.regions[1]
    assert assignment.assignment_id in target.assignments
    assert assignment.assignment_id not in source.assignments
    assert assignment.assignment_id in target.scheduler.tracked()
    assert assignment.assignment_id not in source.scheduler.tracked()
    # The directory followed the client across the region boundary.
    _assert_directory_consistent(manager)
    assert manager.client_locations[client.ip] == "station-2"

    # The new region's station hosts the running chain...
    new_deployment = testbed.agents["station-2"].deployment_for_client(client.ip)
    assert new_deployment is not None
    assert all(d.container.is_running for d in new_deployment.deployed_nfs)
    testbed.run(5.0)
    # ...and the old region's station tore everything down: no deployment,
    # and the telemetry it reports upstream shows the steering rules gone
    # and the cached fast-path verdicts flushed.
    assert testbed.agents["station-1"].deployment_for_client(client.ip) is None
    old_switch = testbed.topology.stations["station-1"].switch
    assert old_switch.flow_table.rules(cookie=f"chain:{assignment.assignment_id}") == []
    reported = manager.last_heartbeat["station-1"]
    assert reported.switch["flow_rules"] <= baseline_rules
    old_fastpath = old_switch.flow_cache.stats()
    assert old_fastpath["entries"] == 0
    assert old_fastpath["invalidations"] + old_fastpath["flushes"] > 0
    assert manager.overview()["cross_region_handoffs"] == 1
    assert manager.overview() == manager.full_scan_overview()


def test_directory_stays_consistent_under_concurrent_cross_region_roams():
    """Three synthetic clients ping-pong across the region boundary
    concurrently; after every wave the global directory equals the disjoint
    union of the region directories and the assignment index matches the
    owning region's table."""
    testbed = GNFTestbed(
        TestbedConfig(station_count=4, region_count=2, shard_count=2,
                      migration_strategy="cold")
    )
    manager = testbed.manager
    assert isinstance(manager, FederatedManager)
    ips = [f"10.10.99.{i}" for i in (1, 2, 3)]
    # Each client shuttles between the last region-0 station and the first
    # region-1 station, so every roam crosses the boundary.
    east, west = "station-2", "station-3"
    testbed.start()
    testbed.run(0.5)
    for ip in ips:
        manager.receive_client_event(_event(testbed, east, "connected", ip))
    testbed.run(0.1)
    assignments = [
        manager.attach_chain(ip, ServiceChain.of("firewall"), station_name=east)
        for ip in ips
    ]
    testbed.run(5.0)
    for assignment in assignments:
        assert assignment.state is AssignmentState.ACTIVE
    _assert_directory_consistent(manager)

    here, there = east, west
    for wave in range(8):
        # All three disconnect in the same tick...
        for ip in ips:
            manager.receive_client_event(_event(testbed, here, "disconnected", ip))
        testbed.run(0.3)
        # ...mid-flight the departed clients are in no directory at all...
        _assert_directory_consistent(manager)
        assert not any(ip in manager.client_locations for ip in ips)
        # ...then all three reconnect across the boundary in the same tick.
        for ip in ips:
            manager.receive_client_event(_event(testbed, there, "connected", ip))
        testbed.run(2.2)
        for assignment in assignments:
            _wait_active(testbed, assignment)
        _assert_directory_consistent(manager)
        owning = manager.region_index_of(there)
        for ip, assignment in zip(ips, assignments):
            assert manager.client_locations[ip] == there
            assert assignment.station_name == there
            assert manager._assignment_region[assignment.assignment_id] == owning
            assert assignment.assignment_id in manager.regions[owning].assignments
        here, there = there, here

    assert len(manager.handoffs) == 8 * len(ips)
    assert manager.overview() == manager.full_scan_overview()


# ---------------------------------------------------------------------------
# The 100-roam cross-region soak (migration-ledger + container census)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["stateful", "precopy"])
def test_soak_100_cross_region_roams_keeps_ledgers_bounded(strategy):
    """The federation twin of ``test_migration_engine``'s soak: every roam
    crosses the region boundary, and after 100 of them the coordinator's
    captured-state and speculative ledgers are empty and exactly one station
    hosts exactly one chain's worth of containers."""
    testbed = GNFTestbed(
        TestbedConfig(station_count=2, region_count=2, migration_strategy=strategy)
    )
    manager = testbed.manager
    assert isinstance(manager, FederatedManager)
    testbed.start()
    testbed.run(0.5)
    manager.receive_client_event(_event(testbed, "station-1", "connected"))
    testbed.run(0.1)
    assignment = manager.attach_chain(
        CLIENT_IP, ServiceChain.of("firewall"), station_name="station-1"
    )
    testbed.run(5.0)
    assert assignment.state is AssignmentState.ACTIVE
    for _ in range(100):
        old = assignment.station_name
        new = "station-2" if old == "station-1" else "station-1"
        manager.receive_client_event(_event(testbed, old, "disconnected"))
        testbed.run(0.3)
        manager.receive_client_event(_event(testbed, new, "connected"))
        testbed.run(2.2)
        _wait_active(testbed, assignment)
    coordinator = testbed.roaming
    assert len(coordinator.records) == 100
    assert all(record.success for record in coordinator.records)
    assert assignment.migrations == 100
    assert len(manager.handoffs) == 100
    assert all(h.from_region != h.to_region for h in manager.handoffs)
    # The ledgers are bounded: everything staged per-roam was consumed.
    assert coordinator._captured_state == {}
    assert coordinator._speculative == {}
    # Container census: exactly one station hosts the chain, with exactly
    # one chain's worth of running containers network-wide.
    hosts = [
        name for name, agent in testbed.agents.items() if agent.deployment_for_client(CLIENT_IP)
    ]
    assert hosts == [assignment.station_name]
    running = [
        container
        for agent in testbed.agents.values()
        for container in agent.runtime.containers.values()
        if container.labels.get("assignment") == assignment.assignment_id
        and container.is_running
    ]
    assert len(running) == len(assignment.chain)
    # The assignment table and directory ended in the owning region only.
    _assert_directory_consistent(manager)
    assert manager.overview() == manager.full_scan_overview()


# ---------------------------------------------------------------------------
# Digest invariance + rollup-vs-scan equivalence, every canned scenario
# ---------------------------------------------------------------------------

#: region_count x shard_count combinations the invariance matrix covers;
#: combos needing more regions than the scenario has stations are skipped
#: (the config layer rejects them by design).
_MATRIX = [(1, 4), (2, 1), (2, 4)]


@pytest.mark.parametrize("name", scenario_names())
def test_canned_digest_invariant_across_regions_and_shards(name):
    """Every canned scenario replays byte-identically across the
    region/shard matrix, and every federated replay's streaming overview
    equals the brute-force full scan (the rollup-equivalence gate)."""
    spec = build_scenario(name, seed=0)
    runner = ScenarioRunner(spec)
    base = runner.run(region_count=1, shard_count=1)
    assert base.drained
    for region_count, shard_count in _MATRIX:
        if region_count > spec.topology.station_count:
            continue
        result = runner.run(region_count=region_count, shard_count=shard_count)
        assert result.drained, (name, region_count, shard_count)
        assert result.digest == base.digest, (
            name, region_count, shard_count, base.digest.diff(result.digest),
        )
        manager = result.testbed.manager
        if region_count == 1:
            continue
        assert isinstance(manager, FederatedManager)
        assert manager.region_count == region_count
        assert manager.total_shard_count == region_count * shard_count
        # Streaming rollups == brute-force scans, after the full run.
        assert manager.overview() == manager.full_scan_overview(), name
        # The counter tree is exact: the global rollup equals the sum of
        # the per-shard counters it mirrors.
        assert manager.heartbeats_processed == sum(
            shard.heartbeats_processed for region in manager.regions for shard in region.shards
        )
        assert manager.client_events_processed == sum(
            region.client_events_processed for region in manager.regions
        )
        _assert_directory_consistent(manager)


def test_federated_commuters_scenario_actually_federates():
    """The canned ``federated-commuters`` scenario exercises the tier it was
    built for: real cross-region handoffs on its own default settings."""
    spec = build_scenario("federated-commuters", seed=0)
    assert spec.topology.region_count == 2 and spec.topology.shard_count == 2
    result = ScenarioRunner(spec).run()
    assert result.drained
    manager = result.testbed.manager
    assert isinstance(manager, FederatedManager)
    assert len(manager.handoffs) >= 4
    assert result.migrations_completed >= 4
    assert manager.overview() == manager.full_scan_overview()
