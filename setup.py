"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in fully
offline environments (no ``wheel`` package available for PEP 660 editable
wheels): pip falls back to the legacy ``setup.py develop`` code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Glasgow Network Functions (GNF) reproduction: roaming edge vNFs on an emulated edge testbed"
    ),
    author="GNF Reproduction Authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
