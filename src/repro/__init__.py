"""Glasgow Network Functions (GNF) reproduction.

A pure-Python reproduction of *"Roaming Edge vNFs using Glasgow Network
Functions"* (Cziva, Jouet, Pezaros -- SIGCOMM 2016 demo): a container-based
NFV framework for the network edge in which lightweight network functions
follow mobile clients as they roam between wireless cells.

The package is organised as the paper's system plus every substrate it runs
on:

* :mod:`repro.core` -- the GNF Manager, Agents, UI, NF repository, service
  chains, placement, scheduling and the roaming/migration coordinator.
* :mod:`repro.containers` -- the simulated container runtime (images,
  cgroups, namespaces, veth wiring, checkpoint/restore).
* :mod:`repro.netem` -- the discrete-event network emulator (packets, links,
  software switches, topologies, traffic generators).
* :mod:`repro.wireless` -- cells, mobile clients, mobility models and
  RSSI-driven handover.
* :mod:`repro.nfs` -- the network functions themselves (firewall, HTTP
  filter, DNS load balancer, rate limiter, NAT, cache, IDS, ...).
* :mod:`repro.baselines` -- VM-based NFV, centralised NFV and no-migration
  baselines used by the benchmarks.
* :mod:`repro.telemetry` / :mod:`repro.analysis` -- metrics plumbing and
  result summarisation.

Quickstart
----------
>>> from repro import GNFTestbed, TestbedConfig
>>> testbed = GNFTestbed(TestbedConfig(station_count=2))
>>> phone = testbed.add_client("phone", position=(0.0, 0.0))
>>> testbed.start(); _ = testbed.run(1.0)
>>> assignment = testbed.manager.attach_nf(phone.ip, "firewall")
>>> _ = testbed.run(5.0)
>>> assignment.state.value
'active'
"""

from repro.core import (
    Assignment,
    AssignmentState,
    GNFAgent,
    GNFDashboard,
    GNFManager,
    GNFTestbed,
    MigrationRecord,
    NFRepository,
    RoamingCoordinator,
    ServiceChain,
    TestbedConfig,
    TimeSchedule,
    TrafficSelector,
)

__version__ = "1.0.0"

__all__ = [
    "GNFTestbed",
    "TestbedConfig",
    "GNFManager",
    "GNFAgent",
    "GNFDashboard",
    "RoamingCoordinator",
    "MigrationRecord",
    "NFRepository",
    "ServiceChain",
    "TrafficSelector",
    "TimeSchedule",
    "Assignment",
    "AssignmentState",
    "__version__",
]
