"""Periodic resource collection.

A :class:`ResourceCollector` samples a set of *sources* (callables returning
``{metric_name: value}``) on a fixed interval and appends every value to a
time series in a shared registry.  Agents use one collector per station to
build the CPU / memory / traffic history the Manager's monitoring view and
the UI charts are drawn from.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.netem.simulator import PeriodicTask, Simulator
from repro.telemetry.metrics import MetricsRegistry

MetricSource = Callable[[], Dict[str, float]]


class ResourceCollector:
    """Samples registered sources into a :class:`MetricsRegistry`."""

    def __init__(
        self,
        simulator: Simulator,
        registry: Optional[MetricsRegistry] = None,
        interval_s: float = 1.0,
        name: str = "collector",
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.simulator = simulator
        self.registry = registry or MetricsRegistry(name=name)
        self.interval_s = interval_s
        self.name = name
        self._sources: Dict[str, MetricSource] = {}
        self._task: Optional[PeriodicTask] = None
        self.samples_taken = 0

    # -------------------------------------------------------------- sources

    def add_source(self, prefix: str, source: MetricSource) -> None:
        """Register a source; its metrics are stored as ``<prefix>.<metric>``."""
        self._sources[prefix] = source

    def remove_source(self, prefix: str) -> None:
        self._sources.pop(prefix, None)

    def sources(self) -> List[str]:
        return sorted(self._sources)

    # -------------------------------------------------------------- control

    def start(self) -> "ResourceCollector":
        if self._task is None:
            self._task = self.simulator.every(self.interval_s, self.sample_once, initial_delay=self.interval_s)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------- sampling

    def sample_once(self) -> Dict[str, float]:
        """Collect one sample from every source (also called by the periodic task)."""
        now = self.simulator.now
        collected: Dict[str, float] = {}
        for prefix, source in self._sources.items():
            try:
                values = source()
            except Exception:  # noqa: BLE001 - a broken source must not kill the collector
                self.registry.counter(f"{prefix}.collection_errors").increment()
                continue
            for metric_name, value in values.items():
                qualified = f"{prefix}.{metric_name}"
                self.registry.series(qualified).record(now, float(value))
                collected[qualified] = float(value)
        self.samples_taken += 1
        return collected

    def latest(self) -> Dict[str, float]:
        """Most recent value of every collected series."""
        return self.registry.snapshot()
