"""Export helpers: JSON snapshots and plain-text tables.

The UI and the benchmark harness both consume these: ``snapshot_to_json``
produces the structure a REST endpoint on the Manager would serve, and
``render_table`` prints the aligned text tables the benchmark scripts use to
report paper-style result rows.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence


def snapshot_to_json(snapshot: Mapping[str, object], indent: int = 2) -> str:
    """Serialize a (possibly nested) snapshot into deterministic JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True, default=str)


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned plain-text table.

    Used by every benchmark to print the rows/series a paper table or figure
    would contain.
    """
    rendered_rows: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row([str(header) for header in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)
