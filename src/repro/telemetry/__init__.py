"""Telemetry: counters, gauges, time series, periodic collection and export.

The demo's UI continuously shows "real-time statistics (network traffic, CPU
load, memory usage)" for every station and NF.  This package is the plumbing
behind that: Agents sample their runtime/switch/NF statistics into
:class:`~repro.telemetry.metrics.MetricsRegistry` objects, heartbeats carry
snapshots to the Manager, and :mod:`repro.telemetry.export` renders the
aggregated view the UI (and the benchmarks) consume.
"""

from repro.telemetry.metrics import Counter, Gauge, TimeSeries, MetricsRegistry
from repro.telemetry.collector import ResourceCollector
from repro.telemetry.export import snapshot_to_json, render_table
from repro.telemetry.rollup import (
    GlobalTelemetry,
    HealthRollup,
    HotspotRollup,
    RegionTelemetry,
    RollupCounters,
)

__all__ = [
    "Counter",
    "Gauge",
    "TimeSeries",
    "MetricsRegistry",
    "ResourceCollector",
    "snapshot_to_json",
    "render_table",
    "GlobalTelemetry",
    "HealthRollup",
    "HotspotRollup",
    "RegionTelemetry",
    "RollupCounters",
]
