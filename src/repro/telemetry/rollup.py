"""Streaming telemetry rollups for the federated control plane.

The pre-federation aggregation model is *pull*: ``overview()`` walks every
station's health record, every assignment and every hotspot log on each
call.  That is O(stations + assignments) per read -- fine for a testbed,
hopeless for an operator fleet where dashboards poll continuously over
millions of clients.

This module inverts it to *push*: each shard's delivery path applies its
per-tick deltas (heartbeat batch sizes, client events, notification bursts,
hotspot detections, assignment state transitions) to a small rollup node,
and every write propagates up the tree

    shard counters  ->  region aggregate  ->  global rollup

so a read at any level is a dictionary lookup over pre-aggregated state:
O(1) for counters, O(regions) to merge the per-region health/hotspot views.
Nothing here is sampled or approximate -- the rollups are exact mirrors of
the scanned state, and the federation test suite asserts byte equality
between the streaming values and a brute-force recomputation after every
canned scenario (``FederatedManager.full_scan_overview``).

Design constraints the implementation honours:

* **Determinism** -- rollup propagation is plain synchronous function calls
  on the shard delivery path; no simulator events are scheduled, so a run's
  event timeline (and therefore its :class:`~repro.scenarios.digest.MetricsDigest`)
  is identical with rollups on or off.
* **Integer exactness** -- counter deltas are ints and stay ints, so rolled
  values digest identically to the per-shard counters they mirror.
* **Float-exact liveness** -- :class:`HealthRollup` must agree with
  :class:`~repro.core.monitoring.HealthMonitor`'s ``(now - last) <= timeout``
  predicate bit-for-bit.  Deadlines in the expiry heap are rounded *down*
  one ulp, so a candidate is always re-checked with the monitor's own
  formula before being declared offline (and re-armed just past ``now`` if
  float dust fired it early).
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple


class RollupCounters:
    """One node in the counter tree; every delta propagates to the root.

    Counters are additive integers (heartbeats processed, client events,
    enabled NFs...).  ``add`` walks the parent chain, so a shard-level push
    updates its region aggregate and the global rollup in the same call --
    the "streaming" in streaming rollups.
    """

    __slots__ = ("name", "parent", "counters", "deltas_applied")

    def __init__(self, name: str, parent: Optional["RollupCounters"] = None) -> None:
        self.name = name
        self.parent = parent
        self.counters: Dict[str, int] = {}
        #: How many delta applications this node absorbed (its own plus the
        #: ones pushed up from children) -- surfaced by rollup stats.
        self.deltas_applied = 0

    def add(self, key: str, delta: int) -> None:
        node: Optional[RollupCounters] = self
        while node is not None:
            node.counters[key] = node.counters.get(key, 0) + delta
            node.deltas_applied += 1
            node = node.parent

    def get(self, key: str) -> int:
        return self.counters.get(key, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counters)


class HealthRollup:
    """Streaming station liveness for one region.

    ``record`` is O(log n) amortised per heartbeat; ``online_stations`` /
    ``offline_stations`` are O(1) when nothing changed since the last read
    (the common all-alive case) -- the sorted views are cached and only
    rebuilt when a station flips state.

    Exactness contract: a station is online iff
    ``(now - last_heartbeat) <= heartbeat_timeout_s``, the identical
    predicate :class:`~repro.core.monitoring.HealthMonitor` scans with.
    The expiry heap only *nominates* candidates (with deadlines rounded one
    ulp early, so no true expiry can hide behind float rounding); the
    monitor formula always makes the final call.
    """

    def __init__(self, heartbeat_timeout_s: float = 10.0) -> None:
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._last: Dict[str, float] = {}
        self._heap: List[Tuple[float, str, float]] = []
        self._offline: set = set()
        self._online_cache: Optional[Tuple[str, ...]] = None
        self._offline_cache: Optional[Tuple[str, ...]] = None
        #: Bumped whenever the online/offline partition changes; parents use
        #: it to key their merged caches.
        self.version = 0

    def _bump(self) -> None:
        self.version += 1
        self._online_cache = None
        self._offline_cache = None

    def record(self, station_name: str, now: float) -> None:
        """Register a heartbeat (or the initial registration) at ``now``."""
        known = station_name in self._last
        self._last[station_name] = now
        # Deadline rounded one ulp down: an addition rounds by at most half
        # an ulp, so this candidate can never fire *later* than the true
        # ``last + timeout`` instant.
        deadline = math.nextafter(now + self.heartbeat_timeout_s, -math.inf)
        heappush(self._heap, (deadline, station_name, now))
        if not known:
            self._bump()
        elif station_name in self._offline:
            self._offline.discard(station_name)
            self._bump()

    def _expire(self, now: float) -> None:
        timeout = self.heartbeat_timeout_s
        heap = self._heap
        while heap and heap[0][0] <= now:
            deadline, station_name, last = heap[0]
            heappop(heap)
            if self._last.get(station_name) != last:
                continue  # superseded by a newer heartbeat
            if now - last <= timeout:
                # Float dust fired the candidate a hair early: the monitor
                # formula still says online, so re-arm just past ``now``.
                heappush(heap, (math.nextafter(now, math.inf), station_name, last))
                continue
            if station_name not in self._offline:
                self._offline.add(station_name)
                self._bump()

    def online_stations(self, now: float) -> Tuple[str, ...]:
        self._expire(now)
        if self._online_cache is None:
            self._online_cache = tuple(sorted(set(self._last) - self._offline))
        return self._online_cache

    def offline_stations(self, now: float) -> Tuple[str, ...]:
        self._expire(now)
        if self._offline_cache is None:
            self._offline_cache = tuple(sorted(self._offline))
        return self._offline_cache

    def is_online(self, station_name: str, now: float) -> bool:
        last = self._last.get(station_name)
        return last is not None and (now - last) <= self.heartbeat_timeout_s

    def __len__(self) -> int:
        return len(self._last)


class HotspotRollup:
    """Streaming set of ever-flagged hotspot stations.

    Fed by :class:`~repro.core.monitoring.HotspotDetector`'s ``on_hotspot``
    callback at detection time, so ``stations()`` never re-scans the
    detector logs.  First sightings propagate to the parent (global) set.
    """

    __slots__ = ("parent", "_stations", "_cache")

    def __init__(self, parent: Optional["HotspotRollup"] = None) -> None:
        self.parent = parent
        self._stations: set = set()
        self._cache: Optional[Tuple[str, ...]] = None

    def record(self, station_name: str) -> None:
        if station_name in self._stations:
            return
        self._stations.add(station_name)
        self._cache = None
        if self.parent is not None:
            self.parent.record(station_name)

    def stations(self) -> List[str]:
        if self._cache is None:
            self._cache = tuple(sorted(self._stations))
        return list(self._cache)

    def __contains__(self, station_name: str) -> bool:
        return station_name in self._stations

    def __len__(self) -> int:
        return len(self._stations)


class RegionTelemetry:
    """One region's aggregation point in the rollup tree.

    A :class:`~repro.core.sharding.ShardedManager` owns one of these (its
    shards push into per-shard child counter nodes) and, when it serves as a
    region of a :class:`~repro.core.federation.FederatedManager`, the node's
    parent is the federation's :class:`GlobalTelemetry` -- every shard push
    lands in the global rollup in the same call.
    """

    def __init__(
        self,
        name: str,
        heartbeat_timeout_s: float = 10.0,
        parent: Optional["GlobalTelemetry"] = None,
    ) -> None:
        self.name = name
        self.counters = RollupCounters(name, parent=parent.counters if parent else None)
        self.health = HealthRollup(heartbeat_timeout_s)
        self.hotspots = HotspotRollup(parent=parent.hotspots if parent else None)
        self.shards: List[RollupCounters] = []

    def shard_node(self, shard_index: int) -> RollupCounters:
        """The per-shard counter node (created on first use)."""
        while len(self.shards) <= shard_index:
            self.shards.append(
                RollupCounters(f"{self.name}/shard-{len(self.shards)}", parent=self.counters)
            )
        return self.shards[shard_index]

    def stats(self) -> Dict[str, object]:
        return {
            "counters": self.counters.snapshot(),
            "deltas_applied": self.counters.deltas_applied,
            "hotspot_stations": float(len(self.hotspots)),
            "stations_tracked": float(len(self.health)),
        }


class GlobalTelemetry:
    """The federation-wide rollup root.

    Reads merge the per-region caches: O(regions) version checks when the
    fleet is stable, a rebuild only when some region's liveness partition
    actually changed.
    """

    def __init__(self) -> None:
        self.counters = RollupCounters("global")
        self.hotspots = HotspotRollup()
        self.regions: List[RegionTelemetry] = []
        self._online_cache: Optional[Tuple[Tuple[int, ...], List[str]]] = None
        self._offline_cache: Optional[Tuple[Tuple[int, ...], List[str]]] = None

    def region(self, name: str, heartbeat_timeout_s: float = 10.0) -> RegionTelemetry:
        """Create (and attach) one region's aggregation node."""
        telemetry = RegionTelemetry(name, heartbeat_timeout_s, parent=self)
        self.regions.append(telemetry)
        return telemetry

    def _merged(
        self,
        now: float,
        cache: Optional[Tuple[Tuple[int, ...], List[str]]],
        per_region,
    ) -> Tuple[Tuple[Tuple[int, ...], List[str]], List[str]]:
        # Pull each region's (cached) view first: expiry may bump versions.
        views = [per_region(region.health, now) for region in self.regions]
        versions = tuple(region.health.version for region in self.regions)
        if cache is None or cache[0] != versions:
            merged = [name for view in views for name in view]
            merged.sort()
            cache = (versions, merged)
        return cache, list(cache[1])

    def online_stations(self, now: float) -> List[str]:
        self._online_cache, merged = self._merged(
            now, self._online_cache, HealthRollup.online_stations
        )
        return merged

    def offline_stations(self, now: float) -> List[str]:
        self._offline_cache, merged = self._merged(
            now, self._offline_cache, HealthRollup.offline_stations
        )
        return merged

    def stats(self) -> Dict[str, object]:
        return {
            "counters": self.counters.snapshot(),
            "deltas_applied": self.counters.deltas_applied,
            "regions": {region.name: region.stats() for region in self.regions},
        }
