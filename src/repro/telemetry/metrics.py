"""Metric primitives: counters, gauges and bounded time series."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A value that can go up and down (e.g. memory in use)."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class TimeSeries:
    """A bounded series of (timestamp, value) samples."""

    def __init__(self, name: str, max_samples: int = 10_000, description: str = "") -> None:
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.name = name
        self.description = description
        self.max_samples = max_samples
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=max_samples)

    def record(self, timestamp: float, value: float) -> None:
        self._samples.append((timestamp, value))

    def samples(self) -> List[Tuple[float, float]]:
        return list(self._samples)

    def values(self) -> List[float]:
        return [value for _, value in self._samples]

    def latest(self) -> Optional[Tuple[float, float]]:
        return self._samples[-1] if self._samples else None

    def mean(self) -> float:
        values = self.values()
        return sum(values) / len(values) if values else 0.0

    def maximum(self) -> float:
        values = self.values()
        return max(values) if values else 0.0

    def rate_per_second(self) -> float:
        """Average rate of change between the first and last sample.

        Useful to turn cumulative byte counters into throughput.
        """
        if len(self._samples) < 2:
            return 0.0
        (t0, v0), (t1, v1) = self._samples[0], self._samples[-1]
        if t1 <= t0:
            return 0.0
        return (v1 - v0) / (t1 - t0)

    def window(self, since: float) -> List[Tuple[float, float]]:
        """Samples recorded at or after ``since``."""
        return [(t, v) for t, v in self._samples if t >= since]

    def __len__(self) -> int:
        return len(self._samples)


class MetricsRegistry:
    """A named collection of counters, gauges and time series."""

    def __init__(self, name: str = "metrics") -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name, description)
        return self._counters[name]

    def gauge(self, name: str, description: str = "") -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, description)
        return self._gauges[name]

    def series(self, name: str, max_samples: int = 10_000, description: str = "") -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name, max_samples=max_samples, description=description)
        return self._series[name]

    def counters(self) -> Dict[str, float]:
        return {name: counter.value for name, counter in self._counters.items()}

    def gauges(self) -> Dict[str, float]:
        return {name: gauge.value for name, gauge in self._gauges.items()}

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def snapshot(self) -> Dict[str, float]:
        """Flat view: counters, gauges and the latest sample of every series."""
        flat: Dict[str, float] = {}
        flat.update(self.counters())
        flat.update(self.gauges())
        for name, series in self._series.items():
            latest = series.latest()
            if latest is not None:
                flat[name] = latest[1]
        return flat
