"""Radio propagation model.

A standard log-distance path-loss model is enough for the reproduction: what
matters to GNF is *which cell a client is associated with and when handovers
happen*, not the physical layer.  The model still produces realistic RSSI
curves so the handover logic (threshold + hysteresis) behaves like a real
Wi-Fi client.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

Position = Tuple[float, float]


def distance_m(a: Position, b: Position) -> float:
    """Euclidean distance between two 2-D positions in metres."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


@dataclass
class RadioEnvironment:
    """Log-distance path loss: ``PL(d) = PL(d0) + 10 * n * log10(d / d0)``.

    Defaults approximate 2.4 GHz Wi-Fi indoors/urban (path-loss exponent 3.0,
    40 dB loss at the 1 m reference distance).
    """

    path_loss_exponent: float = 3.0
    reference_loss_db: float = 40.0
    reference_distance_m: float = 1.0
    noise_floor_dbm: float = -95.0
    #: Receiver sensitivity: the single reachability threshold shared by
    #: ``in_range``, ``max_range_m`` and ``link_rate_bps``.  A client the
    #: model calls unreachable gets PHY rate 0, not a phantom 6 Mbit/s.
    sensitivity_dbm: float = -85.0

    def path_loss_db(self, distance: float) -> float:
        """Path loss in dB at ``distance`` metres."""
        clamped = max(distance, self.reference_distance_m)
        return self.reference_loss_db + 10 * self.path_loss_exponent * math.log10(
            clamped / self.reference_distance_m
        )

    def rssi_dbm(self, tx_power_dbm: float, distance: float) -> float:
        """Received signal strength at ``distance`` metres."""
        return tx_power_dbm - self.path_loss_db(distance)

    def rssi_between(self, tx_power_dbm: float, a: Position, b: Position) -> float:
        """RSSI between two positions."""
        return self.rssi_dbm(tx_power_dbm, distance_m(a, b))

    def in_range(
        self, tx_power_dbm: float, a: Position, b: Position, sensitivity_dbm: float = None
    ) -> bool:
        """True if a receiver at ``b`` can hear a transmitter at ``a``."""
        threshold = self.sensitivity_dbm if sensitivity_dbm is None else sensitivity_dbm
        return self.rssi_between(tx_power_dbm, a, b) >= threshold

    def max_range_m(self, tx_power_dbm: float, sensitivity_dbm: float = None) -> float:
        """Distance at which RSSI drops to the receiver sensitivity."""
        threshold = self.sensitivity_dbm if sensitivity_dbm is None else sensitivity_dbm
        budget_db = tx_power_dbm - threshold - self.reference_loss_db
        if budget_db <= 0:
            return self.reference_distance_m
        return self.reference_distance_m * 10 ** (budget_db / (10 * self.path_loss_exponent))

    def snr_db(self, rssi_dbm: float) -> float:
        """Signal-to-noise ratio against the configured noise floor."""
        return rssi_dbm - self.noise_floor_dbm

    def link_rate_bps(self, rssi_dbm: float) -> float:
        """Coarse RSSI-to-PHY-rate mapping (802.11-style rate steps).

        Below the receiver sensitivity the link is unusable: rate 0, matching
        ``in_range``.  (Historically the lowest step extended down to the
        noise floor, serving 6 Mbit/s to clients ``in_range`` called
        unreachable.)
        """
        if rssi_dbm < self.sensitivity_dbm:
            return 0.0
        if rssi_dbm >= -55:
            return 150e6
        if rssi_dbm >= -65:
            return 72e6
        if rssi_dbm >= -75:
            return 36e6
        if rssi_dbm >= -82:
            return 12e6
        return 6e6
