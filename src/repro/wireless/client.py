"""Mobile clients (the demo's roaming smartphones).

A :class:`MobileClient` owns a radio interface, a position that mobility
models update over time, and the traffic-endpoint API the workload
generators in :mod:`repro.netem.trafficgen` rely on.  While a client is
between cells (mid-handover) its packets are counted as "sent while
disconnected" rather than silently lost, which the migration benchmarks use
to quantify service interruption.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.netem.host import Host, Interface
from repro.netem.packet import Packet
from repro.netem.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wireless.cell import Cell

ReceiveListener = Callable[[Packet], None]


class MobileClient(Host):
    """A roaming end device with one radio interface."""

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        ip: str,
        mac: str,
        position: Tuple[float, float] = (0.0, 0.0),
        gateway_mac: str = "02:00:00:00:00:00",
    ) -> None:
        super().__init__(simulator, name)
        self.position = position
        self.gateway_mac = gateway_mac
        self.radio_interface = Interface(name=f"{name}-radio", mac=mac, ip=ip)
        self.add_interface(self.radio_interface)
        self.associated_cell: Optional["Cell"] = None
        self._receive_listeners: List[ReceiveListener] = []
        self.packets_received = 0
        self.bytes_received = 0
        self.packets_sent_while_disconnected = 0
        self.association_history: List[Tuple[float, str]] = []

    # -------------------------------------------------- endpoint protocol

    @property
    def ip(self) -> str:  # type: ignore[override]
        assert self.radio_interface.ip is not None
        return self.radio_interface.ip

    @property
    def mac(self) -> str:
        return self.radio_interface.mac

    def send_packet(self, packet: Packet) -> bool:
        """Send a packet towards the network via the associated cell."""
        if self.associated_cell is None:
            self.packets_sent_while_disconnected += 1
            return False
        if packet.eth is not None:
            packet.eth.src = self.mac
            packet.eth.dst = self.gateway_mac
        return self.radio_interface.send(packet)

    def add_receive_listener(self, listener: ReceiveListener) -> None:
        self._receive_listeners.append(listener)

    # -------------------------------------------------------- association

    @property
    def is_connected(self) -> bool:
        return self.associated_cell is not None

    def attach_to_cell(self, cell: "Cell") -> None:
        """Called by the cell when association completes."""
        self.associated_cell = cell
        self.association_history.append((self.simulator.now, cell.name))

    def detach_from_cell(self, cell: "Cell") -> None:
        """Called by the cell when the client disassociates."""
        if self.associated_cell is cell:
            self.associated_cell = None

    @property
    def current_cell_name(self) -> Optional[str]:
        return self.associated_cell.name if self.associated_cell else None

    @property
    def current_station_name(self) -> Optional[str]:
        return self.associated_cell.station_name if self.associated_cell else None

    # ---------------------------------------------------------------- I/O

    def handle_packet(self, packet: Packet, interface: Interface) -> None:
        if packet.ip is not None and packet.ip.dst != self.ip:
            return
        self.packets_received += 1
        self.bytes_received += packet.size_bytes
        for listener in self._receive_listeners:
            listener(packet)

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, float]:
        return {
            "packets_received": float(self.packets_received),
            "bytes_received": float(self.bytes_received),
            "packets_sent_while_disconnected": float(self.packets_sent_while_disconnected),
            "handovers": float(max(0, len(self.association_history) - 1)),
        }
