"""RSSI-driven association and handover.

The :class:`HandoverManager` plays the role of the Wi-Fi roaming logic on the
demo smartphones: it periodically scans every client's signal towards every
cell and re-associates the client when a sufficiently better cell appears.
Handover events are the trigger GNF reacts to -- the roaming coordinator in
:mod:`repro.core.roaming` subscribes to them and migrates the client's NFs to
the new station.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.netem.simulator import PeriodicTask, Simulator
from repro.netem.topology import EdgeTopology
from repro.wireless.cell import Cell
from repro.wireless.client import MobileClient
from repro.wireless.radio import RadioEnvironment


@dataclass
class HandoverEvent:
    """A completed (or in-progress) handover of one client."""

    time: float
    client_name: str
    client_ip: str
    old_cell: Optional[str]
    new_cell: str
    old_station: Optional[str]
    new_station: str
    completed_at: Optional[float] = None

    @property
    def interruption_s(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.time


HandoverListener = Callable[[HandoverEvent], None]


class HandoverManager:
    """Associates clients with cells and performs RSSI-based handovers."""

    def __init__(
        self,
        simulator: Simulator,
        topology: EdgeTopology,
        radio_environment: Optional[RadioEnvironment] = None,
        scan_interval_s: float = 0.5,
        hysteresis_db: float = 4.0,
        sensitivity_dbm: float = -85.0,
        handover_delay_s: float = 0.05,
        scan_jitter_s: float = 0.0,
        jitter_rng: Optional[random.Random] = None,
    ) -> None:
        if scan_jitter_s < 0:
            raise ValueError(f"scan_jitter_s must be non-negative, got {scan_jitter_s}")
        self.simulator = simulator
        self.topology = topology
        self.radio_environment = radio_environment or RadioEnvironment()
        self.scan_interval_s = scan_interval_s
        self.scan_jitter_s = scan_jitter_s
        # Dedicated RNG so jitter draws never perturb any other random stream.
        self._jitter_rng = jitter_rng or random.Random(0)
        self.hysteresis_db = hysteresis_db
        self.sensitivity_dbm = sensitivity_dbm
        self.handover_delay_s = handover_delay_s
        self.cells: Dict[str, Cell] = {}
        self.clients: Dict[str, MobileClient] = {}
        self._clients_by_ip: Dict[str, MobileClient] = {}
        self.events: List[HandoverEvent] = []
        self._started_listeners: List[HandoverListener] = []
        self._completed_listeners: List[HandoverListener] = []
        self._scan_task: Optional[PeriodicTask] = None
        self._in_progress: Dict[str, HandoverEvent] = {}

    # ---------------------------------------------------------- membership

    def add_cell(self, cell: Cell) -> None:
        self.cells[cell.name] = cell

    def add_client(self, client: MobileClient) -> None:
        self.clients[client.name] = client
        self._clients_by_ip[client.ip] = client

    def on_handover_started(self, listener: HandoverListener) -> None:
        self._started_listeners.append(listener)

    def on_handover_completed(self, listener: HandoverListener) -> None:
        self._completed_listeners.append(listener)

    # -------------------------------------------------------------- control

    def start(self) -> "HandoverManager":
        """Associate every client with its best cell and begin periodic scans."""
        for client in self.clients.values():
            if not client.is_connected:
                self._initial_associate(client)
        if self._scan_task is None:
            jitter_fn = None
            if self.scan_jitter_s > 0:
                jitter_fn = lambda: self._jitter_rng.uniform(-self.scan_jitter_s, self.scan_jitter_s)  # noqa: E731
            self._scan_task = self.simulator.every(self.scan_interval_s, self.scan, jitter_fn=jitter_fn)
        return self

    def stop(self) -> None:
        if self._scan_task is not None:
            self._scan_task.stop()
            self._scan_task = None

    # ---------------------------------------------------------------- scans

    def best_cell_for(self, client: MobileClient) -> Optional[Cell]:
        """The cell with the strongest signal at the client's position, if audible.

        Exact RSSI ties (two equidistant cells) resolve by cell name, so the
        winner does not depend on the order cells were registered in.
        """
        best: Optional[Cell] = None
        best_rssi = float("-inf")
        for cell in self.cells.values():
            rssi = cell.rssi_to(client.position)
            if rssi < self.sensitivity_dbm:
                continue
            if best is None or rssi > best_rssi or (rssi == best_rssi and cell.name < best.name):
                best = cell
                best_rssi = rssi
        return best

    def station_link_rates(self, client_ip: str) -> Dict[str, float]:
        """Best achievable PHY rate (bps) towards each station for one client.

        The same radio model the scan loop uses, folded into a per-station
        map: for every station, the strongest of its cells' rates at the
        client's current position (0.0 when every cell is below the receiver
        sensitivity).  This is the signal the embedding layer prices so
        placement deprioritizes stations the client hears poorly.  Pure
        computation over current positions — no events, no RNG.
        """
        client = self._clients_by_ip.get(client_ip)
        if client is None:
            return {}
        rates: Dict[str, float] = {}
        for cell in self.cells.values():
            rate = self.radio_environment.link_rate_bps(cell.rssi_to(client.position))
            if rate > rates.get(cell.station_name, -1.0):
                rates[cell.station_name] = rate
        return rates

    def scan(self) -> None:
        """One scan round over every client (called periodically)."""
        for client in self.clients.values():
            if client.name in self._in_progress:
                continue
            best = self.best_cell_for(client)
            if best is None:
                continue
            current = client.associated_cell
            if current is None:
                self._initial_associate(client, best)
                continue
            if best.name == current.name:
                continue
            current_rssi = current.rssi_to(client.position)
            best_rssi = best.rssi_to(client.position)
            if best_rssi >= current_rssi + self.hysteresis_db or current_rssi < self.sensitivity_dbm:
                self._start_handover(client, current, best)

    # ------------------------------------------------------------ internals

    def _initial_associate(self, client: MobileClient, cell: Optional[Cell] = None) -> None:
        target = cell or self.best_cell_for(client)
        if target is None:
            return
        target.associate(client, self.topology.addresses.allocate_mac)
        station = self.topology.station(target.station_name)
        station.register_client(client.ip, target.name)
        self.topology.register_client(client.ip, client.mac, target.station_name)
        client.gateway_mac = self.topology.gateway_mac_for[target.station_name]

    def _start_handover(self, client: MobileClient, old_cell: Cell, new_cell: Cell) -> None:
        event = HandoverEvent(
            time=self.simulator.now,
            client_name=client.name,
            client_ip=client.ip,
            old_cell=old_cell.name,
            new_cell=new_cell.name,
            old_station=old_cell.station_name,
            new_station=new_cell.station_name,
        )
        self._in_progress[client.name] = event
        self.events.append(event)
        for listener in self._started_listeners:
            listener(event)
        # Break-before-make: detach now, attach after the handover delay.
        old_station = self.topology.station(old_cell.station_name)
        old_station.unregister_client(client.ip)
        old_cell.disassociate(client)
        self.simulator.schedule(self.handover_delay_s, self._complete_handover, client, new_cell, event)

    def _complete_handover(self, client: MobileClient, new_cell: Cell, event: HandoverEvent) -> None:
        new_cell.associate(client, self.topology.addresses.allocate_mac)
        new_station = self.topology.station(new_cell.station_name)
        new_station.register_client(client.ip, new_cell.name)
        self.topology.register_client(client.ip, client.mac, new_cell.station_name)
        client.gateway_mac = self.topology.gateway_mac_for[new_cell.station_name]
        event.completed_at = self.simulator.now
        self._in_progress.pop(client.name, None)
        for listener in self._completed_listeners:
            listener(event)

    # --------------------------------------------------------------- stats

    def handover_count(self, client_name: Optional[str] = None) -> int:
        """Number of handovers observed (optionally for one client)."""
        if client_name is None:
            return len(self.events)
        return sum(1 for event in self.events if event.client_name == client_name)

    def summary(self) -> Dict[str, float]:
        completed = [event for event in self.events if event.completed_at is not None]
        interruptions = [event.interruption_s for event in completed if event.interruption_s is not None]
        return {
            "clients": float(len(self.clients)),
            "cells": float(len(self.cells)),
            "handovers": float(len(self.events)),
            "handovers_completed": float(len(completed)),
            "mean_interruption_s": (sum(interruptions) / len(interruptions)) if interruptions else 0.0,
        }
