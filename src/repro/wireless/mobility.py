"""Client mobility models.

Mobility is the input that drives GNF's headline feature (NF roaming), so
several models are provided:

* :class:`StaticMobility` -- the client never moves (control case).
* :class:`LinearMobility` -- constant-velocity motion (the demo's "walk from
  one network to the other").
* :class:`RandomWaypointMobility` -- the classic random waypoint model.
* :class:`TraceMobility` -- replay of explicit ``(time, x, y)`` waypoints.
* :class:`CommuterMobility` -- back-and-forth motion between two anchor
  points with dwell times, approximating a user commuting between home and
  office cells; useful for long sweeps of repeated handovers.

All models update ``client.position`` on a fixed tick and can be stopped.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.netem.simulator import PeriodicTask, Simulator
from repro.wireless.client import MobileClient

Position = Tuple[float, float]


class MobilityModel:
    """Base class: subclasses implement :meth:`_advance`."""

    def __init__(self, simulator: Simulator, client: MobileClient, tick_s: float = 0.1) -> None:
        if tick_s <= 0:
            raise ValueError(f"tick_s must be positive, got {tick_s}")
        self.simulator = simulator
        self.client = client
        self.tick_s = tick_s
        self._task: Optional[PeriodicTask] = None
        self.distance_travelled_m = 0.0

    def start(self) -> "MobilityModel":
        if self._task is None:
            self._task = self.simulator.every(self.tick_s, self._tick, initial_delay=self.tick_s)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _tick(self) -> None:
        old = self.client.position
        new = self._advance(old, self.tick_s)
        self.client.position = new
        self.distance_travelled_m += math.hypot(new[0] - old[0], new[1] - old[1])

    def _advance(self, position: Position, dt: float) -> Position:
        raise NotImplementedError


class StaticMobility(MobilityModel):
    """The client stays where it is."""

    def _advance(self, position: Position, dt: float) -> Position:
        return position


class LinearMobility(MobilityModel):
    """Constant-velocity motion, optionally stopping at a destination."""

    def __init__(
        self,
        simulator: Simulator,
        client: MobileClient,
        velocity_mps: Tuple[float, float],
        destination: Optional[Position] = None,
        tick_s: float = 0.1,
    ) -> None:
        super().__init__(simulator, client, tick_s)
        self.velocity_mps = velocity_mps
        self.destination = destination
        self.arrived = False

    def _advance(self, position: Position, dt: float) -> Position:
        if self.arrived:
            return position
        new = (position[0] + self.velocity_mps[0] * dt, position[1] + self.velocity_mps[1] * dt)
        if self.destination is not None:
            remaining = math.hypot(self.destination[0] - position[0], self.destination[1] - position[1])
            step = math.hypot(self.velocity_mps[0] * dt, self.velocity_mps[1] * dt)
            if step >= remaining:
                self.arrived = True
                return self.destination
        return new


class RandomWaypointMobility(MobilityModel):
    """Random waypoint inside a rectangular area with optional pause times."""

    def __init__(
        self,
        simulator: Simulator,
        client: MobileClient,
        area: Tuple[float, float, float, float] = (0.0, 0.0, 200.0, 200.0),
        speed_mps: Tuple[float, float] = (0.5, 2.0),
        pause_s: Tuple[float, float] = (0.0, 5.0),
        seed: Optional[int] = None,
        tick_s: float = 0.1,
    ) -> None:
        super().__init__(simulator, client, tick_s)
        self.area = area
        self.speed_range = speed_mps
        self.pause_range = pause_s
        # ``None`` keeps the historical fixed seed; scenario runs thread a
        # per-client seed derived from the master seed instead.
        self._rng = random.Random(3 if seed is None else seed)
        self._target: Optional[Position] = None
        self._speed = 0.0
        self._pause_remaining = 0.0
        self.waypoints_visited = 0

    def _pick_target(self) -> None:
        x_min, y_min, x_max, y_max = self.area
        self._target = (self._rng.uniform(x_min, x_max), self._rng.uniform(y_min, y_max))
        self._speed = self._rng.uniform(*self.speed_range)

    def _advance(self, position: Position, dt: float) -> Position:
        if self._pause_remaining > 0:
            self._pause_remaining -= dt
            return position
        if self._target is None:
            self._pick_target()
        assert self._target is not None
        dx = self._target[0] - position[0]
        dy = self._target[1] - position[1]
        remaining = math.hypot(dx, dy)
        step = self._speed * dt
        if step >= remaining:
            self.waypoints_visited += 1
            self._pause_remaining = self._rng.uniform(*self.pause_range)
            reached = self._target
            self._target = None
            return reached
        scale = step / remaining
        return (position[0] + dx * scale, position[1] + dy * scale)


class TraceMobility(MobilityModel):
    """Replay explicit waypoints given as ``(time_s, x, y)`` tuples."""

    def __init__(
        self,
        simulator: Simulator,
        client: MobileClient,
        trace: Sequence[Tuple[float, float, float]],
        tick_s: float = 0.1,
    ) -> None:
        super().__init__(simulator, client, tick_s)
        if not trace:
            raise ValueError("trace must contain at least one waypoint")
        self.trace: List[Tuple[float, float, float]] = sorted(trace, key=lambda item: item[0])

    def _advance(self, position: Position, dt: float) -> Position:
        now = self.simulator.now
        previous = self.trace[0]
        following: Optional[Tuple[float, float, float]] = None
        for waypoint in self.trace:
            if waypoint[0] <= now:
                previous = waypoint
            else:
                following = waypoint
                break
        if following is None:
            return (previous[1], previous[2])
        span = following[0] - previous[0]
        if span <= 0:
            return (following[1], following[2])
        fraction = (now - previous[0]) / span
        x = previous[1] + (following[1] - previous[1]) * fraction
        y = previous[2] + (following[2] - previous[2]) * fraction
        return (x, y)


class CommuterMobility(MobilityModel):
    """Back-and-forth motion between two anchors with dwell times at each end."""

    def __init__(
        self,
        simulator: Simulator,
        client: MobileClient,
        anchor_a: Position,
        anchor_b: Position,
        speed_mps: float = 1.5,
        dwell_s: float = 20.0,
        tick_s: float = 0.1,
    ) -> None:
        super().__init__(simulator, client, tick_s)
        if speed_mps <= 0:
            raise ValueError(f"speed_mps must be positive, got {speed_mps}")
        self.anchor_a = anchor_a
        self.anchor_b = anchor_b
        self.speed_mps = speed_mps
        self.dwell_s = dwell_s
        self._heading_to_b = True
        self._dwell_remaining = 0.0
        self.trips_completed = 0

    def _advance(self, position: Position, dt: float) -> Position:
        if self._dwell_remaining > 0:
            self._dwell_remaining -= dt
            return position
        target = self.anchor_b if self._heading_to_b else self.anchor_a
        dx = target[0] - position[0]
        dy = target[1] - position[1]
        remaining = math.hypot(dx, dy)
        step = self.speed_mps * dt
        if step >= remaining:
            self._heading_to_b = not self._heading_to_b
            self._dwell_remaining = self.dwell_s
            self.trips_completed += 1
            return target
        scale = step / remaining
        return (position[0] + dx * scale, position[1] + dy * scale)
