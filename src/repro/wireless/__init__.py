"""Wireless access and client mobility substrate.

The paper's demo roams smartphones between Wi-Fi cells hosted on home
routers.  This package provides the emulated equivalent:

* :mod:`repro.wireless.radio` -- log-distance path-loss signal model,
* :mod:`repro.wireless.cell` -- access points (cells) attached to edge
  stations,
* :mod:`repro.wireless.client` -- mobile clients (smartphones) with
  positions, an associated cell and traffic endpoints,
* :mod:`repro.wireless.mobility` -- mobility models (static, linear, random
  waypoint, trace-driven, back-and-forth commuter),
* :mod:`repro.wireless.handover` -- RSSI-driven association and handover,
  which is what triggers GNF's NF roaming.
"""

from repro.wireless.radio import RadioEnvironment
from repro.wireless.cell import Cell
from repro.wireless.client import MobileClient
from repro.wireless.mobility import (
    StaticMobility,
    LinearMobility,
    RandomWaypointMobility,
    TraceMobility,
    CommuterMobility,
)
from repro.wireless.handover import HandoverManager, HandoverEvent

__all__ = [
    "RadioEnvironment",
    "Cell",
    "MobileClient",
    "StaticMobility",
    "LinearMobility",
    "RandomWaypointMobility",
    "TraceMobility",
    "CommuterMobility",
    "HandoverManager",
    "HandoverEvent",
]
