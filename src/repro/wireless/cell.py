"""Wireless cells (access points) attached to edge stations.

Each cell is hosted on (or wired to) an edge station -- in the demo the
TP-Link home router *is* both the access point and the NF host.  The cell
relays frames between its associated clients' radio links and the station's
software switch, and raises association / disassociation events that the GNF
Agent on the station reports to the Manager ("notifying the Manager of
clients' (dis)connection").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.netem.host import Host, Interface
from repro.netem.link import Link
from repro.netem.packet import Packet
from repro.netem.simulator import Simulator
from repro.wireless.radio import RadioEnvironment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wireless.client import MobileClient

AssociationListener = Callable[["MobileClient", "Cell"], None]


class Cell(Host):
    """An access point with a coverage area, wired into one edge station."""

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        station_name: str,
        position: Tuple[float, float],
        mac: str,
        tx_power_dbm: float = 20.0,
        radio_delay_s: float = 0.002,
        radio_environment: Optional[RadioEnvironment] = None,
    ) -> None:
        super().__init__(simulator, name)
        self.station_name = station_name
        self.position = position
        self.tx_power_dbm = tx_power_dbm
        self.radio_delay_s = radio_delay_s
        self.radio_environment = radio_environment or RadioEnvironment()
        self.wired_interface = Interface(name=f"{name}-wired", mac=mac)
        self.add_interface(self.wired_interface)
        #: Radio on/off switch (failure injection: a crashed station's cells
        #: stop beaconing, so clients roam away on their next scan).
        self.enabled = True
        self._client_radio_ifaces: Dict[str, Interface] = {}
        self._client_links: Dict[str, Link] = {}
        self._clients: Dict[str, "MobileClient"] = {}
        self._association_listeners: List[AssociationListener] = []
        self._disassociation_listeners: List[AssociationListener] = []
        self.frames_relayed_upstream = 0
        self.frames_relayed_downstream = 0
        self.frames_dropped = 0

    # -------------------------------------------------------- subscriptions

    def on_association(self, listener: AssociationListener) -> None:
        """Register a callback invoked when a client associates with this cell."""
        self._association_listeners.append(listener)

    def on_disassociation(self, listener: AssociationListener) -> None:
        """Register a callback invoked when a client leaves this cell."""
        self._disassociation_listeners.append(listener)

    # ------------------------------------------------------------ presence

    @property
    def associated_clients(self) -> List[str]:
        """Names of the clients currently associated."""
        return sorted(self._clients)

    def is_associated(self, client_name: str) -> bool:
        return client_name in self._clients

    def set_enabled(self, enabled: bool) -> None:
        """Turn the radio on or off (off = the cell vanishes from scans)."""
        self.enabled = enabled

    def rssi_to(self, position: Tuple[float, float]) -> float:
        """Signal strength a receiver at ``position`` would see from this cell."""
        if not self.enabled:
            return float("-inf")
        return self.radio_environment.rssi_between(self.tx_power_dbm, self.position, position)

    def associate(self, client: "MobileClient", mac_allocator: Callable[[], str]) -> None:
        """Attach a client: build its radio link and notify listeners."""
        if client.name in self._clients:
            return
        rssi = self.rssi_to(client.position)
        rate = self.radio_environment.link_rate_bps(rssi)
        if rate <= 0:
            rate = 6e6
        cell_iface = Interface(name=f"{self.name}-radio-{client.name}", mac=mac_allocator())
        self.add_interface(cell_iface)
        link = Link(
            self.simulator,
            bandwidth_bps=rate,
            delay_s=self.radio_delay_s,
            name=f"radio-{self.name}-{client.name}",
        )
        link.attach(client.radio_interface, cell_iface)
        self._client_radio_ifaces[client.name] = cell_iface
        self._client_links[client.name] = link
        self._clients[client.name] = client
        client.attach_to_cell(self)
        for listener in self._association_listeners:
            listener(client, self)

    def disassociate(self, client: "MobileClient") -> None:
        """Detach a client: tear down its radio link and notify listeners."""
        if client.name not in self._clients:
            return
        cell_iface = self._client_radio_ifaces.pop(client.name)
        link = self._client_links.pop(client.name)
        link.set_up(False)
        self.interfaces.pop(cell_iface.name, None)
        del self._clients[client.name]
        client.detach_from_cell(self)
        for listener in self._disassociation_listeners:
            listener(client, self)

    # ------------------------------------------------------------ relaying

    def handle_packet(self, packet: Packet, interface: Interface) -> None:
        if interface is self.wired_interface:
            self._relay_downstream(packet)
        else:
            self._relay_upstream(packet)

    def _relay_upstream(self, packet: Packet) -> None:
        """Radio -> wired: hand the client's packet to the station switch."""
        self.frames_relayed_upstream += 1
        self.wired_interface.send(packet)

    def _relay_downstream(self, packet: Packet) -> None:
        """Wired -> radio: deliver to the associated client owning the destination IP."""
        if packet.ip is None:
            self.frames_dropped += 1
            return
        for client_name, client in self._clients.items():
            if client.ip == packet.ip.dst:
                self.frames_relayed_downstream += 1
                self._client_radio_ifaces[client_name].send(packet)
                return
        self.frames_dropped += 1

    def summary(self) -> Dict[str, float]:
        """Per-cell statistics reported in Agent heartbeats."""
        return {
            "associated_clients": float(len(self._clients)),
            "frames_relayed_upstream": float(self.frames_relayed_upstream),
            "frames_relayed_downstream": float(self.frames_relayed_downstream),
            "frames_dropped": float(self.frames_dropped),
        }
