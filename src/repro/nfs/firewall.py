"""iptables-style stateful packet firewall.

The demo's first NF: an ordered rule chain evaluated per packet with a
configurable default policy, plus connection tracking so that replies to
connections the client initiated are always admitted (the usual
``ESTABLISHED,RELATED -j ACCEPT`` idiom).  The connection table is exported
as migratable state, so a roaming client keeps its established sessions
working after its firewall moves to the new edge station.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.netem.packet import (
    FlowKey,
    Packet,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
)
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext


class FirewallAction(enum.Enum):
    """What to do with a matching packet."""

    ACCEPT = "accept"
    DROP = "drop"


_PROTO_NAMES = {"tcp": PROTO_TCP, "udp": PROTO_UDP, "icmp": PROTO_ICMP}


@dataclass(frozen=True)
class FirewallRule:
    """One ordered rule.  ``None`` fields are wildcards.

    ``direction`` restricts the rule to upstream (client-originated) or
    downstream traffic; ports are inclusive ranges.
    """

    action: FirewallAction
    protocol: Optional[str] = None
    src_cidr: Optional[str] = None
    dst_cidr: Optional[str] = None
    dst_port_range: Optional[Tuple[int, int]] = None
    src_port_range: Optional[Tuple[int, int]] = None
    direction: Optional[Direction] = None
    comment: str = ""

    def matches(self, packet: Packet, direction: Direction) -> bool:
        if self.direction is not None and direction is not self.direction:
            return False
        if packet.ip is None:
            return False
        if self.protocol is not None:
            wanted = _PROTO_NAMES.get(self.protocol.lower())
            if wanted is None or packet.ip.protocol != wanted:
                return False
        if self.src_cidr is not None:
            if ipaddress.ip_address(packet.ip.src) not in ipaddress.ip_network(self.src_cidr):
                return False
        if self.dst_cidr is not None:
            if ipaddress.ip_address(packet.ip.dst) not in ipaddress.ip_network(self.dst_cidr):
                return False
        if self.dst_port_range is not None:
            if not isinstance(packet.l4, (TCPHeader, UDPHeader)):
                return False
            low, high = self.dst_port_range
            if not low <= packet.l4.dst_port <= high:
                return False
        if self.src_port_range is not None:
            if not isinstance(packet.l4, (TCPHeader, UDPHeader)):
                return False
            low, high = self.src_port_range
            if not low <= packet.l4.src_port <= high:
                return False
        return True

    def to_dict(self) -> Dict[str, object]:
        return {
            "action": self.action.value,
            "protocol": self.protocol,
            "src_cidr": self.src_cidr,
            "dst_cidr": self.dst_cidr,
            "dst_port_range": list(self.dst_port_range) if self.dst_port_range else None,
            "src_port_range": list(self.src_port_range) if self.src_port_range else None,
            "direction": self.direction.value if self.direction else None,
            "comment": self.comment,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FirewallRule":
        direction_value = data.get("direction")
        return cls(
            action=FirewallAction(str(data["action"])),
            protocol=data.get("protocol"),  # type: ignore[arg-type]
            src_cidr=data.get("src_cidr"),  # type: ignore[arg-type]
            dst_cidr=data.get("dst_cidr"),  # type: ignore[arg-type]
            dst_port_range=tuple(data["dst_port_range"]) if data.get("dst_port_range") else None,  # type: ignore[arg-type]
            src_port_range=tuple(data["src_port_range"]) if data.get("src_port_range") else None,  # type: ignore[arg-type]
            direction=Direction(direction_value) if direction_value else None,
            comment=str(data.get("comment", "")),
        )


class Firewall(NetworkFunction):
    """Ordered-rule firewall with connection tracking."""

    nf_type = "firewall"
    per_packet_cpu_us = 8.0
    base_state_mb = 0.5

    def __init__(
        self,
        name: str = "",
        rules: Optional[List[FirewallRule]] = None,
        default_policy: FirewallAction = FirewallAction.ACCEPT,
        stateful: bool = True,
        conntrack_limit: int = 10_000,
    ) -> None:
        super().__init__(name=name)
        self.rules: List[FirewallRule] = list(rules or [])
        self.default_policy = default_policy
        self.stateful = stateful
        self.conntrack_limit = conntrack_limit
        self._conntrack: Set[FlowKey] = set()
        self.accepted = 0
        self.dropped = 0
        self.conntrack_hits = 0

    # --------------------------------------------------------------- rules

    def add_rule(self, rule: FirewallRule, position: Optional[int] = None) -> None:
        """Append (or insert) a rule; earlier rules win."""
        if position is None:
            self.rules.append(rule)
        else:
            self.rules.insert(position, rule)

    def clear_rules(self) -> None:
        self.rules.clear()

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if packet.ip is None:
            return [packet]
        key = packet.flow_key
        # Established-connection fast path: replies to client-initiated flows.
        if (
            self.stateful
            and context.direction is Direction.DOWNSTREAM
            and key is not None
            and key.reversed() in self._conntrack
        ):
            self.conntrack_hits += 1
            self.accepted += 1
            return [packet]

        verdict = self.default_policy
        for rule in self.rules:
            if rule.matches(packet, context.direction):
                verdict = rule.action
                break

        if verdict is FirewallAction.DROP:
            self.dropped += 1
            return []

        self.accepted += 1
        if self.stateful and context.direction is Direction.UPSTREAM and key is not None:
            if len(self._conntrack) < self.conntrack_limit:
                self._conntrack.add(key)
        return [packet]

    def _process_batch(self, packets, context: ProcessingContext):
        """Vectorized batch path: one pass with hoisted state and bulk counters.

        Semantically identical to running ``_process`` per packet; the rule
        walk, conntrack membership test and verdict counters are applied with
        locals instead of attribute lookups, and the counters are committed
        once per batch.
        """
        rules = self.rules
        stateful = self.stateful
        conntrack = self._conntrack
        conntrack_limit = self.conntrack_limit
        direction = context.direction
        downstream = direction is Direction.DOWNSTREAM
        upstream = direction is Direction.UPSTREAM
        default_policy = self.default_policy
        drop = FirewallAction.DROP
        accepted = dropped = conntrack_hits = 0
        outputs: List[List[Packet]] = []
        for packet in packets:
            if packet.ip is None:
                outputs.append([packet])
                continue
            key = packet.flow_key
            if stateful and downstream and key is not None and key.reversed() in conntrack:
                conntrack_hits += 1
                accepted += 1
                outputs.append([packet])
                continue
            verdict = default_policy
            for rule in rules:
                if rule.matches(packet, direction):
                    verdict = rule.action
                    break
            if verdict is drop:
                dropped += 1
                outputs.append([])
                continue
            accepted += 1
            if stateful and upstream and key is not None and len(conntrack) < conntrack_limit:
                conntrack.add(key)
            outputs.append([packet])
        self.accepted += accepted
        self.dropped += dropped
        self.conntrack_hits += conntrack_hits
        return outputs

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "rules": [rule.to_dict() for rule in self.rules],
                "default_policy": self.default_policy.value,
                "conntrack": sorted(
                    (key.src_ip, key.dst_ip, key.protocol, key.src_port, key.dst_port)
                    for key in self._conntrack
                ),
                "accepted": self.accepted,
                "dropped": self.dropped,
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        rules = state.get("rules")
        if isinstance(rules, list):
            self.rules = [FirewallRule.from_dict(entry) for entry in rules]
        policy = state.get("default_policy")
        if isinstance(policy, str):
            self.default_policy = FirewallAction(policy)
        conntrack = state.get("conntrack")
        if isinstance(conntrack, list):
            self._conntrack = {
                FlowKey(src_ip=entry[0], dst_ip=entry[1], protocol=entry[2], src_port=entry[3], dst_port=entry[4])
                for entry in conntrack
            }
        self.accepted = int(state.get("accepted", self.accepted))
        self.dropped = int(state.get("dropped", self.dropped))

    @property
    def state_size_mb(self) -> float:
        # ~100 bytes per conntrack entry plus the rule set.
        return self.base_state_mb + len(self._conntrack) * 100 / 1e6 + len(self.rules) * 200 / 1e6

    @property
    def conntrack_size(self) -> int:
        return len(self._conntrack)

    # ----------------------------------------------------------- describe

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "rules": len(self.rules),
                "default_policy": self.default_policy.value,
                "conntrack_entries": len(self._conntrack),
                "accepted": self.accepted,
                "dropped": self.dropped,
            }
        )
        return description
