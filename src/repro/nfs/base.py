"""The network-function contract.

Every GNF network function is a packet processor with four obligations:

1. ``process(packet, context)`` returns the packets to emit (an empty list
   drops the packet; returning extra packets injects responses such as an
   HTTP 403 or a cached object).
2. It accounts its own traffic counters, which Agents include in heartbeats
   and the UI displays as per-NF statistics.
3. It may emit *notifications* ("an intrusion attempt or detected malware",
   Section 3) which the Agent relays to the Manager.
4. It can export and import its state, which is what makes stateful NF
   migration possible when the client roams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.netem.packet import Packet


class Direction(enum.Enum):
    """Which way a packet is heading relative to the client the NF serves."""

    UPSTREAM = "upstream"      # client -> network
    DOWNSTREAM = "downstream"  # network -> client


@dataclass
class ProcessingContext:
    """Per-packet context the Agent hands to the NF."""

    now: float
    direction: Direction
    client_ip: str = ""
    station_name: str = ""


@dataclass
class NFNotification:
    """An event the NF wants the provider to review (relayed Agent -> Manager)."""

    time: float
    nf_name: str
    severity: str
    message: str
    details: Dict[str, object] = field(default_factory=dict)


NotificationSink = Callable[[NFNotification], None]


class NetworkFunction:
    """Base class for every NF.

    Subclasses implement :meth:`_process` and may override
    :meth:`export_state` / :meth:`import_state` when they carry state worth
    migrating.
    """

    #: CPU cost of processing one packet on the reference (server-class) CPU.
    per_packet_cpu_us: float = 5.0
    #: Additional resident memory the function's own state occupies at start.
    base_state_mb: float = 0.5
    nf_type: str = "generic"

    def __init__(self, name: str = "") -> None:
        self.name = name or f"{self.nf_type}-nf"
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.notifications: List[NFNotification] = []
        self.notification_sink: Optional[NotificationSink] = None

    # ------------------------------------------------------------ dataplane

    def process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        """Process one packet and return the packets to emit."""
        self.packets_in += 1
        self.bytes_in += packet.size_bytes
        outputs = self._process(packet, context)
        if not outputs:
            self.packets_dropped += 1
        for output in outputs:
            self.packets_out += 1
            self.bytes_out += output.size_bytes
        return outputs

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        """Default behaviour: pass the packet through unchanged."""
        return [packet]

    def process_batch(self, packets: Sequence[Packet], context: ProcessingContext) -> List[Packet]:
        """Process a burst of same-direction packets and return the emissions.

        Counter bookkeeping is done once for the whole batch, and NFs with a
        vectorized :meth:`_process_batch` (firewall, rate limiter) amortize
        their per-packet work across the burst.  Semantics are identical to
        calling :meth:`process` on each packet in order.
        """
        packets = list(packets)
        if not packets:
            return []
        # Ingress counters are taken before processing, exactly as process()
        # does -- NFs may rewrite packets (and their sizes) in place.
        self.packets_in += len(packets)
        self.bytes_in += sum(packet.size_bytes for packet in packets)
        per_packet_outputs = self._process_batch(packets, context)
        outputs: List[Packet] = []
        for packet_outputs in per_packet_outputs:
            if not packet_outputs:
                self.packets_dropped += 1
                continue
            outputs.extend(packet_outputs)
        self.packets_out += len(outputs)
        self.bytes_out += sum(packet.size_bytes for packet in outputs)
        return outputs

    def _process_batch(
        self, packets: Sequence[Packet], context: ProcessingContext
    ) -> List[List[Packet]]:
        """Per-packet emissions for a batch; default unrolls to ``_process``.

        Vectorized NFs override this.  Implementations must preserve the exact
        per-packet semantics of ``_process`` (counter updates other than the
        base traffic counters included) and return one output list per input
        packet, in order.
        """
        return [self._process(packet, context) for packet in packets]

    # -------------------------------------------------------- notifications

    def emit_notification(
        self,
        now: float,
        severity: str,
        message: str,
        details: Optional[Dict[str, object]] = None,
    ) -> NFNotification:
        """Record (and, if a sink is attached, immediately deliver) an event."""
        notification = NFNotification(
            time=now, nf_name=self.name, severity=severity, message=message, details=details or {}
        )
        self.notifications.append(notification)
        if self.notification_sink is not None:
            self.notification_sink(notification)
        return notification

    def drain_notifications(self) -> List[NFNotification]:
        """Remove and return all queued notifications (used by Agent heartbeats)."""
        drained = list(self.notifications)
        self.notifications.clear()
        return drained

    # ----------------------------------------------------------- migration

    def export_state(self) -> Dict[str, object]:
        """Serializable state to carry across a migration.

        The base implementation exports only counters; stateful NFs override
        this to include their tables (conntrack, cache contents, buckets...).
        """
        return {"counters": self.counters()}

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore previously exported state after a migration."""
        counters = state.get("counters")
        if isinstance(counters, dict):
            self.packets_in = int(counters.get("packets_in", self.packets_in))
            self.packets_out = int(counters.get("packets_out", self.packets_out))
            self.packets_dropped = int(counters.get("packets_dropped", self.packets_dropped))
            self.bytes_in = int(counters.get("bytes_in", self.bytes_in))
            self.bytes_out = int(counters.get("bytes_out", self.bytes_out))

    @property
    def state_size_mb(self) -> float:
        """Approximate size of the migratable state (drives checkpoint size)."""
        return self.base_state_mb

    # --------------------------------------------------------------- stats

    def counters(self) -> Dict[str, int]:
        return {
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "packets_dropped": self.packets_dropped,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }

    def describe(self) -> Dict[str, object]:
        """Status document shown by the UI for this NF."""
        return {
            "name": self.name,
            "type": self.nf_type,
            "counters": self.counters(),
            "state_size_mb": self.state_size_mb,
            "pending_notifications": len(self.notifications),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"
