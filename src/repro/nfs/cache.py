"""ICN-style edge object cache.

One of the canonical edge services the paper motivates ("network services
such as firewalls, caches, rate limiters").  The cache answers repeated HTTP
requests locally from the edge station, which is exactly the latency/backhaul
saving that justifies pushing NFs to the edge; the cached objects are part of
the migratable state, so a roaming client keeps its warm cache.

Promotion beyond the original toy LRU:

* **Size-aware admission** -- objects above ``max_object_fraction`` of the
  capacity are rejected outright (one elephant must not flush the cache).
* **TTL + LFU/LRU hybrid eviction** -- expired entries are purged first,
  then the least-frequently-hit object goes, ties broken by
  least-recently-hit.
* **Per-protocol cacheability** -- requests/responses are classified by
  their ``app_protocol`` metadata (``http`` for plain TCP HTTP, ``quic``,
  ``abr``); only protocols in ``cacheable_protocols`` are admitted or
  served, so the hit rate genuinely responds to the traffic-era mix (QUIC's
  encrypted payloads are opaque to a transparent cache).
* **Backhaul accounting** -- ``backhaul_bytes_saved`` counts the response
  bytes an *edge-placed* cache kept off the station uplink; it feeds the
  ``cache.*`` telemetry source and the federation rollup.

**TTL / LRU-touch semantics** (asserted by ``tests/test_edge_cache.py``):
freshness is absolute -- an object expires ``ttl_s`` after ``stored_at``
(insertion/refresh time) and a hit never extends its lifetime.  Hits update
only ``last_hit_at`` and the per-object hit count, which order *eviction*,
not expiry.  Expiry purges count as ``expirations``; only capacity-pressure
removals count as ``evictions``.

**Placement ablation** (``placement`` config): an ``edge``-placed cache
serves hits locally, short-circuiting the uplink; a ``core``-placed cache
models the same cache beyond the backhaul -- it records the hit (the object
*was* cached at the core) but still forwards the request upstream, so the
station uplink carries the full traffic and ``backhaul_bytes_saved`` stays
zero.  Benchmark E16 measures the difference on real uplink byte counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netem.packet import HTTPRequest, HTTPResponse, Packet
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext

#: Wire-size estimate of an HTTP response beyond its body (status line +
#: headers; mirrors ``Packet._compute_size``) -- used for backhaul accounting.
_RESPONSE_OVERHEAD_BYTES = 200


@dataclass
class CachedObject:
    """One cached HTTP response body."""

    url: str
    status: int
    content_type: str
    body_bytes: int
    #: Insertion/refresh time; freshness is ``now - stored_at <= ttl_s`` and
    #: hits never move it (TTL is absolute, not sliding).
    stored_at: float
    #: Last hit time; orders LRU tie-breaking for eviction only.
    last_hit_at: float = 0.0
    #: Per-object hit count; orders LFU eviction.
    hits: int = 0


class EdgeCache(NetworkFunction):
    """Size-aware, TTL+LFU/LRU, protocol-aware edge object cache."""

    nf_type = "cache"
    per_packet_cpu_us = 20.0
    base_state_mb = 2.0

    def __init__(
        self,
        name: str = "",
        capacity_mb: float = 16.0,
        ttl_s: float = 300.0,
        cacheable_statuses: tuple = (200,),
        cacheable_protocols: tuple = ("http", "abr"),
        max_object_fraction: float = 0.25,
        placement: str = "edge",
    ) -> None:
        super().__init__(name=name)
        if capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {capacity_mb}")
        if not 0.0 < max_object_fraction <= 1.0:
            raise ValueError(
                f"max_object_fraction must be in (0, 1], got {max_object_fraction}"
            )
        if placement not in ("edge", "core"):
            raise ValueError(f"placement must be 'edge' or 'core', got {placement!r}")
        self.capacity_mb = capacity_mb
        self.ttl_s = ttl_s
        self.cacheable_statuses = tuple(cacheable_statuses)
        self.cacheable_protocols = tuple(cacheable_protocols)
        self.max_object_fraction = max_object_fraction
        self.placement = placement
        self._objects: "OrderedDict[str, CachedObject]" = OrderedDict()
        self._used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.admission_rejects = 0
        self.uncacheable_requests = 0
        self.bytes_served_from_cache = 0
        self.backhaul_bytes_saved = 0

    # --------------------------------------------------------------- cache

    @property
    def used_mb(self) -> float:
        return self._used_bytes / 1e6

    @property
    def object_count(self) -> int:
        return len(self._objects)

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def max_object_bytes(self) -> int:
        return int(self.capacity_mb * 1e6 * self.max_object_fraction)

    def _remove(self, url: str) -> CachedObject:
        cached = self._objects.pop(url)
        self._used_bytes -= cached.body_bytes
        return cached

    def _purge_expired(self, now: float) -> None:
        """Drop every stale object: freshness is ``stored_at``-based only."""
        for url in [
            url
            for url, cached in self._objects.items()
            if now - cached.stored_at > self.ttl_s
        ]:
            self._remove(url)
            self.expirations += 1

    def _evict_if_needed(self, now: float) -> None:
        # Expired entries first (they are free to drop and never count as
        # capacity evictions), then LFU with LRU tie-break until we fit.
        self._purge_expired(now)
        capacity_bytes = self.capacity_mb * 1e6
        while self._objects and self._used_bytes > capacity_bytes:
            victim = min(
                self._objects.values(), key=lambda obj: (obj.hits, obj.last_hit_at)
            )
            self._remove(victim.url)
            self.evictions += 1

    def _lookup(self, url: str, now: float) -> Optional[CachedObject]:
        cached = self._objects.get(url)
        if cached is None:
            return None
        if now - cached.stored_at > self.ttl_s:
            # Absolute TTL: hits never refreshed stored_at, so a popular but
            # stale object expires here exactly on schedule.
            self._remove(url)
            self.expirations += 1
            return None
        cached.hits += 1
        cached.last_hit_at = now
        return cached

    def _store(self, url: str, response: HTTPResponse, protocol: str, now: float) -> None:
        if response.status not in self.cacheable_statuses:
            return
        if protocol not in self.cacheable_protocols:
            return
        if response.body_bytes > self.max_object_bytes:
            self.admission_rejects += 1
            return
        existing = self._objects.get(url)
        if existing is not None:
            self._remove(url)
        self._objects[url] = CachedObject(
            url=url,
            status=response.status,
            content_type=response.content_type,
            body_bytes=response.body_bytes,
            stored_at=now,
            last_hit_at=now,
            hits=existing.hits if existing is not None else 0,
        )
        self._used_bytes += response.body_bytes
        self._evict_if_needed(now)

    @staticmethod
    def _protocol_of(packet: Packet) -> str:
        return str(packet.metadata.get("app_protocol", "http"))

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if isinstance(packet.app, HTTPRequest) and context.direction is Direction.UPSTREAM:
            protocol = self._protocol_of(packet)
            if protocol not in self.cacheable_protocols:
                # Opaque protocols (QUIC) pass straight through; they still
                # count as misses so the hit *rate* tracks the era mix.
                self.uncacheable_requests += 1
                self.misses += 1
                return [packet]
            cached = self._lookup(packet.app.url, context.now)
            if cached is None:
                self.misses += 1
                return [packet]
            self.hits += 1
            self.bytes_served_from_cache += cached.body_bytes
            if self.placement == "core":
                # The core cache sits beyond the backhaul: the hit is real,
                # but the request still crosses the uplink and the response
                # comes back over it -- no backhaul saving to account.
                return [packet]
            self.backhaul_bytes_saved += cached.body_bytes + _RESPONSE_OVERHEAD_BYTES
            return [self._response_from_cache(packet, cached, context)]
        if isinstance(packet.app, HTTPResponse) and context.direction is Direction.DOWNSTREAM:
            if packet.app.request_url:
                self._store(
                    packet.app.request_url, packet.app, self._protocol_of(packet), context.now
                )
            return [packet]
        return [packet]

    def _response_from_cache(
        self, request_packet: Packet, cached: CachedObject, context: ProcessingContext
    ) -> Packet:
        response = request_packet.copy()
        assert response.eth is not None and response.ip is not None and response.l4 is not None
        response.eth = response.eth.swapped()
        response.ip = response.ip.swapped()
        response.l4 = response.l4.swapped()  # type: ignore[union-attr]
        response.app = HTTPResponse(
            status=cached.status,
            content_type=cached.content_type,
            body_bytes=cached.body_bytes,
            request_url=cached.url,
            headers={"X-Cache": "HIT"},
        )
        response.created_at = context.now
        return response

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "capacity_mb": self.capacity_mb,
                "ttl_s": self.ttl_s,
                "cacheable_protocols": list(self.cacheable_protocols),
                "max_object_fraction": self.max_object_fraction,
                "placement": self.placement,
                "objects": [
                    {
                        "url": obj.url,
                        "status": obj.status,
                        "content_type": obj.content_type,
                        "body_bytes": obj.body_bytes,
                        "stored_at": obj.stored_at,
                        "last_hit_at": obj.last_hit_at,
                        "hits": obj.hits,
                    }
                    for obj in self._objects.values()
                ],
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "admission_rejects": self.admission_rejects,
                "uncacheable_requests": self.uncacheable_requests,
                "bytes_served_from_cache": self.bytes_served_from_cache,
                "backhaul_bytes_saved": self.backhaul_bytes_saved,
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        self.capacity_mb = float(state.get("capacity_mb", self.capacity_mb))
        self.ttl_s = float(state.get("ttl_s", self.ttl_s))
        protocols = state.get("cacheable_protocols")
        if isinstance(protocols, (list, tuple)):
            self.cacheable_protocols = tuple(str(p) for p in protocols)
        self.max_object_fraction = float(
            state.get("max_object_fraction", self.max_object_fraction)
        )
        placement = state.get("placement")
        if placement in ("edge", "core"):
            self.placement = str(placement)
        objects = state.get("objects")
        if isinstance(objects, list):
            self._objects = OrderedDict()
            self._used_bytes = 0
            for entry in objects:
                cached = CachedObject(
                    url=str(entry["url"]),
                    status=int(entry["status"]),
                    content_type=str(entry["content_type"]),
                    body_bytes=int(entry["body_bytes"]),
                    stored_at=float(entry["stored_at"]),
                    last_hit_at=float(entry.get("last_hit_at", entry["stored_at"])),
                    hits=int(entry.get("hits", 0)),
                )
                self._objects[cached.url] = cached
                self._used_bytes += cached.body_bytes
        self.hits = int(state.get("hits", self.hits))
        self.misses = int(state.get("misses", self.misses))
        self.evictions = int(state.get("evictions", self.evictions))
        self.expirations = int(state.get("expirations", self.expirations))
        self.admission_rejects = int(state.get("admission_rejects", self.admission_rejects))
        self.uncacheable_requests = int(
            state.get("uncacheable_requests", self.uncacheable_requests)
        )
        self.bytes_served_from_cache = int(
            state.get("bytes_served_from_cache", self.bytes_served_from_cache)
        )
        self.backhaul_bytes_saved = int(
            state.get("backhaul_bytes_saved", self.backhaul_bytes_saved)
        )

    @property
    def state_size_mb(self) -> float:
        return self.base_state_mb + self.used_mb

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "objects": self.object_count,
                "used_mb": self.used_mb,
                "hit_ratio": self.hit_ratio(),
                "placement": self.placement,
                "bytes_served_from_cache": self.bytes_served_from_cache,
                "backhaul_bytes_saved": self.backhaul_bytes_saved,
                "expirations": self.expirations,
                "admission_rejects": self.admission_rejects,
            }
        )
        return description
