"""Edge HTTP object cache.

One of the canonical edge services the paper motivates ("network services
such as firewalls, caches, rate limiters").  The cache answers repeated HTTP
requests locally from the edge station, which is exactly the latency/backhaul
saving that justifies pushing NFs to the edge; the cached objects are part of
the migratable state, so a roaming client keeps its warm cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netem.packet import HTTPRequest, HTTPResponse, Packet
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext


@dataclass
class CachedObject:
    """One cached HTTP response body."""

    url: str
    status: int
    content_type: str
    body_bytes: int
    stored_at: float


class EdgeCache(NetworkFunction):
    """LRU cache keyed by request URL."""

    nf_type = "cache"
    per_packet_cpu_us = 20.0
    base_state_mb = 2.0

    def __init__(
        self,
        name: str = "",
        capacity_mb: float = 16.0,
        ttl_s: float = 300.0,
        cacheable_statuses: tuple = (200,),
    ) -> None:
        super().__init__(name=name)
        if capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {capacity_mb}")
        self.capacity_mb = capacity_mb
        self.ttl_s = ttl_s
        self.cacheable_statuses = cacheable_statuses
        self._objects: "OrderedDict[str, CachedObject]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_served_from_cache = 0

    # --------------------------------------------------------------- cache

    @property
    def used_mb(self) -> float:
        return sum(obj.body_bytes for obj in self._objects.values()) / 1e6

    @property
    def object_count(self) -> int:
        return len(self._objects)

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _evict_if_needed(self) -> None:
        while self._objects and self.used_mb > self.capacity_mb:
            self._objects.popitem(last=False)
            self.evictions += 1

    def _lookup(self, url: str, now: float) -> Optional[CachedObject]:
        cached = self._objects.get(url)
        if cached is None:
            return None
        if now - cached.stored_at > self.ttl_s:
            del self._objects[url]
            return None
        self._objects.move_to_end(url)
        return cached

    def _store(self, url: str, response: HTTPResponse, now: float) -> None:
        if response.status not in self.cacheable_statuses:
            return
        self._objects[url] = CachedObject(
            url=url,
            status=response.status,
            content_type=response.content_type,
            body_bytes=response.body_bytes,
            stored_at=now,
        )
        self._objects.move_to_end(url)
        self._evict_if_needed()

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if isinstance(packet.app, HTTPRequest) and context.direction is Direction.UPSTREAM:
            cached = self._lookup(packet.app.url, context.now)
            if cached is None:
                self.misses += 1
                return [packet]
            self.hits += 1
            self.bytes_served_from_cache += cached.body_bytes
            return [self._response_from_cache(packet, cached, context)]
        if isinstance(packet.app, HTTPResponse) and context.direction is Direction.DOWNSTREAM:
            if packet.app.request_url:
                self._store(packet.app.request_url, packet.app, context.now)
            return [packet]
        return [packet]

    def _response_from_cache(
        self, request_packet: Packet, cached: CachedObject, context: ProcessingContext
    ) -> Packet:
        response = request_packet.copy()
        assert response.eth is not None and response.ip is not None and response.l4 is not None
        response.eth = response.eth.swapped()
        response.ip = response.ip.swapped()
        response.l4 = response.l4.swapped()  # type: ignore[union-attr]
        response.app = HTTPResponse(
            status=cached.status,
            content_type=cached.content_type,
            body_bytes=cached.body_bytes,
            request_url=cached.url,
            headers={"X-Cache": "HIT"},
        )
        response.created_at = context.now
        return response

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "capacity_mb": self.capacity_mb,
                "ttl_s": self.ttl_s,
                "objects": [
                    {
                        "url": obj.url,
                        "status": obj.status,
                        "content_type": obj.content_type,
                        "body_bytes": obj.body_bytes,
                        "stored_at": obj.stored_at,
                    }
                    for obj in self._objects.values()
                ],
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bytes_served_from_cache": self.bytes_served_from_cache,
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        self.capacity_mb = float(state.get("capacity_mb", self.capacity_mb))
        self.ttl_s = float(state.get("ttl_s", self.ttl_s))
        objects = state.get("objects")
        if isinstance(objects, list):
            self._objects = OrderedDict()
            for entry in objects:
                cached = CachedObject(
                    url=str(entry["url"]),
                    status=int(entry["status"]),
                    content_type=str(entry["content_type"]),
                    body_bytes=int(entry["body_bytes"]),
                    stored_at=float(entry["stored_at"]),
                )
                self._objects[cached.url] = cached
        self.hits = int(state.get("hits", self.hits))
        self.misses = int(state.get("misses", self.misses))
        self.evictions = int(state.get("evictions", self.evictions))
        self.bytes_served_from_cache = int(
            state.get("bytes_served_from_cache", self.bytes_served_from_cache)
        )

    @property
    def state_size_mb(self) -> float:
        return self.base_state_mb + self.used_mb

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "objects": self.object_count,
                "used_mb": self.used_mb,
                "hit_ratio": self.hit_ratio(),
                "bytes_served_from_cache": self.bytes_served_from_cache,
            }
        )
        return description
