"""Token-bucket rate limiter (the ``tc``-style policer mentioned in the paper).

The limiter polices the client's traffic to a configured rate with a burst
allowance.  Separate buckets can be kept per direction.  Bucket fill levels
are exported state so a roaming client cannot reset its allowance simply by
switching cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netem.packet import Packet
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext


@dataclass
class TokenBucket:
    """A classic token bucket measured in bytes."""

    rate_bytes_per_s: float
    burst_bytes: float
    tokens: float = 0.0
    last_update: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bytes_per_s <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_bytes_per_s}")
        if self.burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {self.burst_bytes}")
        if self.tokens == 0.0:
            self.tokens = self.burst_bytes

    def refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last_update)
        self.tokens = min(self.burst_bytes, self.tokens + elapsed * self.rate_bytes_per_s)
        self.last_update = now

    def try_consume(self, size_bytes: int, now: float) -> bool:
        """Refill, then consume ``size_bytes`` tokens if available."""
        self.refill(now)
        if self.tokens >= size_bytes:
            self.tokens -= size_bytes
            return True
        return False

    def to_dict(self) -> Dict[str, float]:
        return {
            "rate_bytes_per_s": self.rate_bytes_per_s,
            "burst_bytes": self.burst_bytes,
            "tokens": self.tokens,
            "last_update": self.last_update,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "TokenBucket":
        return cls(
            rate_bytes_per_s=float(data["rate_bytes_per_s"]),
            burst_bytes=float(data["burst_bytes"]),
            tokens=float(data.get("tokens", 0.0)),
            last_update=float(data.get("last_update", 0.0)),
        )


class RateLimiter(NetworkFunction):
    """Polices traffic to ``rate_bps`` with a ``burst_bytes`` allowance."""

    nf_type = "rate-limiter"
    per_packet_cpu_us = 4.0
    base_state_mb = 0.2

    def __init__(
        self,
        name: str = "",
        rate_bps: float = 5e6,
        burst_bytes: float = 64_000,
        limit_downstream: bool = True,
        limit_upstream: bool = True,
    ) -> None:
        super().__init__(name=name)
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self.limit_downstream = limit_downstream
        self.limit_upstream = limit_upstream
        rate_bytes = rate_bps / 8.0
        self._buckets: Dict[str, TokenBucket] = {
            Direction.UPSTREAM.value: TokenBucket(rate_bytes_per_s=rate_bytes, burst_bytes=burst_bytes),
            Direction.DOWNSTREAM.value: TokenBucket(rate_bytes_per_s=rate_bytes, burst_bytes=burst_bytes),
        }
        self.packets_policed = 0
        self.bytes_policed = 0

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if context.direction is Direction.UPSTREAM and not self.limit_upstream:
            return [packet]
        if context.direction is Direction.DOWNSTREAM and not self.limit_downstream:
            return [packet]
        bucket = self._buckets[context.direction.value]
        if bucket.try_consume(packet.size_bytes, context.now):
            return [packet]
        self.packets_policed += 1
        self.bytes_policed += packet.size_bytes
        return []

    def _process_batch(self, packets, context: ProcessingContext):
        """Vectorized batch path: one refill, one bulk token withdrawal.

        When the bucket covers the whole burst the batch is admitted with a
        single subtraction; otherwise the remaining tokens are consumed
        greedily in arrival order, exactly as sequential ``_process`` calls at
        the same instant would.
        """
        if context.direction is Direction.UPSTREAM and not self.limit_upstream:
            return [[packet] for packet in packets]
        if context.direction is Direction.DOWNSTREAM and not self.limit_downstream:
            return [[packet] for packet in packets]
        bucket = self._buckets[context.direction.value]
        bucket.refill(context.now)
        sizes = [packet.size_bytes for packet in packets]
        total = sum(sizes)
        if bucket.tokens >= total:
            bucket.tokens -= total
            return [[packet] for packet in packets]
        outputs: List[List[Packet]] = []
        policed = policed_bytes = 0
        for packet, size in zip(packets, sizes):
            if bucket.tokens >= size:
                bucket.tokens -= size
                outputs.append([packet])
            else:
                policed += 1
                policed_bytes += size
                outputs.append([])
        self.packets_policed += policed
        self.bytes_policed += policed_bytes
        return outputs

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "rate_bps": self.rate_bps,
                "burst_bytes": self.burst_bytes,
                "buckets": {direction: bucket.to_dict() for direction, bucket in self._buckets.items()},
                "packets_policed": self.packets_policed,
                "bytes_policed": self.bytes_policed,
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        self.rate_bps = float(state.get("rate_bps", self.rate_bps))
        self.burst_bytes = float(state.get("burst_bytes", self.burst_bytes))
        buckets = state.get("buckets")
        if isinstance(buckets, dict):
            for direction, data in buckets.items():
                if direction in self._buckets and isinstance(data, dict):
                    self._buckets[direction] = TokenBucket.from_dict(data)
        self.packets_policed = int(state.get("packets_policed", self.packets_policed))
        self.bytes_policed = int(state.get("bytes_policed", self.bytes_policed))

    def bucket_level(self, direction: Direction) -> float:
        """Remaining tokens (bytes) for a direction (used by tests and the UI)."""
        return self._buckets[direction.value].tokens

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "rate_bps": self.rate_bps,
                "packets_policed": self.packets_policed,
                "bytes_policed": self.bytes_policed,
            }
        )
        return description
