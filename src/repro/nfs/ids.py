"""Signature/anomaly intrusion detector.

Section 3: "individual NFs can relay notifications through their local Agent
to the Manager, informing the provider about ... an intrusion attempt or
detected malware."  This NF is the reproduction's source of such events:

* payloads tagged with a known malware signature raise a ``malware`` alert,
* a source contacting many distinct destination ports in a short window
  raises a ``port-scan`` alert,
* an excessive TCP SYN rate raises a ``syn-flood`` alert.

Traffic is always forwarded (detection, not prevention); alerts travel the
Agent -> Manager notification path measured by benchmark E8.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.netem.packet import Packet, TCPHeader
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext


class IntrusionDetector(NetworkFunction):
    """Detects malware signatures, port scans and SYN floods."""

    nf_type = "ids"
    per_packet_cpu_us = 25.0
    base_state_mb = 1.5

    def __init__(
        self,
        name: str = "",
        malware_signatures: Sequence[str] = ("EICAR", "evil-payload"),
        port_scan_threshold: int = 20,
        port_scan_window_s: float = 5.0,
        syn_flood_threshold: int = 100,
        syn_flood_window_s: float = 1.0,
    ) -> None:
        super().__init__(name=name)
        self.malware_signatures: Set[str] = set(malware_signatures)
        self.port_scan_threshold = port_scan_threshold
        self.port_scan_window_s = port_scan_window_s
        self.syn_flood_threshold = syn_flood_threshold
        self.syn_flood_window_s = syn_flood_window_s
        # src ip -> deque of (time, dst_port)
        self._port_history: Dict[str, Deque[Tuple[float, int]]] = defaultdict(deque)
        # src ip -> deque of SYN times
        self._syn_history: Dict[str, Deque[float]] = defaultdict(deque)
        self.alerts_raised = 0
        self.malware_detections = 0
        self.port_scan_detections = 0
        self.syn_flood_detections = 0
        self._alerted_scanners: Set[str] = set()
        self._alerted_flooders: Set[str] = set()

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if packet.ip is None:
            return [packet]
        self._check_malware(packet, context)
        self._check_port_scan(packet, context)
        self._check_syn_flood(packet, context)
        return [packet]

    def _check_malware(self, packet: Packet, context: ProcessingContext) -> None:
        signature = packet.metadata.get("payload_signature")
        if isinstance(signature, str) and signature in self.malware_signatures:
            self.malware_detections += 1
            self.alerts_raised += 1
            self.emit_notification(
                context.now,
                severity="critical",
                message=f"malware signature {signature!r} detected",
                details={"src": packet.ip.src, "dst": packet.ip.dst, "signature": signature},  # type: ignore[union-attr]
            )

    def _check_port_scan(self, packet: Packet, context: ProcessingContext) -> None:
        if not isinstance(packet.l4, TCPHeader) or packet.ip is None:
            return
        history = self._port_history[packet.ip.src]
        history.append((context.now, packet.l4.dst_port))
        cutoff = context.now - self.port_scan_window_s
        while history and history[0][0] < cutoff:
            history.popleft()
        distinct_ports = {port for _, port in history}
        if len(distinct_ports) >= self.port_scan_threshold and packet.ip.src not in self._alerted_scanners:
            self._alerted_scanners.add(packet.ip.src)
            self.port_scan_detections += 1
            self.alerts_raised += 1
            self.emit_notification(
                context.now,
                severity="warning",
                message=f"port scan from {packet.ip.src}",
                details={"src": packet.ip.src, "distinct_ports": len(distinct_ports)},
            )

    def _check_syn_flood(self, packet: Packet, context: ProcessingContext) -> None:
        if not isinstance(packet.l4, TCPHeader) or not packet.l4.syn or packet.ip is None:
            return
        history = self._syn_history[packet.ip.src]
        history.append(context.now)
        cutoff = context.now - self.syn_flood_window_s
        while history and history[0] < cutoff:
            history.popleft()
        if len(history) >= self.syn_flood_threshold and packet.ip.src not in self._alerted_flooders:
            self._alerted_flooders.add(packet.ip.src)
            self.syn_flood_detections += 1
            self.alerts_raised += 1
            self.emit_notification(
                context.now,
                severity="critical",
                message=f"SYN flood from {packet.ip.src}",
                details={"src": packet.ip.src, "syn_rate": len(history) / self.syn_flood_window_s},
            )

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "malware_signatures": sorted(self.malware_signatures),
                "alerted_scanners": sorted(self._alerted_scanners),
                "alerted_flooders": sorted(self._alerted_flooders),
                "alerts_raised": self.alerts_raised,
                "malware_detections": self.malware_detections,
                "port_scan_detections": self.port_scan_detections,
                "syn_flood_detections": self.syn_flood_detections,
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        signatures = state.get("malware_signatures")
        if isinstance(signatures, list):
            self.malware_signatures = set(str(s) for s in signatures)
        scanners = state.get("alerted_scanners")
        if isinstance(scanners, list):
            self._alerted_scanners = set(str(s) for s in scanners)
        flooders = state.get("alerted_flooders")
        if isinstance(flooders, list):
            self._alerted_flooders = set(str(s) for s in flooders)
        self.alerts_raised = int(state.get("alerts_raised", self.alerts_raised))
        self.malware_detections = int(state.get("malware_detections", self.malware_detections))
        self.port_scan_detections = int(state.get("port_scan_detections", self.port_scan_detections))
        self.syn_flood_detections = int(state.get("syn_flood_detections", self.syn_flood_detections))

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "alerts_raised": self.alerts_raised,
                "malware_detections": self.malware_detections,
                "port_scan_detections": self.port_scan_detections,
                "syn_flood_detections": self.syn_flood_detections,
            }
        )
        return description
