"""Source NAT.

Rewrites the client's private source address (and transport port) to the
station's public address on the way out, and reverses the translation for
return traffic.  The translation table is exported state: after a migration
the new station keeps honouring the old mappings so established flows keep
working -- one of the clearest demonstrations of why stateful migration
matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netem.packet import Packet, TCPHeader, UDPHeader
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext


@dataclass(frozen=True)
class NATBinding:
    """One active translation."""

    private_ip: str
    private_port: int
    public_ip: str
    public_port: int
    protocol: int


class NAT(NetworkFunction):
    """Port-translating source NAT."""

    nf_type = "nat"
    per_packet_cpu_us = 6.0
    base_state_mb = 0.3

    def __init__(
        self,
        name: str = "",
        public_ip: str = "192.0.2.1",
        port_range: Tuple[int, int] = (20_000, 60_000),
    ) -> None:
        super().__init__(name=name)
        self.public_ip = public_ip
        self.port_range = port_range
        self._next_port = port_range[0]
        # (private_ip, private_port, proto) -> public_port
        self._outbound: Dict[Tuple[str, int, int], int] = {}
        # public_port -> (private_ip, private_port, proto)
        self._inbound: Dict[int, Tuple[str, int, int]] = {}
        self.translations_created = 0
        self.packets_translated = 0
        self.untranslatable_drops = 0

    # ------------------------------------------------------------- bindings

    def _allocate_port(self) -> int:
        low, high = self.port_range
        for _ in range(high - low + 1):
            candidate = self._next_port
            self._next_port += 1
            if self._next_port > high:
                self._next_port = low
            if candidate not in self._inbound:
                return candidate
        raise RuntimeError("NAT port range exhausted")

    def _bind(self, private_ip: str, private_port: int, protocol: int) -> int:
        key = (private_ip, private_port, protocol)
        existing = self._outbound.get(key)
        if existing is not None:
            return existing
        public_port = self._allocate_port()
        self._outbound[key] = public_port
        self._inbound[public_port] = key
        self.translations_created += 1
        return public_port

    def bindings(self) -> List[NATBinding]:
        """Snapshot of the current translation table."""
        return [
            NATBinding(
                private_ip=private_ip,
                private_port=private_port,
                public_ip=self.public_ip,
                public_port=public_port,
                protocol=protocol,
            )
            for (private_ip, private_port, protocol), public_port in self._outbound.items()
        ]

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if packet.ip is None or not isinstance(packet.l4, (TCPHeader, UDPHeader)):
            return [packet]
        if context.direction is Direction.UPSTREAM:
            public_port = self._bind(packet.ip.src, packet.l4.src_port, packet.ip.protocol)
            packet.metadata["nat_original_src"] = (packet.ip.src, packet.l4.src_port)
            packet.ip.src = self.public_ip
            packet.l4.src_port = public_port
            self.packets_translated += 1
            return [packet]
        # Downstream: reverse-translate traffic addressed to the public endpoint.
        if packet.ip.dst == self.public_ip:
            key = self._inbound.get(packet.l4.dst_port)
            if key is None:
                self.untranslatable_drops += 1
                return []
            private_ip, private_port, _ = key
            packet.ip.dst = private_ip
            packet.l4.dst_port = private_port
            self.packets_translated += 1
        return [packet]

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "public_ip": self.public_ip,
                "port_range": list(self.port_range),
                "next_port": self._next_port,
                "outbound": [
                    [private_ip, private_port, protocol, public_port]
                    for (private_ip, private_port, protocol), public_port in self._outbound.items()
                ],
                "translations_created": self.translations_created,
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        self.public_ip = str(state.get("public_ip", self.public_ip))
        port_range = state.get("port_range")
        if isinstance(port_range, list) and len(port_range) == 2:
            self.port_range = (int(port_range[0]), int(port_range[1]))
        self._next_port = int(state.get("next_port", self._next_port))
        outbound = state.get("outbound")
        if isinstance(outbound, list):
            self._outbound = {}
            self._inbound = {}
            for private_ip, private_port, protocol, public_port in outbound:
                key = (str(private_ip), int(private_port), int(protocol))
                self._outbound[key] = int(public_port)
                self._inbound[int(public_port)] = key
        self.translations_created = int(state.get("translations_created", self.translations_created))

    @property
    def state_size_mb(self) -> float:
        return self.base_state_mb + len(self._outbound) * 64 / 1e6

    @property
    def binding_count(self) -> int:
        return len(self._outbound)

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "public_ip": self.public_ip,
                "bindings": len(self._outbound),
                "packets_translated": self.packets_translated,
            }
        )
        return description
