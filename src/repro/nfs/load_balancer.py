"""L4 connection load balancer.

Distributes a client's new connections towards a virtual IP across a pool of
backend servers, keeping an affinity table so every packet of an established
connection reaches the same backend and reverse-translating the responses.
The affinity table is exported state so connections survive NF roaming.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.netem.packet import Packet, TCPHeader, UDPHeader
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext


class L4LoadBalancer(NetworkFunction):
    """Round-robin / least-connections L4 load balancer for one virtual IP."""

    nf_type = "load-balancer"
    per_packet_cpu_us = 7.0
    base_state_mb = 0.5

    def __init__(
        self,
        name: str = "",
        virtual_ip: str = "198.51.100.10",
        backends: Sequence[str] = (),
        strategy: str = "round-robin",
    ) -> None:
        super().__init__(name=name)
        if strategy not in ("round-robin", "least-connections"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.virtual_ip = virtual_ip
        self.backends: List[str] = list(backends)
        self.strategy = strategy
        self._next_backend = 0
        # (client_ip, client_port, proto) -> backend ip
        self._affinity: Dict[Tuple[str, int, int], str] = {}
        self.connections_per_backend: Dict[str, int] = {backend: 0 for backend in self.backends}
        self.packets_balanced = 0

    # ------------------------------------------------------------- backends

    def add_backend(self, backend_ip: str) -> None:
        if backend_ip not in self.backends:
            self.backends.append(backend_ip)
            self.connections_per_backend.setdefault(backend_ip, 0)

    def remove_backend(self, backend_ip: str) -> None:
        if backend_ip in self.backends:
            self.backends.remove(backend_ip)

    def _choose_backend(self) -> str:
        if not self.backends:
            raise RuntimeError("load balancer has no backends")
        if self.strategy == "least-connections":
            return min(self.backends, key=lambda b: self.connections_per_backend.get(b, 0))
        backend = self.backends[self._next_backend % len(self.backends)]
        self._next_backend += 1
        return backend

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if packet.ip is None or not isinstance(packet.l4, (TCPHeader, UDPHeader)):
            return [packet]
        if context.direction is Direction.UPSTREAM and packet.ip.dst == self.virtual_ip:
            key = (packet.ip.src, packet.l4.src_port, packet.ip.protocol)
            backend = self._affinity.get(key)
            if backend is None or backend not in self.backends:
                backend = self._choose_backend()
                self._affinity[key] = backend
                self.connections_per_backend[backend] = self.connections_per_backend.get(backend, 0) + 1
            packet.metadata["lb_virtual_ip"] = self.virtual_ip
            packet.ip.dst = backend
            self.packets_balanced += 1
            return [packet]
        if context.direction is Direction.DOWNSTREAM and packet.ip.src in self.connections_per_backend:
            # Hide the backend behind the virtual IP on the way back.
            packet.ip.src = self.virtual_ip
            self.packets_balanced += 1
        return [packet]

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "virtual_ip": self.virtual_ip,
                "backends": list(self.backends),
                "strategy": self.strategy,
                "next_backend": self._next_backend,
                "affinity": [
                    [client_ip, client_port, protocol, backend]
                    for (client_ip, client_port, protocol), backend in self._affinity.items()
                ],
                "connections_per_backend": dict(self.connections_per_backend),
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        self.virtual_ip = str(state.get("virtual_ip", self.virtual_ip))
        backends = state.get("backends")
        if isinstance(backends, list):
            self.backends = [str(b) for b in backends]
        self.strategy = str(state.get("strategy", self.strategy))
        self._next_backend = int(state.get("next_backend", self._next_backend))
        affinity = state.get("affinity")
        if isinstance(affinity, list):
            self._affinity = {
                (str(entry[0]), int(entry[1]), int(entry[2])): str(entry[3]) for entry in affinity
            }
        connections = state.get("connections_per_backend")
        if isinstance(connections, dict):
            self.connections_per_backend = {str(k): int(v) for k, v in connections.items()}

    @property
    def affinity_count(self) -> int:
        return len(self._affinity)

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "virtual_ip": self.virtual_ip,
                "backends": len(self.backends),
                "affinity_entries": len(self._affinity),
                "connections_per_backend": dict(self.connections_per_backend),
            }
        )
        return description
