"""HTTP URL / content filter.

The demo's second NF.  Upstream HTTP requests whose host or path matches a
blocked entry are answered directly by the filter with a ``403 Forbidden``
response (so the client sees the block rather than a silent timeout), and
downstream responses with blocked content types are dropped.  The block list
and per-domain hit counters are exported state, so the policy follows the
client when it roams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.netem.packet import HTTPRequest, HTTPResponse, Packet
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext


def _host_matches(host: str, pattern: str) -> bool:
    """True if ``host`` equals ``pattern`` or is a subdomain of it."""
    host = host.lower().rstrip(".")
    pattern = pattern.lower().rstrip(".")
    return host == pattern or host.endswith("." + pattern)


class HTTPFilter(NetworkFunction):
    """Blocks HTTP requests by host, URL substring or response content type."""

    nf_type = "http-filter"
    per_packet_cpu_us = 15.0
    base_state_mb = 1.0

    def __init__(
        self,
        name: str = "",
        blocked_hosts: Sequence[str] = (),
        blocked_url_substrings: Sequence[str] = (),
        blocked_content_types: Sequence[str] = (),
        notify_on_block: bool = False,
    ) -> None:
        super().__init__(name=name)
        self.blocked_hosts: List[str] = list(blocked_hosts)
        self.blocked_url_substrings: List[str] = list(blocked_url_substrings)
        self.blocked_content_types: List[str] = list(blocked_content_types)
        self.notify_on_block = notify_on_block
        self.requests_seen = 0
        self.requests_blocked = 0
        self.responses_blocked = 0
        self.block_counts: Dict[str, int] = {}

    # --------------------------------------------------------------- policy

    def block_host(self, host: str) -> None:
        if host not in self.blocked_hosts:
            self.blocked_hosts.append(host)

    def unblock_host(self, host: str) -> None:
        if host in self.blocked_hosts:
            self.blocked_hosts.remove(host)

    def _is_blocked_request(self, request: HTTPRequest) -> bool:
        if any(_host_matches(request.host, blocked) for blocked in self.blocked_hosts):
            return True
        url = request.url
        return any(substring in url for substring in self.blocked_url_substrings)

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if isinstance(packet.app, HTTPRequest) and context.direction is Direction.UPSTREAM:
            self.requests_seen += 1
            if self._is_blocked_request(packet.app):
                self.requests_blocked += 1
                host = packet.app.host
                self.block_counts[host] = self.block_counts.get(host, 0) + 1
                if self.notify_on_block:
                    self.emit_notification(
                        context.now,
                        severity="info",
                        message=f"blocked HTTP request to {host}",
                        details={"url": packet.app.url, "client": context.client_ip},
                    )
                return [self._forbidden_response(packet, context)]
            return [packet]

        if isinstance(packet.app, HTTPResponse) and context.direction is Direction.DOWNSTREAM:
            if packet.app.content_type in self.blocked_content_types:
                self.responses_blocked += 1
                return []
            return [packet]

        return [packet]

    def _forbidden_response(self, request_packet: Packet, context: ProcessingContext) -> Packet:
        """Answer a blocked request with a locally generated 403."""
        assert isinstance(request_packet.app, HTTPRequest)
        response = request_packet.copy()
        assert response.eth is not None and response.ip is not None and response.l4 is not None
        response.eth = response.eth.swapped()
        response.ip = response.ip.swapped()
        response.l4 = response.l4.swapped()  # type: ignore[union-attr]
        response.app = HTTPResponse(
            status=403,
            content_type="text/html",
            body_bytes=512,
            request_url=request_packet.app.url,
        )
        response.created_at = context.now
        return response

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "blocked_hosts": list(self.blocked_hosts),
                "blocked_url_substrings": list(self.blocked_url_substrings),
                "blocked_content_types": list(self.blocked_content_types),
                "requests_seen": self.requests_seen,
                "requests_blocked": self.requests_blocked,
                "responses_blocked": self.responses_blocked,
                "block_counts": dict(self.block_counts),
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        for attribute in ("blocked_hosts", "blocked_url_substrings", "blocked_content_types"):
            value = state.get(attribute)
            if isinstance(value, list):
                setattr(self, attribute, list(value))
        self.requests_seen = int(state.get("requests_seen", self.requests_seen))
        self.requests_blocked = int(state.get("requests_blocked", self.requests_blocked))
        self.responses_blocked = int(state.get("responses_blocked", self.responses_blocked))
        counts = state.get("block_counts")
        if isinstance(counts, dict):
            self.block_counts = {str(k): int(v) for k, v in counts.items()}

    @property
    def state_size_mb(self) -> float:
        entries = len(self.blocked_hosts) + len(self.blocked_url_substrings) + len(self.block_counts)
        return self.base_state_mb + entries * 64 / 1e6

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "blocked_hosts": len(self.blocked_hosts),
                "requests_seen": self.requests_seen,
                "requests_blocked": self.requests_blocked,
                "responses_blocked": self.responses_blocked,
            }
        )
        return description
