"""Network function implementations.

The demo ships three NFs (an iptables-based packet firewall, an HTTP filter
and a DNS load balancer, Section 4); the GNF catalogue on github.com/glanf
contains several more.  This package implements them as pure packet
processors over the :mod:`repro.netem.packet` model:

* :mod:`repro.nfs.base` -- the ``NetworkFunction`` contract (process,
  notifications, exportable state for migration).
* :mod:`repro.nfs.firewall` -- ordered-rule stateful firewall.
* :mod:`repro.nfs.http_filter` -- URL / content-type filter.
* :mod:`repro.nfs.dns_loadbalancer` -- rewrites DNS answers across a backend
  pool.
* :mod:`repro.nfs.rate_limiter` -- token-bucket policer.
* :mod:`repro.nfs.nat` -- source NAT.
* :mod:`repro.nfs.cache` -- edge HTTP object cache.
* :mod:`repro.nfs.ids` -- signature/anomaly intrusion detector (the source of
  the Manager notifications described in Section 3).
* :mod:`repro.nfs.flow_monitor` -- passive per-flow statistics.
* :mod:`repro.nfs.load_balancer` -- L4 connection load balancer.
* :mod:`repro.nfs.mobile_core` -- AMF/SMF-like control NFs and a UPF-like
  user-plane NF with edge breakout (the mobile-core service bundle).

``create_nf`` instantiates an NF from the dotted class path stored in a
container image, which is how Agents turn a pulled image into a running
function.
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, Type

from repro.nfs.base import NetworkFunction, ProcessingContext, Direction, NFNotification
from repro.nfs.firewall import Firewall, FirewallRule, FirewallAction
from repro.nfs.http_filter import HTTPFilter
from repro.nfs.dns_loadbalancer import DNSLoadBalancer
from repro.nfs.rate_limiter import RateLimiter
from repro.nfs.nat import NAT
from repro.nfs.cache import EdgeCache
from repro.nfs.ids import IntrusionDetector
from repro.nfs.flow_monitor import FlowMonitor
from repro.nfs.load_balancer import L4LoadBalancer
from repro.nfs.mobile_core import AMFFunction, SMFFunction, UPFFunction

#: Human-friendly catalogue used by examples and the UI.
NF_CATALOG: Dict[str, Type[NetworkFunction]] = {
    "firewall": Firewall,
    "http-filter": HTTPFilter,
    "dns-loadbalancer": DNSLoadBalancer,
    "rate-limiter": RateLimiter,
    "nat": NAT,
    "cache": EdgeCache,
    "ids": IntrusionDetector,
    "flow-monitor": FlowMonitor,
    "load-balancer": L4LoadBalancer,
    "amf": AMFFunction,
    "smf": SMFFunction,
    "upf": UPFFunction,
}


def create_nf(class_path: str, **kwargs: Any) -> NetworkFunction:
    """Instantiate a network function from its dotted class path.

    ``class_path`` is the ``nf_class`` recorded in a container image, e.g.
    ``"repro.nfs.firewall.Firewall"``.  Keyword arguments are forwarded to
    the NF constructor (deployment-time configuration from the Manager).
    """
    module_name, _, class_name = class_path.rpartition(".")
    if not module_name:
        raise ValueError(f"invalid NF class path {class_path!r}")
    module = importlib.import_module(module_name)
    nf_class = getattr(module, class_name)
    if not issubclass(nf_class, NetworkFunction):
        raise TypeError(f"{class_path} is not a NetworkFunction")
    return nf_class(**kwargs)


__all__ = [
    "NetworkFunction",
    "ProcessingContext",
    "Direction",
    "NFNotification",
    "Firewall",
    "FirewallRule",
    "FirewallAction",
    "HTTPFilter",
    "DNSLoadBalancer",
    "RateLimiter",
    "NAT",
    "EdgeCache",
    "IntrusionDetector",
    "FlowMonitor",
    "L4LoadBalancer",
    "AMFFunction",
    "SMFFunction",
    "UPFFunction",
    "NF_CATALOG",
    "create_nf",
]
