"""Passive per-flow monitor.

The demo UI shows "real-time statistics (network traffic, CPU load, memory
usage)"; the per-client network-traffic portion comes from a monitor NF like
this one.  It never modifies traffic -- it only feeds the Agent/Manager
telemetry pipeline with per-flow counters and top-talker summaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.netem.flows import FlowTracker
from repro.netem.packet import Packet
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext


class FlowMonitor(NetworkFunction):
    """Accounts every packet into a :class:`~repro.netem.flows.FlowTracker`."""

    nf_type = "flow-monitor"
    per_packet_cpu_us = 3.0
    base_state_mb = 0.5

    def __init__(
        self,
        name: str = "",
        idle_timeout_s: float = 30.0,
        top_talker_count: int = 5,
    ) -> None:
        super().__init__(name=name)
        self.tracker = FlowTracker(idle_timeout_s=idle_timeout_s, bidirectional=True)
        self.top_talker_count = top_talker_count
        self.upstream_bytes = 0
        self.downstream_bytes = 0
        self._next_expiry_at = 0.0

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if context.now >= self._next_expiry_at:
            # Opportunistic TTL sweep on the dataplane clock, so trackers on
            # stations whose Agent collector is stopped still shed idle flows.
            self.tracker.expire_idle(context.now)
            self._next_expiry_at = context.now + self.tracker.idle_timeout_s / 2.0
        self.tracker.observe(packet, context.now)
        if context.direction is Direction.UPSTREAM:
            self.upstream_bytes += packet.size_bytes
        else:
            self.downstream_bytes += packet.size_bytes
        return [packet]

    # --------------------------------------------------------------- stats

    def top_talkers(self) -> List[Dict[str, object]]:
        """The largest flows by bytes, rendered for the UI."""
        return [
            {
                "src": flow.key.src_ip,
                "dst": flow.key.dst_ip,
                "protocol": flow.key.protocol,
                "packets": flow.packets,
                "bytes": flow.bytes,
            }
            for flow in self.tracker.top_flows(self.top_talker_count)
        ]

    def traffic_summary(self) -> Dict[str, float]:
        summary = self.tracker.snapshot()
        summary.update(
            {
                "upstream_bytes": float(self.upstream_bytes),
                "downstream_bytes": float(self.downstream_bytes),
            }
        )
        return summary

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "upstream_bytes": self.upstream_bytes,
                "downstream_bytes": self.downstream_bytes,
                "active_flows": len(self.tracker),
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        self.upstream_bytes = int(state.get("upstream_bytes", self.upstream_bytes))
        self.downstream_bytes = int(state.get("downstream_bytes", self.downstream_bytes))

    @property
    def state_size_mb(self) -> float:
        return self.base_state_mb + len(self.tracker) * 120 / 1e6

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(self.traffic_summary())
        return description
