"""DNS load balancer.

The demo's third NF.  It watches DNS answers flowing back to the client and
rewrites the A records of configured service names so that successive
resolutions are spread across a pool of backend addresses (round-robin or
weighted).  Keeping it at the edge means each cell can steer its local
clients to nearby or lightly-loaded backends.  The per-name rotation state is
exported so the rotation continues seamlessly after a migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netem.packet import DNSQuery, DNSResponse, Packet
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext


@dataclass
class BackendPool:
    """The rewrite targets for one service name."""

    name: str
    backends: List[str]
    weights: List[int] = field(default_factory=list)
    next_index: int = 0
    assignments: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.backends:
            raise ValueError(f"backend pool for {self.name!r} must not be empty")
        if self.weights and len(self.weights) != len(self.backends):
            raise ValueError("weights must align with backends")
        if not self.weights:
            self.weights = [1] * len(self.backends)
        # Expanded round-robin sequence honouring weights.
        self._sequence: List[str] = [
            backend
            for backend, weight in zip(self.backends, self.weights)
            for _ in range(max(1, weight))
        ]

    def next_backend(self) -> str:
        backend = self._sequence[self.next_index % len(self._sequence)]
        self.next_index += 1
        self.assignments[backend] = self.assignments.get(backend, 0) + 1
        return backend

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "backends": list(self.backends),
            "weights": list(self.weights),
            "next_index": self.next_index,
            "assignments": dict(self.assignments),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BackendPool":
        pool = cls(
            name=str(data["name"]),
            backends=list(data["backends"]),  # type: ignore[arg-type]
            weights=list(data.get("weights", [])),  # type: ignore[arg-type]
        )
        pool.next_index = int(data.get("next_index", 0))
        assignments = data.get("assignments", {})
        if isinstance(assignments, dict):
            pool.assignments = {str(k): int(v) for k, v in assignments.items()}
        return pool


class DNSLoadBalancer(NetworkFunction):
    """Rewrites DNS answers for configured names across backend pools."""

    nf_type = "dns-loadbalancer"
    per_packet_cpu_us = 10.0
    base_state_mb = 0.5

    def __init__(
        self,
        name: str = "",
        pools: Optional[Dict[str, Sequence[str]]] = None,
        answers_per_response: int = 1,
    ) -> None:
        super().__init__(name=name)
        self.pools: Dict[str, BackendPool] = {}
        if pools:
            for service_name, backends in pools.items():
                self.add_pool(service_name, backends)
        self.answers_per_response = answers_per_response
        self.queries_seen = 0
        self.responses_rewritten = 0

    # --------------------------------------------------------------- pools

    def add_pool(self, service_name: str, backends: Sequence[str], weights: Optional[Sequence[int]] = None) -> None:
        self.pools[service_name] = BackendPool(
            name=service_name, backends=list(backends), weights=list(weights or [])
        )

    def remove_pool(self, service_name: str) -> None:
        self.pools.pop(service_name, None)

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if isinstance(packet.app, DNSQuery) and context.direction is Direction.UPSTREAM:
            self.queries_seen += 1
            return [packet]
        if isinstance(packet.app, DNSResponse) and context.direction is Direction.DOWNSTREAM:
            pool = self.pools.get(packet.app.name)
            if pool is not None:
                rewritten = tuple(pool.next_backend() for _ in range(self.answers_per_response))
                packet.app = DNSResponse(
                    name=packet.app.name,
                    addresses=rewritten,
                    qtype=packet.app.qtype,
                    query_id=packet.app.query_id,
                    ttl=packet.app.ttl,
                )
                self.responses_rewritten += 1
            return [packet]
        return [packet]

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "pools": {service: pool.to_dict() for service, pool in self.pools.items()},
                "queries_seen": self.queries_seen,
                "responses_rewritten": self.responses_rewritten,
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        pools = state.get("pools")
        if isinstance(pools, dict):
            self.pools = {str(service): BackendPool.from_dict(data) for service, data in pools.items()}
        self.queries_seen = int(state.get("queries_seen", self.queries_seen))
        self.responses_rewritten = int(state.get("responses_rewritten", self.responses_rewritten))

    def backend_distribution(self, service_name: str) -> Dict[str, int]:
        """How many answers each backend has received for a service (LB evidence)."""
        pool = self.pools.get(service_name)
        return dict(pool.assignments) if pool else {}

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "pools": {service: len(pool.backends) for service, pool in self.pools.items()},
                "queries_seen": self.queries_seen,
                "responses_rewritten": self.responses_rewritten,
            }
        )
        return description
