"""Mobile-core network functions (AMF/SMF/UPF-shaped).

The charmed-OSM OAI bundle deploys a 5G core as per-NF operators from a
single declarative bundle; the ``mobile-core`` ServiceBundle in
:mod:`repro.core.bundles` mirrors that shape at the wireless edge.  These
are deliberately *edge-sized* analogues, not 3GPP implementations:

* :class:`AMFFunction` -- access-and-mobility control.  Tracks client
  registrations keyed by IP and emits heartbeat-style signalling
  notifications at a configurable cadence, which is the control-plane
  chatter the Manager's notification pipeline carries.
* :class:`SMFFunction` -- session management.  Maintains a per-flow
  session table that grows with traffic, so its migratable state scales
  with load (the property the rolling-upgrade bench E15 leans on).
* :class:`UPFFunction` -- the user-plane function.  With
  ``edge_breakout`` enabled, upstream traffic on the configured breakout
  ports is terminated at the station instead of traversing the backhaul
  -- the UPF-at-edge ablation the roadmap names.

All three export/import their tables, so bundle upgrades can precopy
their state through the MigrationEngine exactly like any other NF.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netem.packet import Packet
from repro.nfs.base import Direction, NetworkFunction, ProcessingContext


class AMFFunction(NetworkFunction):
    """AMF-like control NF: client registration plus periodic signalling."""

    nf_type = "amf"
    per_packet_cpu_us = 4.0
    base_state_mb = 4.0

    def __init__(
        self,
        name: str = "",
        signalling_interval_s: float = 5.0,
        registration_ttl_s: float = 120.0,
    ) -> None:
        super().__init__(name=name)
        if signalling_interval_s <= 0:
            raise ValueError(
                f"signalling_interval_s must be positive, got {signalling_interval_s}"
            )
        self.signalling_interval_s = signalling_interval_s
        self.registration_ttl_s = registration_ttl_s
        #: client_ip -> last time we saw upstream traffic from it.
        self._registrations: Dict[str, float] = {}
        self.registrations_total = 0
        self.signalling_events = 0
        self._next_signal_at = 0.0

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        client_ip = context.client_ip or (packet.ip.src if packet.ip else "")
        if client_ip and context.direction is Direction.UPSTREAM:
            if client_ip not in self._registrations:
                self.registrations_total += 1
            self._registrations[client_ip] = context.now
        if context.now >= self._next_signal_at:
            # Heartbeat-style NGAP-ish signalling: the Agent relays this to
            # the Manager like any other NF notification.
            self._expire_registrations(context.now)
            self.signalling_events += 1
            self.emit_notification(
                context.now,
                severity="info",
                message="amf-signalling",
                details={"registered": len(self._registrations)},
            )
            self._next_signal_at = context.now + self.signalling_interval_s
        return [packet]

    def _expire_registrations(self, now: float) -> None:
        expired = [
            ip
            for ip, seen_at in self._registrations.items()
            if now - seen_at > self.registration_ttl_s
        ]
        for ip in expired:
            del self._registrations[ip]

    @property
    def registered_clients(self) -> int:
        return len(self._registrations)

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "registrations": dict(self._registrations),
                "registrations_total": self.registrations_total,
                "signalling_events": self.signalling_events,
                "next_signal_at": self._next_signal_at,
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        registrations = state.get("registrations")
        if isinstance(registrations, dict):
            self._registrations = {str(ip): float(at) for ip, at in registrations.items()}
        self.registrations_total = int(state.get("registrations_total", self.registrations_total))
        self.signalling_events = int(state.get("signalling_events", self.signalling_events))
        self._next_signal_at = float(state.get("next_signal_at", self._next_signal_at))

    @property
    def state_size_mb(self) -> float:
        return self.base_state_mb + len(self._registrations) * 256 / 1e6

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "registered_clients": self.registered_clients,
                "registrations_total": self.registrations_total,
                "signalling_events": self.signalling_events,
            }
        )
        return description


class SMFFunction(NetworkFunction):
    """SMF-like control NF: a per-flow session table that grows with load."""

    nf_type = "smf"
    per_packet_cpu_us = 6.0
    base_state_mb = 16.0

    #: Approximate serialized size of one PDU session record.
    session_record_bytes = 2048

    def __init__(self, name: str = "", session_ttl_s: float = 60.0) -> None:
        super().__init__(name=name)
        self.session_ttl_s = session_ttl_s
        #: flow key -> (established_at, last_seen_at, packets).
        self._sessions: Dict[str, Tuple[float, float, int]] = {}
        self.sessions_established = 0
        self._next_expiry_at = 0.0

    # ------------------------------------------------------------ dataplane

    @staticmethod
    def _session_key(packet: Packet) -> str:
        src_port = dst_port = 0
        if packet.l4 is not None:
            src_port = packet.l4.src_port
            dst_port = packet.l4.dst_port
        src = packet.ip.src if packet.ip else ""
        dst = packet.ip.dst if packet.ip else ""
        return f"{src}:{src_port}->{dst}:{dst_port}"

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if context.now >= self._next_expiry_at:
            self._expire_sessions(context.now)
            self._next_expiry_at = context.now + self.session_ttl_s / 2.0
        key = self._session_key(packet)
        entry = self._sessions.get(key)
        if entry is None:
            self._sessions[key] = (context.now, context.now, 1)
            self.sessions_established += 1
        else:
            self._sessions[key] = (entry[0], context.now, entry[2] + 1)
        return [packet]

    def _expire_sessions(self, now: float) -> None:
        expired = [
            key
            for key, (_, last_seen, _) in self._sessions.items()
            if now - last_seen > self.session_ttl_s
        ]
        for key in expired:
            del self._sessions[key]

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------ migration

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "sessions": {key: list(entry) for key, entry in self._sessions.items()},
                "sessions_established": self.sessions_established,
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        sessions = state.get("sessions")
        if isinstance(sessions, dict):
            self._sessions = {
                str(key): (float(entry[0]), float(entry[1]), int(entry[2]))
                for key, entry in sessions.items()
            }
        self.sessions_established = int(state.get("sessions_established", self.sessions_established))

    @property
    def state_size_mb(self) -> float:
        return self.base_state_mb + len(self._sessions) * self.session_record_bytes / 1e6

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "active_sessions": self.active_sessions,
                "sessions_established": self.sessions_established,
            }
        )
        return description


class UPFFunction(NetworkFunction):
    """UPF-like user-plane NF with optional edge breakout steering.

    With ``edge_breakout`` on, upstream packets whose destination port is in
    ``breakout_ports`` terminate at the station (the packet is absorbed, as
    if a local peering/service answered it) instead of riding the backhaul.
    Byte counters split tunneled vs broken-out traffic so the backhaul
    saving is directly observable.
    """

    nf_type = "upf"
    per_packet_cpu_us = 2.0
    base_state_mb = 6.0

    def __init__(
        self,
        name: str = "",
        edge_breakout: bool = False,
        breakout_ports: tuple = (8080,),
    ) -> None:
        super().__init__(name=name)
        self.edge_breakout = edge_breakout
        self.breakout_ports = tuple(int(port) for port in breakout_ports)
        self.tunneled_packets = 0
        self.tunneled_bytes = 0
        self.breakout_packets = 0
        self.breakout_bytes = 0

    # ------------------------------------------------------------ dataplane

    def _process(self, packet: Packet, context: ProcessingContext) -> List[Packet]:
        if (
            self.edge_breakout
            and context.direction is Direction.UPSTREAM
            and packet.l4 is not None
            and packet.l4.dst_port in self.breakout_ports
        ):
            self.breakout_packets += 1
            self.breakout_bytes += packet.size_bytes
            return []
        self.tunneled_packets += 1
        self.tunneled_bytes += packet.size_bytes
        return [packet]

    # ------------------------------------------------------------ migration

    # Configuration (edge_breakout, breakout_ports) travels with the chain
    # spec, never with the state: a rolling upgrade imports v1 state into a
    # v2 instance, and must not have the old config clobber the new one.

    def export_state(self) -> Dict[str, object]:
        state = super().export_state()
        state.update(
            {
                "tunneled_packets": self.tunneled_packets,
                "tunneled_bytes": self.tunneled_bytes,
                "breakout_packets": self.breakout_packets,
                "breakout_bytes": self.breakout_bytes,
            }
        )
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        self.tunneled_packets = int(state.get("tunneled_packets", self.tunneled_packets))
        self.tunneled_bytes = int(state.get("tunneled_bytes", self.tunneled_bytes))
        self.breakout_packets = int(state.get("breakout_packets", self.breakout_packets))
        self.breakout_bytes = int(state.get("breakout_bytes", self.breakout_bytes))

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {
                "edge_breakout": self.edge_breakout,
                "breakout_ports": list(self.breakout_ports),
                "tunneled_bytes": self.tunneled_bytes,
                "breakout_bytes": self.breakout_bytes,
            }
        )
        return description
