"""Centralised ("core") NFV baseline for the edge-vs-core latency comparison.

The paper motivates edge NFs with "customized services to users at low
latency and high throughput".  The latency win materialises whenever an NF
can answer the client locally -- a cache hit, a blocked page, a DNS answer --
instead of the request travelling over the backhaul to the core.

This baseline therefore models the centralised deployment as *the same
functions sitting next to the origin servers*: the client's requests always
traverse the access + backhaul path, and any "local" answer is produced at
the core, saving nothing.  In the emulation that is equivalent to running the
workload without edge NFs (the origin already answers every request), which
is exactly how :class:`CoreNFVScenario` measures it.  The edge deployment is
measured by the same scenario class with ``edge_nf=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.chain import ServiceChain
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.trafficgen import HTTPWorkloadGenerator
from repro.wireless.mobility import StaticMobility


@dataclass
class LatencyComparison:
    """Result of one edge-vs-core run."""

    deployment: str
    mean_latency_s: float
    p95_latency_s: float
    requests: int
    responses: int
    served_locally: int


class CoreNFVScenario:
    """Runs a web workload with the NF chain at the edge or at the core."""

    def __init__(
        self,
        edge_nf: bool,
        chain: Optional[ServiceChain] = None,
        config: Optional[TestbedConfig] = None,
        request_count_target: int = 40,
        mean_think_time_s: float = 0.2,
        sites: Optional[List[str]] = None,
    ) -> None:
        self.edge_nf = edge_nf
        self.chain = chain or ServiceChain.single("cache", config={"capacity_mb": 64.0})
        self.config = config or TestbedConfig(station_count=2)
        self.request_count_target = request_count_target
        self.mean_think_time_s = mean_think_time_s
        self.sites = sites or ["cdn.example.com"]
        self.deployment_name = "edge" if edge_nf else "core"

    def run(self, duration_s: float = 60.0) -> LatencyComparison:
        """Run the workload and summarise per-request latency."""
        testbed = GNFTestbed(self.config)
        client = testbed.add_client("latency-client", position=(0.0, 0.0))
        StaticMobility(testbed.simulator, client).start()
        testbed.start()
        testbed.run(1.0)

        if self.edge_nf:
            testbed.manager.attach_chain(client.ip, self.chain)
            testbed.run(5.0)

        workload = HTTPWorkloadGenerator(
            testbed.simulator,
            client,
            server_ip=testbed.server_ip,
            sites=self.sites,
            # Repeated paths so an edge cache actually gets hits.
            paths=["/index.html", "/article"],
            mean_think_time_s=self.mean_think_time_s,
        )
        workload.start()
        testbed.run(duration_s)
        workload.stop()

        rtts = sorted(workload.rtts)
        served_locally = 0
        if self.edge_nf:
            deployment = testbed.agents[
                testbed.manager.assignments_for_client(client.ip)[0].station_name
            ].deployment_for_client(client.ip)
            if deployment is not None:
                cache_nf = deployment.nf_by_type("cache")
                if cache_nf is not None:
                    served_locally = int(getattr(cache_nf.nf, "hits", 0))
        mean_latency = sum(rtts) / len(rtts) if rtts else 0.0
        p95 = rtts[int(0.95 * (len(rtts) - 1))] if rtts else 0.0
        return LatencyComparison(
            deployment=self.deployment_name,
            mean_latency_s=mean_latency,
            p95_latency_s=p95,
            requests=workload.packets_sent,
            responses=workload.responses_received,
            served_locally=served_locally,
        )
