"""Comparison baselines.

The paper's claims are comparative: containers vs. "resource-hungry Virtual
Machines", edge placement vs. centralised deployment, roaming NFs vs. NFs
that stay put.  Each baseline here makes one of those comparisons measurable:

* :mod:`repro.baselines.vm_nfv` -- VM-based NFV (ClickOS/VM-style footprint
  and boot times) on the same stations, for the instantiation-latency and
  density benchmarks (E2, E3).
* :mod:`repro.baselines.core_nfv` -- NFs deployed centrally next to the
  origin servers instead of at the edge, for the latency benchmark (E4).
* :mod:`repro.baselines.no_migration` -- edge NFV without function roaming:
  the chain stays on the original station when the client roams, for the
  migration benchmark (E5).
"""

from repro.baselines.vm_nfv import VMNFVBaseline, vm_image_for
from repro.baselines.core_nfv import CoreNFVScenario
from repro.baselines.no_migration import NoMigrationCoordinator

__all__ = [
    "VMNFVBaseline",
    "vm_image_for",
    "CoreNFVScenario",
    "NoMigrationCoordinator",
]
