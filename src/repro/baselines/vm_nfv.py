"""VM-based NFV baseline.

Section 2: existing NF platforms "either rely on specialised hypervisors or
utilise commodity x86 servers using resource-hungry Virtual Machines,
preventing their use in future wide-area and 5G networks where high network
function density and mobility is paramount".

This baseline runs the *same* NF catalogue through the same
:class:`~repro.containers.runtime.ContainerRuntime` engine but parameterised
like a hypervisor: guest images of hundreds of MB, per-instance memory
reservations of hundreds of MB (a guest kernel + userspace per NF) and boot
times measured in tens of seconds.  Benchmarks E2 (instantiation latency) and
E3 (NF density per host) compare it against the container figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.containers.cgroups import AdmissionError, ResourceAccount, ResourceRequest
from repro.containers.image import ContainerImage, ImageRegistry
from repro.containers.runtime import ContainerRuntime, RuntimeTimings
from repro.netem.simulator import Simulator
from repro.netem.topology import StationProfile

#: Per-NF-type VM sizing: (image size MB, guest memory MB).
VM_SIZING: Dict[str, Tuple[float, float]] = {
    "firewall": (350.0, 256.0),
    "http-filter": (400.0, 384.0),
    "dns-loadbalancer": (350.0, 256.0),
    "rate-limiter": (300.0, 256.0),
    "nat": (300.0, 256.0),
    "cache": (450.0, 512.0),
    "ids": (500.0, 512.0),
    "flow-monitor": (300.0, 256.0),
    "load-balancer": (350.0, 256.0),
}

DEFAULT_VM_SIZING: Tuple[float, float] = (400.0, 384.0)


def vm_image_for(nf_type: str) -> ContainerImage:
    """Build the VM guest image equivalent of an NF container image."""
    image_size_mb, memory_mb = VM_SIZING.get(nf_type, DEFAULT_VM_SIZING)
    return ContainerImage.build(
        name=f"vm/{nf_type}",
        size_mb=image_size_mb,
        nf_class=f"repro.nfs.{nf_type.replace('-', '_')}",
        default_memory_mb=memory_mb,
        default_cpu_shares=1024,
        layer_count=1,
        description=f"full guest image packaging the {nf_type} NF",
    )


class VMNFVBaseline:
    """A VM-based NFV host with the same external API as the container runtime."""

    def __init__(
        self,
        simulator: Simulator,
        profile: Optional[StationProfile] = None,
        pull_bandwidth_bps: float = 100e6,
        hypervisor_overhead_mb: float = 512.0,
    ) -> None:
        self.simulator = simulator
        self.profile = profile or StationProfile.server_class()
        registry = ImageRegistry(name="vm-image-store")
        for nf_type in VM_SIZING:
            registry.push(vm_image_for(nf_type))
        # The hypervisor itself consumes a fixed slice of the host.
        reserved = min(hypervisor_overhead_mb, self.profile.memory_mb * 0.5)
        resources = ResourceAccount(
            cpu_mhz=self.profile.cpu_mhz,
            memory_mb=self.profile.memory_mb,
            system_reserved_mb=reserved,
        )
        cpu_scale = 2.5 if self.profile.name == "router-class" else 1.0
        self.runtime = ContainerRuntime(
            simulator,
            name=f"vm-nfv-{self.profile.name}",
            resources=resources,
            registry=registry,
            timings=RuntimeTimings.for_vms(cpu_scale=cpu_scale),
            pull_bandwidth_bps=pull_bandwidth_bps,
            per_container_overhead_mb=64.0,  # per-VM device model / QEMU overhead
        )
        self._instance_counter = 0

    # ------------------------------------------------------------ operations

    def supports(self, nf_type: str) -> bool:
        return nf_type in VM_SIZING

    def instantiate(self, nf_type: str, warm: bool = True) -> Tuple[object, float]:
        """Create and boot one NF VM; returns (vm, total latency in seconds).

        ``warm=False`` forces an image pull from the VM image store first.
        """
        image = vm_image_for(nf_type)
        if warm:
            self.runtime.cache_image(image)
        resolved, pull_time = self.runtime.ensure_image(image.reference)
        self._instance_counter += 1
        vm = self.runtime.create(resolved, name=f"vm-{nf_type}-{self._instance_counter}")
        boot_time = self.runtime.start(vm)
        return vm, pull_time + boot_time

    def max_density(self, nf_type: str) -> int:
        """How many NF VMs of this type fit on the host before admission fails."""
        image = vm_image_for(nf_type)
        self.runtime.cache_image(image)
        count = 0
        while True:
            try:
                self._instance_counter += 1
                self.runtime.create(image, name=f"density-{nf_type}-{self._instance_counter}")
                count += 1
            except AdmissionError:
                return count

    def utilization(self) -> Dict[str, float]:
        return self.runtime.utilization()
