"""Edge NFV without function roaming.

The counterfactual to the paper's headline feature: NFs are deployed at the
edge but stay on the station where they were first instantiated.  When the
client roams, its traffic enters the new station (which has no steering rules
for it) and bypasses the chain entirely -- policy coverage is silently lost.

:class:`NoMigrationCoordinator` plugs into the Manager exactly where the real
:class:`~repro.core.roaming.RoamingCoordinator` would, but instead of
migrating it only records the coverage loss, so benchmark E5 can quantify the
difference (packets processed by the chain before vs. after the handover,
and policy violations such as blocked pages that suddenly load).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.api import ClientEvent
from repro.core.manager import Assignment, GNFManager
from repro.netem.simulator import Simulator


@dataclass
class CoverageLossRecord:
    """One handover after which the client's chain no longer sees its traffic."""

    assignment_id: str
    client_ip: str
    stranded_station: str
    new_station: str
    lost_at: float


class NoMigrationCoordinator:
    """A roaming coordinator that never migrates (the no-roaming baseline)."""

    strategy = "no-migration"

    def __init__(self, simulator: Simulator, manager: GNFManager) -> None:
        self.simulator = simulator
        self.manager = manager
        self.records: List[CoverageLossRecord] = []
        manager.roaming = self  # type: ignore[assignment]

    # The Manager calls these exactly like it calls the real coordinator.

    def handle_client_disconnected(self, assignment: Assignment, event: ClientEvent) -> None:
        """Nothing to prepare: the chain will simply be left behind."""

    def handle_client_reconnected(self, assignment: Assignment, event: ClientEvent) -> None:
        """No staged roaming state to drop."""

    def assignment_released(self, assignment_id: str) -> None:
        """No staged roaming state to drop."""

    def shutdown(self) -> None:
        """Nothing periodic to stop."""

    def handle_client_connected(self, assignment: Assignment, event: ClientEvent) -> None:
        """Record that the chain is now stranded on the old station."""
        self.records.append(
            CoverageLossRecord(
                assignment_id=assignment.assignment_id,
                client_ip=assignment.client_ip,
                stranded_station=assignment.station_name,
                new_station=event.station_name,
                lost_at=self.simulator.now,
            )
        )

    # --------------------------------------------------------------- metrics

    def stranded_assignments(self) -> List[str]:
        return sorted({record.assignment_id for record in self.records})

    def coverage_loss_events(self) -> int:
        return len(self.records)

    def summary(self) -> Dict[str, float]:
        return {
            "coverage_loss_events": float(len(self.records)),
            "stranded_assignments": float(len(self.stranded_assignments())),
        }
