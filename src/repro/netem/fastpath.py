"""Flow-cached fast path for the station software switch.

The slow path of :class:`~repro.netem.switch.SoftwareSwitch` is the classic
OpenFlow pipeline: every packet is deferred by a scheduled forwarding-delay
event and then walked down the priority :class:`~repro.netem.flowtable
.FlowTable` rule by rule.  That is faithful but expensive -- at line rate the
per-packet event churn and the linear ``Match`` evaluation dominate the whole
emulation.  This module provides the OVS-style microflow cache that turns the
common case into a dictionary hit:

* :class:`FlowKey` -- every header field a :class:`~repro.netem.flowtable
  .Match` can test, extracted **once** per packet.  Two packets with equal
  keys are guaranteed to hit the same highest-priority rule as long as the
  table has not changed.
* :class:`CompiledVerdict` -- a rule's action list compiled down to integer
  opcodes, stamped with the flow-table generation it was derived from.
* :class:`FlowCache` -- the key -> verdict map.  Entries self-invalidate when
  the table generation moves on (rule install/remove), which is what keeps
  roaming correct: a migration removes the old station's steering rules, the
  generation bumps, and every stale verdict dies on its next lookup.
* :class:`PacketBatch` -- a burst of packets processed as one unit so links,
  switches and NFs can amortize their per-packet simulator events.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro.netem.flowtable import ActionType, FlowRule
from repro.netem.packet import Packet, TCPHeader, UDPHeader

# Integer opcodes the switch interprets when applying a cached verdict.  They
# mirror ActionType but avoid per-packet enum identity checks on the hot path.
OP_OUTPUT = 0
OP_DROP = 1
OP_FLOOD = 2
OP_SET_ETH_DST = 3
OP_SET_ETH_SRC = 4
OP_SET_IP_DST = 5
OP_SET_IP_SRC = 6
OP_SET_METADATA = 7

_PORT_HEADERS = (TCPHeader, UDPHeader)
_tuple_new = tuple.__new__

_OPCODES = {
    ActionType.OUTPUT: OP_OUTPUT,
    ActionType.DROP: OP_DROP,
    ActionType.FLOOD: OP_FLOOD,
    ActionType.SET_ETH_DST: OP_SET_ETH_DST,
    ActionType.SET_ETH_SRC: OP_SET_ETH_SRC,
    ActionType.SET_IP_DST: OP_SET_IP_DST,
    ActionType.SET_IP_SRC: OP_SET_IP_SRC,
    ActionType.SET_METADATA: OP_SET_METADATA,
}


class FlowKey(NamedTuple):
    """Everything a flow-table ``Match`` can test, extracted once per packet.

    ``metadata`` only carries the keys some installed rule actually references
    (the table tracks that set), so unrelated packet metadata -- probe tags,
    timestamps -- does not fragment the cache.
    """

    in_port: int
    eth_src: Optional[str]
    eth_dst: Optional[str]
    ip_src: Optional[str]
    ip_dst: Optional[str]
    ip_proto: Optional[int]
    l4_src_port: Optional[int]
    l4_dst_port: Optional[int]
    metadata: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def extract(
        cls,
        packet: Packet,
        in_port: int,
        metadata_keys: Tuple[str, ...] = (),
    ) -> "FlowKey":
        # Built with tuple.__new__ to skip NamedTuple argument plumbing --
        # this runs once per packet per switch traversal.
        eth = packet.eth
        ip = packet.ip
        l4 = packet.l4
        if isinstance(l4, _PORT_HEADERS):
            src_port: Optional[int] = l4.src_port
            dst_port: Optional[int] = l4.dst_port
        else:
            src_port = dst_port = None
        if not metadata_keys:
            meta: Tuple[Tuple[str, object], ...] = ()
        elif len(metadata_keys) == 1:
            key = metadata_keys[0]
            meta = ((key, packet.metadata.get(key)),)
        else:
            packet_metadata = packet.metadata
            meta = tuple((key, packet_metadata.get(key)) for key in metadata_keys)
        if ip is not None:
            fields = (
                in_port,
                eth.src if eth is not None else None,
                eth.dst if eth is not None else None,
                ip.src,
                ip.dst,
                ip.protocol,
                src_port,
                dst_port,
                meta,
            )
        else:
            fields = (
                in_port,
                eth.src if eth is not None else None,
                eth.dst if eth is not None else None,
                None,
                None,
                None,
                src_port,
                dst_port,
                meta,
            )
        return _tuple_new(cls, fields)


class CompiledVerdict:
    """A flow rule's action list compiled for cache replay.

    The verdict keeps a reference to the originating rule so per-rule
    packet/byte counters stay accurate on cache hits, and carries the table
    generation it was compiled under so it can be recognised as stale.
    """

    __slots__ = ("rule", "generation", "ops", "hits", "fast_port", "fast_meta")

    def __init__(self, rule: FlowRule, generation: int) -> None:
        self.rule = rule
        self.generation = generation
        self.ops: Tuple[Tuple[int, object], ...] = tuple(
            (_OPCODES[action.action_type], int(action.value))  # type: ignore[arg-type]
            if action.action_type is ActionType.OUTPUT
            else (_OPCODES[action.action_type], action.value)
            for action in rule.actions
        )
        self.hits = 0
        # The overwhelmingly common GNF verdict shapes -- plain output, and
        # set-one-metadata-then-output (chain steering) -- are pre-decoded so
        # the batch hot loop can replay them without opcode dispatch.
        self.fast_port: Optional[int] = None
        self.fast_meta: Optional[Tuple[str, object]] = None
        ops = self.ops
        if len(ops) == 1 and ops[0][0] == OP_OUTPUT:
            self.fast_port = ops[0][1]  # type: ignore[assignment]
        elif len(ops) == 2 and ops[0][0] == OP_SET_METADATA and ops[1][0] == OP_OUTPUT:
            meta = ops[0][1]
            try:
                hash(meta)  # the batch path groups by (port, meta)
            except TypeError:
                pass
            else:
                self.fast_meta = meta  # type: ignore[assignment]
                self.fast_port = ops[1][1]  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CompiledVerdict(rule={self.rule.rule_id}, gen={self.generation}, hits={self.hits})"


class FlowCache:
    """Generation-stamped microflow cache (the OVS exact-match cache idiom).

    ``lookup`` returns a verdict only while its generation matches the live
    flow table's; anything older is evicted on sight.  Capacity is bounded
    with FIFO eviction -- the cache is an accelerator, never a correctness
    dependency.
    """

    def __init__(self, name: str = "flow-cache", capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._entries: Dict[FlowKey, CompiledVerdict] = {}
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.invalidations = 0
        self.evictions = 0
        self.flushes = 0

    # -------------------------------------------------------------- hot path

    def lookup(self, key: FlowKey, generation: int) -> Optional[CompiledVerdict]:
        """Return the cached verdict for ``key`` if it is still current."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.generation != generation:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        entry.hits += 1
        return entry

    def store(self, key: FlowKey, verdict: CompiledVerdict) -> CompiledVerdict:
        """Insert (or refresh) a verdict, evicting the oldest entry when full."""
        entries = self._entries
        if key not in entries and len(entries) >= self.capacity:
            entries.pop(next(iter(entries)))
            self.evictions += 1
        entries[key] = verdict
        self.insertions += 1
        return verdict

    # ---------------------------------------------------------- invalidation

    def flush(self) -> int:
        """Drop every entry (e.g. on switch reconfiguration); returns the count."""
        count = len(self._entries)
        self._entries.clear()
        self.flushes += count
        return count

    def flush_ip(self, ip: str) -> int:
        """Drop every entry whose key touches ``ip`` (roaming invalidation)."""
        return self.flush_where(lambda key: key.ip_src == ip or key.ip_dst == ip)

    def flush_where(self, predicate: Callable[[FlowKey], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns the count."""
        stale = [key for key in self._entries if predicate(key)]
        for key in stale:
            del self._entries[key]
        self.flushes += len(stale)
        return len(stale)

    # ----------------------------------------------------------------- stats

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counter snapshot (exported through the telemetry collector)."""
        return {
            "entries": float(len(self._entries)),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "insertions": float(self.insertions),
            "invalidations": float(self.invalidations),
            "evictions": float(self.evictions),
            "flushes": float(self.flushes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FlowCache({self.name!r}, entries={len(self._entries)}, hit_rate={self.hit_rate:.2f})"


class PacketBatch:
    """A burst of packets moved through the data plane as one unit.

    Links serialize a whole batch under a single deliver event, switches
    classify it in one pass, and NFs process it through ``process_batch`` --
    cutting the per-packet heap churn that dominates the slow path.
    """

    __slots__ = ("packets",)

    def __init__(self, packets: Optional[Iterable[Packet]] = None) -> None:
        self.packets: List[Packet] = list(packets) if packets is not None else []

    def append(self, packet: Packet) -> None:
        self.packets.append(packet)

    def extend(self, packets: Iterable[Packet]) -> None:
        self.packets.extend(packets)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __bool__(self) -> bool:
        return bool(self.packets)

    @property
    def size_bytes(self) -> int:
        """Total on-the-wire size of the batch."""
        return sum(packet.size_bytes for packet in self.packets)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PacketBatch({len(self.packets)} packets, {self.size_bytes}B)"
