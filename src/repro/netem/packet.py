"""Explicit packet model used across the emulated dataplane.

The paper's NFs (iptables firewall, HTTP filter, DNS load balancer) match and
modify specific header fields, so packets here carry structured Ethernet,
IPv4 and transport headers plus optional HTTP / DNS application payloads.
Sizes are tracked in bytes so links can model serialization delay and the
telemetry subsystem can report the same "network traffic" statistics the demo
UI shows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

# Protocol numbers mirror IANA assignments so firewall rules read naturally.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

BROADCAST_MAC = "ff:ff:ff:ff:ff:ff"

ETHERNET_HEADER_BYTES = 14
IPV4_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
ICMP_HEADER_BYTES = 8

_packet_ids = itertools.count(1)


@dataclass
class EthernetHeader:
    """Layer-2 header."""

    src: str
    dst: str
    ethertype: int = ETHERTYPE_IPV4

    def swapped(self) -> "EthernetHeader":
        """Return a copy with source and destination exchanged."""
        return EthernetHeader(src=self.dst, dst=self.src, ethertype=self.ethertype)


@dataclass
class IPv4Header:
    """Layer-3 header (only the fields the NFs and switches inspect)."""

    src: str
    dst: str
    protocol: int = PROTO_TCP
    ttl: int = 64
    dscp: int = 0

    def swapped(self) -> "IPv4Header":
        return IPv4Header(src=self.dst, dst=self.src, protocol=self.protocol, ttl=64, dscp=self.dscp)


@dataclass
class TCPHeader:
    """Simplified TCP header: ports plus the flags firewalls care about."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    syn: bool = False
    fin: bool = False
    rst: bool = False
    ack_flag: bool = False

    def swapped(self) -> "TCPHeader":
        return TCPHeader(
            src_port=self.dst_port,
            dst_port=self.src_port,
            seq=self.ack,
            ack=self.seq,
            ack_flag=True,
        )


@dataclass
class UDPHeader:
    """Simplified UDP header."""

    src_port: int
    dst_port: int

    def swapped(self) -> "UDPHeader":
        return UDPHeader(src_port=self.dst_port, dst_port=self.src_port)


@dataclass
class ICMPHeader:
    """ICMP echo header (used by the latency probes in the benchmarks)."""

    icmp_type: int = 8  # echo request
    code: int = 0
    identifier: int = 0
    sequence: int = 0

    def reply(self) -> "ICMPHeader":
        return ICMPHeader(icmp_type=0, code=0, identifier=self.identifier, sequence=self.sequence)


@dataclass
class HTTPRequest:
    """Application payload for web traffic (what the HTTP filter inspects)."""

    method: str
    host: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body_bytes: int = 0

    @property
    def url(self) -> str:
        return f"http://{self.host}{self.path}"


@dataclass
class HTTPResponse:
    """Application payload for web responses."""

    status: int
    content_type: str = "text/html"
    body_bytes: int = 0
    headers: Dict[str, str] = field(default_factory=dict)
    request_url: str = ""


@dataclass
class DNSQuery:
    """DNS question (what the DNS load balancer rewrites answers for)."""

    name: str
    qtype: str = "A"
    query_id: int = 0


@dataclass
class DNSResponse:
    """DNS answer."""

    name: str
    addresses: Tuple[str, ...] = ()
    qtype: str = "A"
    query_id: int = 0
    ttl: int = 60


TransportHeader = Union[TCPHeader, UDPHeader, ICMPHeader]
ApplicationPayload = Union[HTTPRequest, HTTPResponse, DNSQuery, DNSResponse, None]


@dataclass(frozen=True)
class FlowKey:
    """Bidirectional-unaware five-tuple identifying a flow."""

    src_ip: str
    dst_ip: str
    protocol: int
    src_port: int = 0
    dst_port: int = 0

    def reversed(self) -> "FlowKey":
        return FlowKey(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def canonical(self) -> "FlowKey":
        """Direction-independent representation (smallest endpoint first)."""
        forward = (self.src_ip, self.src_port)
        backward = (self.dst_ip, self.dst_port)
        if forward <= backward:
            return self
        return self.reversed()


class Packet:
    """A single packet traversing the emulated network.

    Packets are mutable on purpose: NFs rewrite headers (NAT, DNS load
    balancer) exactly as their real counterparts would.  ``copy()`` produces
    a deep-enough clone for fan-out situations (e.g. flooding).

    ``size_bytes`` is computed lazily and cached -- it is consulted many
    times per hop (port counters, link serialization, NF accounting) and
    recomputing it dominated the data plane.  In-place *field* rewrites
    (addresses, ports, TTL) never change the size; replacing ``app`` or
    ``payload_bytes`` does and invalidates the cache through their setters.
    Swapping a header object for one of the same type (``swapped()`` /
    ``reply()``) is size-neutral by construction.
    """

    __slots__ = (
        "packet_id",
        "eth",
        "ip",
        "l4",
        "_app",
        "_payload_bytes",
        "_size_cache",
        "created_at",
        "metadata",
        "hops",
    )

    def __init__(
        self,
        eth: Optional[EthernetHeader] = None,
        ip: Optional[IPv4Header] = None,
        l4: Optional[TransportHeader] = None,
        app: ApplicationPayload = None,
        payload_bytes: int = 0,
        created_at: float = 0.0,
    ) -> None:
        self.packet_id = next(_packet_ids)
        self.eth = eth
        self.ip = ip
        self.l4 = l4
        self._app = app
        self._payload_bytes = payload_bytes
        self._size_cache: Optional[int] = None
        self.created_at = created_at
        self.metadata: Dict[str, object] = {}
        self.hops = 0

    # -------------------------------------------------------------- size

    @property
    def app(self) -> ApplicationPayload:
        return self._app

    @app.setter
    def app(self, value: ApplicationPayload) -> None:
        self._app = value
        self._size_cache = None

    @property
    def payload_bytes(self) -> int:
        return self._payload_bytes

    @payload_bytes.setter
    def payload_bytes(self, value: int) -> None:
        self._payload_bytes = value
        self._size_cache = None

    @property
    def size_bytes(self) -> int:
        """Total on-the-wire size, derived from present headers + payload."""
        cached = self._size_cache
        if cached is None:
            cached = self._size_cache = self._compute_size()
        return cached

    def _compute_size(self) -> int:
        size = self._payload_bytes
        if self.eth is not None:
            size += ETHERNET_HEADER_BYTES
        if self.ip is not None:
            size += IPV4_HEADER_BYTES
        if isinstance(self.l4, TCPHeader):
            size += TCP_HEADER_BYTES
        elif isinstance(self.l4, UDPHeader):
            size += UDP_HEADER_BYTES
        elif isinstance(self.l4, ICMPHeader):
            size += ICMP_HEADER_BYTES
        app = self._app
        if isinstance(app, HTTPRequest):
            size += 200 + app.body_bytes  # request line + headers estimate
        elif isinstance(app, HTTPResponse):
            size += 200 + app.body_bytes
        elif isinstance(app, (DNSQuery, DNSResponse)):
            size += 48
        return max(size, 64)

    # ------------------------------------------------------------- helpers

    @property
    def flow_key(self) -> Optional[FlowKey]:
        """Five-tuple of the packet, or ``None`` for non-IP packets."""
        if self.ip is None:
            return None
        src_port = dst_port = 0
        if isinstance(self.l4, (TCPHeader, UDPHeader)):
            src_port = self.l4.src_port
            dst_port = self.l4.dst_port
        return FlowKey(
            src_ip=self.ip.src,
            dst_ip=self.ip.dst,
            protocol=self.ip.protocol,
            src_port=src_port,
            dst_port=dst_port,
        )

    @property
    def is_tcp(self) -> bool:
        return isinstance(self.l4, TCPHeader)

    @property
    def is_udp(self) -> bool:
        return isinstance(self.l4, UDPHeader)

    @property
    def is_icmp(self) -> bool:
        return isinstance(self.l4, ICMPHeader)

    def copy(self) -> "Packet":
        """Clone the packet (new identity, copied headers and metadata)."""
        clone = Packet(
            eth=replace(self.eth) if self.eth is not None else None,
            ip=replace(self.ip) if self.ip is not None else None,
            l4=replace(self.l4) if self.l4 is not None else None,
            app=replace(self.app) if self.app is not None else None,
            payload_bytes=self.payload_bytes,
            created_at=self.created_at,
        )
        clone.metadata = dict(self.metadata)
        clone.hops = self.hops
        return clone

    def decrement_ttl(self) -> bool:
        """Decrement the IP TTL; returns False if the packet must be dropped."""
        if self.ip is None:
            return True
        self.ip.ttl -= 1
        return self.ip.ttl > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        proto = {PROTO_TCP: "TCP", PROTO_UDP: "UDP", PROTO_ICMP: "ICMP"}.get(
            self.ip.protocol if self.ip else -1, "?"
        )
        if self.ip is None:
            return f"Packet(#{self.packet_id}, L2 only)"
        ports = ""
        if isinstance(self.l4, (TCPHeader, UDPHeader)):
            ports = f":{self.l4.src_port}->:{self.l4.dst_port}"
        return (
            f"Packet(#{self.packet_id}, {proto} {self.ip.src}->{self.ip.dst}{ports}, "
            f"{self.size_bytes}B)"
        )


# --------------------------------------------------------------------------
# Packet construction helpers used by traffic generators, NFs and tests.
# --------------------------------------------------------------------------


def make_tcp_packet(
    src_ip: str,
    dst_ip: str,
    src_port: int,
    dst_port: int,
    payload_bytes: int = 0,
    src_mac: str = "00:00:00:00:00:01",
    dst_mac: str = "00:00:00:00:00:02",
    app: ApplicationPayload = None,
    syn: bool = False,
    created_at: float = 0.0,
) -> Packet:
    """Build a TCP packet with sensible defaults."""
    return Packet(
        eth=EthernetHeader(src=src_mac, dst=dst_mac),
        ip=IPv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_TCP),
        l4=TCPHeader(src_port=src_port, dst_port=dst_port, syn=syn),
        app=app,
        payload_bytes=payload_bytes,
        created_at=created_at,
    )


def make_udp_packet(
    src_ip: str,
    dst_ip: str,
    src_port: int,
    dst_port: int,
    payload_bytes: int = 0,
    src_mac: str = "00:00:00:00:00:01",
    dst_mac: str = "00:00:00:00:00:02",
    app: ApplicationPayload = None,
    created_at: float = 0.0,
) -> Packet:
    """Build a UDP packet with sensible defaults."""
    return Packet(
        eth=EthernetHeader(src=src_mac, dst=dst_mac),
        ip=IPv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_UDP),
        l4=UDPHeader(src_port=src_port, dst_port=dst_port),
        app=app,
        payload_bytes=payload_bytes,
        created_at=created_at,
    )


def make_icmp_echo(
    src_ip: str,
    dst_ip: str,
    identifier: int = 0,
    sequence: int = 0,
    src_mac: str = "00:00:00:00:00:01",
    dst_mac: str = "00:00:00:00:00:02",
    created_at: float = 0.0,
) -> Packet:
    """Build an ICMP echo request (used by latency probes)."""
    return Packet(
        eth=EthernetHeader(src=src_mac, dst=dst_mac),
        ip=IPv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_ICMP),
        l4=ICMPHeader(identifier=identifier, sequence=sequence),
        payload_bytes=56,
        created_at=created_at,
    )


def make_http_request(
    src_ip: str,
    dst_ip: str,
    host: str,
    path: str = "/",
    method: str = "GET",
    src_port: int = 49152,
    dst_port: int = 80,
    created_at: float = 0.0,
) -> Packet:
    """Build an HTTP request packet."""
    return make_tcp_packet(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        app=HTTPRequest(method=method, host=host, path=path),
        created_at=created_at,
    )


def make_http_response(
    request: Packet,
    status: int = 200,
    body_bytes: int = 10_000,
    content_type: str = "text/html",
    created_at: float = 0.0,
) -> Packet:
    """Build the HTTP response matching ``request`` (headers swapped).

    The request may ride TCP (classic HTTP) or UDP (QUIC-style HTTP): the
    response reuses the request's transport with the ports swapped either way.
    """
    if not isinstance(request.app, HTTPRequest):
        raise ValueError("make_http_response() needs a packet carrying an HTTPRequest")
    if not isinstance(request.l4, (TCPHeader, UDPHeader)):
        raise ValueError("make_http_response() needs a TCP or UDP transport header")
    assert request.eth is not None and request.ip is not None
    return Packet(
        eth=request.eth.swapped(),
        ip=request.ip.swapped(),
        l4=request.l4.swapped(),
        app=HTTPResponse(
            status=status,
            content_type=content_type,
            body_bytes=body_bytes,
            request_url=request.app.url,
        ),
        payload_bytes=0,
        created_at=created_at,
    )


#: Conventional QUIC (HTTP/3) server port.
QUIC_PORT = 443


def make_quic_request(
    src_ip: str,
    dst_ip: str,
    host: str,
    path: str = "/",
    connection_id: int = 0,
    method: str = "GET",
    src_port: int = 51000,
    dst_port: int = QUIC_PORT,
    zero_rtt: bool = False,
    created_at: float = 0.0,
) -> Packet:
    """Build a QUIC-style HTTP request: an :class:`HTTPRequest` over UDP/443.

    QUIC flows are identified by their connection ID, not their 5-tuple, so
    the ID travels in ``metadata["quic_cid"]`` -- NAT/firewall NFs keyed on
    the 5-tuple see a *new* flow after a port migration while the application
    session (and any cache key) is unchanged.  ``metadata["app_protocol"]``
    is ``"quic"`` so protocol-aware NFs (the edge cache's per-protocol
    cacheability) can tell it apart from TCP HTTP.
    """
    packet = make_udp_packet(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        app=HTTPRequest(method=method, host=host, path=path),
        created_at=created_at,
    )
    packet.metadata["app_protocol"] = "quic"
    packet.metadata["quic_cid"] = connection_id
    if zero_rtt:
        packet.metadata["quic_zero_rtt"] = True
    return packet


def make_dns_query(
    src_ip: str,
    dst_ip: str,
    name: str,
    query_id: int = 0,
    src_port: int = 53000,
    created_at: float = 0.0,
) -> Packet:
    """Build a DNS query packet (UDP/53)."""
    return make_udp_packet(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=53,
        app=DNSQuery(name=name, query_id=query_id),
        created_at=created_at,
    )


def make_dns_response(
    query: Packet,
    addresses: Tuple[str, ...],
    ttl: int = 60,
    created_at: float = 0.0,
) -> Packet:
    """Build the DNS answer for ``query`` (headers swapped)."""
    if not isinstance(query.app, DNSQuery):
        raise ValueError("make_dns_response() needs a packet carrying a DNSQuery")
    assert query.eth is not None and query.ip is not None and isinstance(query.l4, UDPHeader)
    return Packet(
        eth=query.eth.swapped(),
        ip=query.ip.swapped(),
        l4=query.l4.swapped(),
        app=DNSResponse(
            name=query.app.name,
            addresses=tuple(addresses),
            query_id=query.app.query_id,
            ttl=ttl,
        ),
        created_at=created_at,
    )
