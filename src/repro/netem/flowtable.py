"""Priority match/action flow table for the station software switch.

GNF Agents attach NFs to a *subset of a client's traffic* by installing flow
rules that steer matching packets through the NF container's ingress veth and
back out of its egress veth ("transparent traffic handling" in the paper).
The flow table here follows OpenFlow conventions closely enough that the
installed rules read like the ones a real deployment would use: priority
ordering, wildcardable match fields, per-rule packet/byte counters, and a
cookie used to group rules belonging to the same client/NF assignment so the
Agent can remove them atomically.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netem.packet import Packet, TCPHeader, UDPHeader


class ActionType(enum.Enum):
    """Supported flow actions."""

    OUTPUT = "output"
    DROP = "drop"
    FLOOD = "flood"
    SET_ETH_DST = "set_eth_dst"
    SET_ETH_SRC = "set_eth_src"
    SET_IP_DST = "set_ip_dst"
    SET_IP_SRC = "set_ip_src"
    SET_METADATA = "set_metadata"


@dataclass(frozen=True)
class Action:
    """A single action; ``value`` is the output port, field value, or tag."""

    action_type: ActionType
    value: object = None

    @classmethod
    def output(cls, port: int) -> "Action":
        return cls(ActionType.OUTPUT, port)

    @classmethod
    def drop(cls) -> "Action":
        return cls(ActionType.DROP)

    @classmethod
    def flood(cls) -> "Action":
        return cls(ActionType.FLOOD)

    @classmethod
    def set_metadata(cls, key: str, value: object) -> "Action":
        return cls(ActionType.SET_METADATA, (key, value))


@dataclass(frozen=True)
class Match:
    """Wildcardable match over the packet fields GNF steering needs.

    ``None`` means "don't care".  ``metadata`` entries must all be present
    (and equal) in the packet's metadata dict for the match to succeed, which
    is how chain steering tags packets that already traversed an NF.
    """

    in_port: Optional[int] = None
    eth_src: Optional[str] = None
    eth_dst: Optional[str] = None
    ip_src: Optional[str] = None
    ip_dst: Optional[str] = None
    ip_proto: Optional[int] = None
    l4_src_port: Optional[int] = None
    l4_dst_port: Optional[int] = None
    metadata: Tuple[Tuple[str, object], ...] = ()

    def matches(self, packet: Packet, in_port: int) -> bool:
        """True if the packet arriving on ``in_port`` satisfies every field."""
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.eth_src is not None and (packet.eth is None or packet.eth.src != self.eth_src):
            return False
        if self.eth_dst is not None and (packet.eth is None or packet.eth.dst != self.eth_dst):
            return False
        if self.ip_src is not None and (packet.ip is None or packet.ip.src != self.ip_src):
            return False
        if self.ip_dst is not None and (packet.ip is None or packet.ip.dst != self.ip_dst):
            return False
        if self.ip_proto is not None and (packet.ip is None or packet.ip.protocol != self.ip_proto):
            return False
        if self.l4_src_port is not None:
            if not isinstance(packet.l4, (TCPHeader, UDPHeader)) or packet.l4.src_port != self.l4_src_port:
                return False
        if self.l4_dst_port is not None:
            if not isinstance(packet.l4, (TCPHeader, UDPHeader)) or packet.l4.dst_port != self.l4_dst_port:
                return False
        for key, value in self.metadata:
            if packet.metadata.get(key) != value:
                return False
        return True

    def specificity(self) -> int:
        """Number of concrete (non-wildcard) fields; used for diagnostics."""
        concrete = sum(
            1
            for value in (
                self.in_port,
                self.eth_src,
                self.eth_dst,
                self.ip_src,
                self.ip_dst,
                self.ip_proto,
                self.l4_src_port,
                self.l4_dst_port,
            )
            if value is not None
        )
        return concrete + len(self.metadata)


_rule_ids = itertools.count(1)


@dataclass
class FlowRule:
    """A priority, match, action-list triple with counters."""

    priority: int
    match: Match
    actions: Sequence[Action]
    cookie: str = ""
    rule_id: int = field(default_factory=lambda: next(_rule_ids))
    packets_matched: int = 0
    bytes_matched: int = 0

    def record(self, packet: Packet) -> None:
        self.packets_matched += 1
        self.bytes_matched += packet.size_bytes


class FlowTable:
    """An ordered collection of :class:`FlowRule` objects.

    Rules are evaluated highest priority first; among equal priorities the
    most recently installed rule wins (mirroring OVS behaviour closely enough
    for the reproduction's purposes).
    """

    def __init__(self, name: str = "table0") -> None:
        self.name = name
        self._rules: List[FlowRule] = []
        #: Bumped on every rule install/remove.  The switch's flow cache stamps
        #: each verdict with the generation it was compiled under, so cache
        #: entries self-invalidate the moment the table changes (critical for
        #: roaming: a migration must not leave stale verdicts steering traffic
        #: to the old station).
        self.generation = 0
        self._metadata_keys: Tuple[str, ...] = ()

    @property
    def referenced_metadata_keys(self) -> Tuple[str, ...]:
        """Sorted metadata keys some installed rule matches on.

        The fast path folds exactly these keys into its :class:`~repro.netem
        .fastpath.FlowKey`, so unrelated packet metadata does not fragment the
        cache while metadata-steered rules (chain continuation) stay correct.
        """
        return self._metadata_keys

    def _bump_generation(self) -> None:
        self.generation += 1
        keys = {key for rule in self._rules for key, _ in rule.match.metadata}
        self._metadata_keys = tuple(sorted(keys))

    # ------------------------------------------------------------ mutation

    def install(self, rule: FlowRule) -> FlowRule:
        """Add a rule and keep the table sorted by descending priority."""
        self._rules.append(rule)
        self._rules.sort(key=lambda r: (-r.priority, -r.rule_id))
        self._bump_generation()
        return rule

    def add(
        self,
        priority: int,
        match: Match,
        actions: Sequence[Action],
        cookie: str = "",
    ) -> FlowRule:
        """Convenience wrapper constructing and installing a rule."""
        return self.install(FlowRule(priority=priority, match=match, actions=list(actions), cookie=cookie))

    def remove_rule(self, rule_id: int) -> bool:
        """Remove a single rule by id; returns True if something was removed."""
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.rule_id != rule_id]
        removed = len(self._rules) != before
        if removed:
            self._bump_generation()
        return removed

    def remove_by_cookie(self, cookie: str) -> int:
        """Remove every rule installed under ``cookie``; returns the count."""
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.cookie != cookie]
        removed = before - len(self._rules)
        if removed:
            self._bump_generation()
        return removed

    def clear(self) -> None:
        if self._rules:
            self._rules.clear()
            self._bump_generation()

    # ------------------------------------------------------------- lookup

    def lookup(self, packet: Packet, in_port: int) -> Optional[FlowRule]:
        """Return the highest-priority rule matching the packet, if any."""
        for rule in self._rules:
            if rule.match.matches(packet, in_port):
                rule.record(packet)
                return rule
        return None

    def rules(self, cookie: Optional[str] = None) -> List[FlowRule]:
        """All rules, optionally filtered by cookie."""
        if cookie is None:
            return list(self._rules)
        return [rule for rule in self._rules if rule.cookie == cookie]

    def __len__(self) -> int:
        return len(self._rules)

    def stats(self) -> Dict[str, int]:
        """Aggregate table statistics (for the Manager's monitoring view)."""
        return {
            "rules": len(self._rules),
            "generation": self.generation,
            "packets_matched": sum(rule.packets_matched for rule in self._rules),
            "bytes_matched": sum(rule.bytes_matched for rule in self._rules),
        }
