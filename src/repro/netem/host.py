"""Hosts and network interfaces.

A :class:`Host` is any endpoint or middlebox in the emulated testbed that
owns one or more :class:`Interface` objects: servers in the core data centre,
gateways, edge stations, wireless cells and mobile clients all build on it.
Packet reception is dispatched to ``handle_packet`` which subclasses (or
composition users, via ``packet_handler``) override.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.netem.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netem.link import Link
    from repro.netem.packet import Packet


PacketHandler = Callable[["Packet", "Interface"], None]
BatchHandler = Callable[[List["Packet"], "Interface"], None]


class Interface:
    """A network interface (physical NIC, veth endpoint or switch port).

    An interface either hangs off a :class:`~repro.netem.link.Link` or has a
    ``delivery_override`` installed (used for veth endpoints that hand packets
    straight to an NF container without an emulated wire in between).
    """

    def __init__(
        self,
        name: str,
        mac: str,
        ip: Optional[str] = None,
        owner: Optional["Host"] = None,
    ) -> None:
        self.name = name
        self.mac = mac
        self.ip = ip
        self.owner = owner
        self.link: Optional["Link"] = None
        self.delivery_override: Optional[PacketHandler] = None
        #: Batch-aware counterpart of ``delivery_override``: when set, an
        #: arriving batch is handed over in one call (NF containers use this
        #: to process a burst under a single simulator event).
        self.batch_delivery_override: Optional[BatchHandler] = None
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.up = True

    # ------------------------------------------------------------------ I/O

    def deliver(self, packet: "Packet") -> None:
        """Called by the link (or a veth peer) when a packet arrives here."""
        if not self.up:
            return
        self.rx_packets += 1
        self.rx_bytes += packet.size_bytes
        if self.delivery_override is not None:
            self.delivery_override(packet, self)
            return
        if self.owner is not None:
            self.owner.receive_packet(packet, self)

    def deliver_batch(self, packets: Sequence["Packet"]) -> None:
        """Batch counterpart of :meth:`deliver` (one call for a whole burst)."""
        if not self.up:
            return
        packets = list(packets)
        if not packets:
            return
        self.rx_packets += len(packets)
        self.rx_bytes += sum(packet.size_bytes for packet in packets)
        if self.batch_delivery_override is not None:
            self.batch_delivery_override(packets, self)
            return
        if self.delivery_override is not None:
            for packet in packets:
                self.delivery_override(packet, self)
            return
        if self.owner is not None:
            self.owner.receive_batch(packets, self)

    def send(self, packet: "Packet") -> bool:
        """Transmit a packet out of this interface.

        Returns ``True`` if the packet left the interface (accepted by the
        link, or handed to a veth peer); ``False`` otherwise.
        """
        if not self.up:
            return False
        self.tx_packets += 1
        self.tx_bytes += packet.size_bytes
        if self.link is not None:
            return self.link.transmit(packet, self)
        return False

    def send_batch(self, packets: Sequence["Packet"]) -> int:
        """Transmit a batch out of this interface; returns the accepted count.

        On a link the whole batch is coalesced into a single deliver event
        (:meth:`~repro.netem.link.Link.transmit_batch`); otherwise packets
        fall back to :meth:`send` one by one (which covers veth-rewired
        interfaces and test stubs that replace ``send``).
        """
        if not self.up:
            return 0
        packets = list(packets)
        if not packets:
            return 0
        if self.link is not None:
            self.tx_packets += len(packets)
            self.tx_bytes += sum(packet.size_bytes for packet in packets)
            return self.link.transmit_batch(packets, self)
        return sum(1 for packet in packets if self.send(packet))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Interface({self.name!r}, mac={self.mac}, ip={self.ip})"


class VethPair:
    """A pair of virtual interfaces whose ``send`` delivers to the peer.

    This mirrors the veth pairs GNF Agents create to plug NF containers into
    the station's software switch: a frame written to one end pops out of the
    other end after a negligible (configurable) kernel-crossing delay.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        mac_a: str,
        mac_b: str,
        crossing_delay_s: float = 0.0,
    ) -> None:
        self.simulator = simulator
        self.name = name
        self.crossing_delay_s = crossing_delay_s
        self.end_a = Interface(name=f"{name}-a", mac=mac_a)
        self.end_b = Interface(name=f"{name}-b", mac=mac_b)
        self._wire(self.end_a, self.end_b)
        self._wire(self.end_b, self.end_a)

    def _wire(self, src: Interface, dst: Interface) -> None:
        original_send = src.send

        def send_via_peer(packet: "Packet") -> bool:
            if not src.up:
                return False
            src.tx_packets += 1
            src.tx_bytes += packet.size_bytes
            if self.crossing_delay_s > 0:
                self.simulator.schedule(self.crossing_delay_s, dst.deliver, packet)
            else:
                dst.deliver(packet)
            return True

        def send_batch_via_peer(packets: Sequence["Packet"]) -> int:
            if not src.up:
                return 0
            packets = list(packets)
            if not packets:
                return 0
            src.tx_packets += len(packets)
            src.tx_bytes += sum(packet.size_bytes for packet in packets)
            if self.crossing_delay_s > 0:
                self.simulator.schedule(self.crossing_delay_s, dst.deliver_batch, packets)
            else:
                dst.deliver_batch(packets)
            return len(packets)

        # Replace the bound send with the veth-crossing version.
        src.send = send_via_peer  # type: ignore[method-assign]
        src.send_batch = send_batch_via_peer  # type: ignore[method-assign]
        src._original_send = original_send  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"VethPair({self.name!r})"


class Host:
    """Base class for every packet-handling node in the testbed."""

    def __init__(self, simulator: Simulator, name: str) -> None:
        self.simulator = simulator
        self.name = name
        self.interfaces: Dict[str, Interface] = {}
        self.packet_handler: Optional[PacketHandler] = None
        self.rx_packets = 0
        self.tx_packets = 0

    # -------------------------------------------------------------- wiring

    def add_interface(self, interface: Interface) -> Interface:
        """Register an interface on this host."""
        if interface.name in self.interfaces:
            raise ValueError(f"host {self.name} already has an interface named {interface.name!r}")
        interface.owner = self
        self.interfaces[interface.name] = interface
        return interface

    def interface(self, name: str) -> Interface:
        """Look up an interface by name."""
        return self.interfaces[name]

    @property
    def primary_interface(self) -> Interface:
        """The first interface added (convenience for single-homed hosts)."""
        if not self.interfaces:
            raise RuntimeError(f"host {self.name} has no interfaces")
        return next(iter(self.interfaces.values()))

    @property
    def ip(self) -> Optional[str]:
        """IP address of the primary interface, if any."""
        if not self.interfaces:
            return None
        return self.primary_interface.ip

    # ----------------------------------------------------------------- I/O

    def receive_packet(self, packet: "Packet", interface: Interface) -> None:
        """Entry point for packets arriving on any of this host's interfaces."""
        self.rx_packets += 1
        if self.packet_handler is not None:
            self.packet_handler(packet, interface)
            return
        self.handle_packet(packet, interface)

    def receive_batch(self, packets: Sequence["Packet"], interface: Interface) -> None:
        """Entry point for packet batches; default unrolls to ``receive_packet``.

        Batch-aware hosts (the software switch) override this to classify the
        whole burst in one pass.
        """
        for packet in packets:
            self.receive_packet(packet, interface)

    def handle_packet(self, packet: "Packet", interface: Interface) -> None:
        """Subclass hook; the base host silently consumes packets."""

    def send(self, packet: "Packet", interface: Optional[Interface] = None) -> bool:
        """Send a packet out of ``interface`` (default: primary)."""
        out = interface or self.primary_interface
        self.tx_packets += 1
        return out.send(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"


class Server(Host):
    """An application server living in the core data centre.

    Servers answer HTTP requests, DNS queries and ICMP echos, and echo UDP
    CBR packets back to their sender, so every workload generator has a
    responsive peer.  Response generation is deliberately simple -- the point
    is to create realistic *traffic through the edge*, not to model server
    internals.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        http_body_bytes: int = 10_000,
        dns_zone: Optional[Dict[str, List[str]]] = None,
        processing_delay_s: float = 0.0005,
    ) -> None:
        super().__init__(simulator, name)
        self.http_body_bytes = http_body_bytes
        self.dns_zone: Dict[str, List[str]] = dns_zone or {}
        self.processing_delay_s = processing_delay_s
        self.requests_served = 0
        self.dns_queries_served = 0
        self.icmp_echoes_served = 0
        self.udp_packets_echoed = 0
        self.bulk_bytes_received = 0

    def handle_packet(self, packet: "Packet", interface: Interface) -> None:
        from repro.netem import packet as pkt

        # Ignore traffic not addressed to this server (e.g. flooded frames).
        if packet.ip is None or (self.ip is not None and packet.ip.dst != self.ip):
            return

        response: Optional["Packet"] = None
        if isinstance(packet.app, pkt.HTTPRequest):
            self.requests_served += 1
            # ABR segment fetches name their own object size (the bitrate
            # ladder decides it); everything else gets the server default.
            body_bytes = packet.metadata.get("http_body_bytes", self.http_body_bytes)
            content_type = packet.metadata.get("http_content_type", "text/html")
            response = pkt.make_http_response(
                packet,
                status=200,
                body_bytes=int(body_bytes),  # type: ignore[arg-type]
                content_type=str(content_type),
                created_at=self.simulator.now,
            )
        elif isinstance(packet.app, pkt.DNSQuery):
            self.dns_queries_served += 1
            addresses = self.dns_zone.get(packet.app.name, ["0.0.0.0"])
            response = pkt.make_dns_response(
                packet, addresses=tuple(addresses), created_at=self.simulator.now
            )
        elif packet.is_icmp and isinstance(packet.l4, pkt.ICMPHeader) and packet.l4.icmp_type == 8:
            self.icmp_echoes_served += 1
            response = packet.copy()
            assert response.eth is not None and response.ip is not None
            response.eth = response.eth.swapped()
            response.ip = response.ip.swapped()
            response.l4 = packet.l4.reply()
            response.created_at = self.simulator.now
        elif packet.is_udp and packet.metadata.get("bulk_oneway"):
            # Bulk-transfer uploads are one-way by contract: echoing them
            # would double the traffic and defeat the fluid model's point.
            self.bulk_bytes_received += packet.size_bytes
        elif packet.is_udp:
            self.udp_packets_echoed += 1
            response = packet.copy()
            assert response.eth is not None and response.ip is not None and response.l4 is not None
            response.eth = response.eth.swapped()
            response.ip = response.ip.swapped()
            response.l4 = response.l4.swapped()  # type: ignore[union-attr]
            response.created_at = self.simulator.now

        if response is not None:
            # Echo the client's original send timestamp so RTT measurement at
            # the client does not depend on clock bookkeeping in the server.
            response.metadata["request_created_at"] = packet.created_at
            response.metadata.update(
                {k: v for k, v in packet.metadata.items() if k.startswith("probe_")}
            )
            # Protocol tags ride back on the response so protocol-aware NFs
            # (per-protocol cache admission) classify both directions alike.
            for key in ("app_protocol", "quic_cid"):
                if key in packet.metadata:
                    response.metadata[key] = packet.metadata[key]
            self.simulator.schedule(self.processing_delay_s, self.send, response, interface)
