"""Static IP routing helpers.

The emulated testbed mostly relies on the gateway's mobility-anchor
forwarding (see :mod:`repro.netem.topology`), but routers, tests and the
latency benchmarks also need a general longest-prefix-match routing table and
a way to derive next hops from the topology graph.  ``compute_routes`` uses
:mod:`networkx` shortest paths weighted by link delay, which is how the
reproduction decides the "closest Agent" for NF placement as well.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx


@dataclass(frozen=True)
class RouteEntry:
    """A routing table entry: destination prefix -> (next hop, interface)."""

    prefix: str
    next_hop: str
    interface_name: str
    metric: float = 1.0

    @property
    def network(self) -> ipaddress.IPv4Network:
        return ipaddress.ip_network(self.prefix)


class RoutingTable:
    """Longest-prefix-match IPv4 routing table."""

    def __init__(self) -> None:
        self._entries: List[RouteEntry] = []

    def add_route(self, prefix: str, next_hop: str, interface_name: str, metric: float = 1.0) -> RouteEntry:
        """Install a route; more-specific prefixes automatically win lookups."""
        entry = RouteEntry(prefix=prefix, next_hop=next_hop, interface_name=interface_name, metric=metric)
        self._entries.append(entry)
        self._entries.sort(key=lambda e: (-e.network.prefixlen, e.metric))
        return entry

    def remove_route(self, prefix: str) -> bool:
        """Remove every entry for ``prefix``; returns True if any was removed."""
        before = len(self._entries)
        self._entries = [entry for entry in self._entries if entry.prefix != prefix]
        return len(self._entries) != before

    def lookup(self, destination: str) -> Optional[RouteEntry]:
        """Longest-prefix-match lookup; returns ``None`` when no route covers it."""
        address = ipaddress.ip_address(destination)
        for entry in self._entries:
            if address in entry.network:
                return entry
        return None

    def entries(self) -> List[RouteEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


def build_topology_graph(links: List[Tuple[Hashable, Hashable, float]]) -> nx.Graph:
    """Build an undirected delay-weighted graph from (node, node, delay) triples."""
    graph = nx.Graph()
    for node_a, node_b, delay in links:
        graph.add_edge(node_a, node_b, weight=delay)
    return graph


def compute_routes(
    graph: nx.Graph,
    source: Hashable,
) -> Dict[Hashable, Tuple[List[Hashable], float]]:
    """Shortest paths (by delay) from ``source`` to every reachable node.

    Returns a mapping ``destination -> (path, total_delay)``.
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in topology graph")
    paths = nx.single_source_dijkstra_path(graph, source, weight="weight")
    lengths = nx.single_source_dijkstra_path_length(graph, source, weight="weight")
    return {node: (paths[node], lengths[node]) for node in paths}


def path_delay(graph: nx.Graph, source: Hashable, destination: Hashable) -> float:
    """Total propagation delay along the shortest path between two nodes."""
    return float(nx.dijkstra_path_length(graph, source, destination, weight="weight"))
