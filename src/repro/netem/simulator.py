"""Deterministic discrete-event simulation kernel.

Every subsystem in the reproduction (links, container boot times, agent
heartbeats, client mobility, NF migrations) is driven by a single
:class:`Simulator` instance.  The kernel is intentionally small and
dependency-free:

* events are callbacks scheduled at an absolute simulated time,
* ties are broken by insertion order so runs are fully deterministic,
* lightweight generator-based processes are supported for code that reads
  more naturally as sequential logic (e.g. a migration that waits for a
  checkpoint transfer to finish).

The simulated clock is a float in **seconds**.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation kernel is misused."""


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry; ordering is (time, sequence)."""

    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled
    before they fire.  An event fires exactly once; its callback's return
    value is kept in :attr:`result` so processes waiting on the event can be
    resumed with it (even if they start waiting after the event fired).
    """

    __slots__ = ("time", "callback", "args", "kwargs", "cancelled", "fired", "name", "result", "_waiters", "_simulator")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        name: str = "",
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs or {}
        self.cancelled = False
        self.fired = False
        self.name = name or getattr(callback, "__name__", "event")
        self.result: Any = None
        self._waiters: Optional[List[Callable[[Any], None]]] = None
        self._simulator: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is a no-op.

        Processes already waiting on the event are resumed with ``None``
        (instead of being silently stranded for the rest of the run).
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._simulator is not None:
            self._simulator._note_cancelled()
        if self._waiters is not None:
            waiters, self._waiters = self._waiters, None
            for waiter in waiters:
                if self._simulator is not None:
                    self._simulator.schedule(0.0, waiter, None)
                else:
                    waiter(None)

    def add_waiter(self, waiter: Callable[[Any], None]) -> None:
        """Register a callback invoked with the event's result when it fires.

        Multiple waiters are supported; they are notified in registration
        order right after the event's own callback ran.  (This is what lets
        several processes wait on the same event without clobbering each
        other -- the old implementation rebound ``callback`` instead.)
        """
        if self._waiters is None:
            self._waiters = []
        self._waiters.append(waiter)

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event({self.name!r}, t={self.time:.6f}, {state})"


class Process:
    """A generator-based simulated process.

    The wrapped generator may ``yield``:

    * a ``float``/``int`` -- sleep for that many simulated seconds,
    * an :class:`Event` -- resume immediately after the event fires (an
      already-fired event resumes at once with its result; a cancelled
      event resumes with ``None``),
    * another :class:`Process` -- resume when that process terminates.

    The value sent back into the generator after waiting on an event or a
    process is the event's callback return value / the process return value.
    """

    __slots__ = ("simulator", "generator", "name", "finished", "result", "_waiters")

    def __init__(self, simulator: "Simulator", generator: Generator, name: str = "") -> None:
        self.simulator = simulator
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def _step(self, value: Any = None) -> None:
        if self.finished:
            return
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            for waiter in self._waiters:
                waiter(self.result)
            self._waiters.clear()
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            self.simulator.schedule(float(target), self._step, None)
        elif isinstance(target, Event):
            if target.fired:
                # Already-fired events resume the process immediately (like
                # waiting on a finished process) instead of hanging forever.
                self.simulator.schedule(0.0, self._step, target.result)
            elif target.cancelled:
                # Cancelled events resume the waiter with None, mirroring
                # what Event.cancel() does for already-registered waiters.
                self.simulator.schedule(0.0, self._step, None)
            else:
                target.add_waiter(self._step)
        elif isinstance(target, Process):
            if target.finished:
                self.simulator.schedule(0.0, self._step, target.result)
            else:
                target._waiters.append(lambda result: self.simulator.schedule(0.0, self._step, result))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}; "
                "yield a delay, an Event or a Process"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class PeriodicTask:
    """Handle for a recurring callback created by :meth:`Simulator.every`."""

    __slots__ = ("simulator", "interval", "callback", "args", "kwargs", "stopped", "_event", "jitter_fn")

    def __init__(
        self,
        simulator: "Simulator",
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.simulator = simulator
        self.interval = interval
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.stopped = False
        self.jitter_fn = jitter_fn
        self._event: Optional[Event] = None

    def start(self, initial_delay: Optional[float] = None) -> "PeriodicTask":
        delay = self.interval if initial_delay is None else initial_delay
        self._event = self.simulator.schedule(delay, self._fire)
        return self

    def _fire(self) -> None:
        if self.stopped:
            return
        self.callback(*self.args, **self.kwargs)
        if self.stopped:
            return
        jitter = self.jitter_fn() if self.jitter_fn is not None else 0.0
        self._event = self.simulator.schedule(max(0.0, self.interval + jitter), self._fire)

    def stop(self) -> None:
        self.stopped = True
        if self._event is not None:
            self._event.cancel()


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(1.0, seen.append, "a")
    >>> _ = sim.schedule(0.5, seen.append, "b")
    >>> sim.run()
    >>> seen
    ['b', 'a']
    >>> sim.now
    1.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._running = False
        self._event_count = 0
        self._cancelled_in_queue = 0

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._event_count

    @property
    def pending_events(self) -> int:
        """Number of **live** events still on the queue.

        Cancelled events linger in the heap until their time comes up (lazy
        deletion), but they are excluded here so teardown assertions and
        benchmark reports count only events that will actually fire.
        """
        return len(self._queue) - self._cancelled_in_queue

    @property
    def queued_events(self) -> int:
        """Raw queue length, including cancelled-but-not-yet-popped events."""
        return len(self._queue)

    def _note_cancelled(self) -> None:
        self._cancelled_in_queue += 1

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(time, callback, args, kwargs)
        event._simulator = self
        heapq.heappush(self._queue, _QueueEntry(time, next(self._sequence), event))
        return event

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator-based :class:`Process` immediately."""
        proc = Process(self, generator, name=name)
        self.schedule(0.0, proc._step, None)
        return proc

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        initial_delay: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
        **kwargs: Any,
    ) -> PeriodicTask:
        """Run ``callback`` every ``interval`` seconds until the task is stopped."""
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, args, kwargs, jitter_fn=jitter_fn)
        return task.start(initial_delay=initial_delay)

    # ---------------------------------------------------------------- running

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would advance past this time.  Events at
            exactly ``until`` are executed.  ``None`` runs to queue
            exhaustion.
        max_events:
            Safety valve -- stop after this many events.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        processed = 0
        try:
            while self._queue:
                entry = self._queue[0]
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._queue)
                event = entry.event
                if event.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                self._now = entry.time
                event.fired = True
                event.result = event.callback(*event.args, **event.kwargs)
                self._event_count += 1
                processed += 1
                if event._waiters is not None:
                    waiters, event._waiters = event._waiters, None
                    for waiter in waiters:
                        waiter(event.result)
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        """Run for ``duration`` additional simulated seconds."""
        return self.run(until=self._now + duration, max_events=max_events)

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a collection of events (convenience for teardown)."""
        for event in events:
            event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Simulator(now={self._now:.6f}, pending={len(self._queue)})"
