"""Deterministic discrete-event simulation kernel.

Every subsystem in the reproduction (links, container boot times, agent
heartbeats, client mobility, NF migrations) is driven by a single
:class:`Simulator` instance.  The kernel is intentionally small and
dependency-free:

* events are callbacks scheduled at an absolute simulated time,
* ties are broken by insertion order so runs are fully deterministic,
* lightweight generator-based processes are supported for code that reads
  more naturally as sequential logic (e.g. a migration that waits for a
  checkpoint transfer to finish).

The simulated clock is a float in **seconds**.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation kernel is misused."""


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry; ordering is (time, sequence)."""

    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled
    before they fire.  An event fires exactly once.
    """

    __slots__ = ("time", "callback", "args", "kwargs", "cancelled", "fired", "name")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        name: str = "",
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs or {}
        self.cancelled = False
        self.fired = False
        self.name = name or getattr(callback, "__name__", "event")

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is a no-op."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event({self.name!r}, t={self.time:.6f}, {state})"


class Process:
    """A generator-based simulated process.

    The wrapped generator may ``yield``:

    * a ``float``/``int`` -- sleep for that many simulated seconds,
    * an :class:`Event` -- resume immediately after the event fires,
    * another :class:`Process` -- resume when that process terminates.

    The value sent back into the generator after waiting on an event or a
    process is the event's callback return value / the process return value.
    """

    __slots__ = ("simulator", "generator", "name", "finished", "result", "_waiters")

    def __init__(self, simulator: "Simulator", generator: Generator, name: str = "") -> None:
        self.simulator = simulator
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def _step(self, value: Any = None) -> None:
        if self.finished:
            return
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            for waiter in self._waiters:
                waiter(self.result)
            self._waiters.clear()
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            self.simulator.schedule(float(target), self._step, None)
        elif isinstance(target, Event):
            original = target.callback

            def chained(*args: Any, **kwargs: Any) -> Any:
                result = original(*args, **kwargs)
                self._step(result)
                return result

            target.callback = chained
        elif isinstance(target, Process):
            if target.finished:
                self.simulator.schedule(0.0, self._step, target.result)
            else:
                target._waiters.append(lambda result: self.simulator.schedule(0.0, self._step, result))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}; "
                "yield a delay, an Event or a Process"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class PeriodicTask:
    """Handle for a recurring callback created by :meth:`Simulator.every`."""

    __slots__ = ("simulator", "interval", "callback", "args", "kwargs", "stopped", "_event", "jitter_fn")

    def __init__(
        self,
        simulator: "Simulator",
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.simulator = simulator
        self.interval = interval
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.stopped = False
        self.jitter_fn = jitter_fn
        self._event: Optional[Event] = None

    def start(self, initial_delay: Optional[float] = None) -> "PeriodicTask":
        delay = self.interval if initial_delay is None else initial_delay
        self._event = self.simulator.schedule(delay, self._fire)
        return self

    def _fire(self) -> None:
        if self.stopped:
            return
        self.callback(*self.args, **self.kwargs)
        if self.stopped:
            return
        jitter = self.jitter_fn() if self.jitter_fn is not None else 0.0
        self._event = self.simulator.schedule(max(0.0, self.interval + jitter), self._fire)

    def stop(self) -> None:
        self.stopped = True
        if self._event is not None:
            self._event.cancel()


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(1.0, seen.append, "a")
    >>> _ = sim.schedule(0.5, seen.append, "b")
    >>> sim.run()
    >>> seen
    ['b', 'a']
    >>> sim.now
    1.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._running = False
        self._event_count = 0

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._event_count

    @property
    def pending_events(self) -> int:
        """Number of events still on the queue (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(time, callback, args, kwargs)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._sequence), event))
        return event

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator-based :class:`Process` immediately."""
        proc = Process(self, generator, name=name)
        self.schedule(0.0, proc._step, None)
        return proc

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        initial_delay: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
        **kwargs: Any,
    ) -> PeriodicTask:
        """Run ``callback`` every ``interval`` seconds until the task is stopped."""
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, args, kwargs, jitter_fn=jitter_fn)
        return task.start(initial_delay=initial_delay)

    # ---------------------------------------------------------------- running

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would advance past this time.  Events at
            exactly ``until`` are executed.  ``None`` runs to queue
            exhaustion.
        max_events:
            Safety valve -- stop after this many events.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        processed = 0
        try:
            while self._queue:
                entry = self._queue[0]
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._queue)
                event = entry.event
                if event.cancelled:
                    continue
                self._now = entry.time
                event.fired = True
                event.callback(*event.args, **event.kwargs)
                self._event_count += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        """Run for ``duration`` additional simulated seconds."""
        return self.run(until=self._now + duration, max_events=max_events)

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a collection of events (convenience for teardown)."""
        for event in events:
            event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Simulator(now={self._now:.6f}, pending={len(self._queue)})"
