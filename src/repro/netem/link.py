"""Point-to-point links with bandwidth, propagation delay, loss and queueing.

Links connect two :class:`~repro.netem.host.Interface` objects.  Transmission
models the usual store-and-forward pipeline: a packet waits behind packets
already queued on the same direction, is serialized at the link rate and then
propagates for the configured delay.  Each direction keeps independent state
so full-duplex behaviour matches an Ethernet or Wi-Fi backhaul link.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.netem.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netem.host import Interface
    from repro.netem.packet import Packet


@dataclass
class LinkStats:
    """Per-direction link counters."""

    tx_packets: int = 0
    tx_bytes: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    queued_high_water: int = 0
    #: Bytes moved across this direction by the fluid model (hybrid mode);
    #: they never appear as packets, so they are counted separately.
    fluid_bytes: float = 0.0

    def record_tx(self, size_bytes: int) -> None:
        self.tx_packets += 1
        self.tx_bytes += size_bytes

    def record_drop(self, size_bytes: int) -> None:
        self.dropped_packets += 1
        self.dropped_bytes += size_bytes


class _Direction:
    """State for one direction of a link."""

    __slots__ = ("busy_until", "queue_depth", "stats", "fluid_load_bps")

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.queue_depth = 0
        self.stats = LinkStats()
        #: Aggregate fluid-flow rate currently occupying this direction.
        #: Packet serialization only sees the residual bandwidth while this
        #: is non-zero; at zero the arithmetic is bit-identical to the
        #: fluid-free link (the packet/hybrid digest-equivalence contract).
        self.fluid_load_bps = 0.0


class Link:
    """Full-duplex point-to-point link.

    Parameters
    ----------
    simulator:
        The shared simulation kernel.
    bandwidth_bps:
        Link rate in bits per second (e.g. ``100e6`` for the paper's
        home-router class devices, ``1e9`` for the backhaul).
    delay_s:
        One-way propagation delay in seconds.
    loss_rate:
        Independent per-packet loss probability in ``[0, 1)``.
    max_queue_packets:
        Drop-tail queue limit per direction.
    name:
        Human-readable label used by telemetry and debugging output.
    """

    def __init__(
        self,
        simulator: Simulator,
        bandwidth_bps: float = 1e9,
        delay_s: float = 0.001,
        loss_rate: float = 0.0,
        max_queue_packets: int = 1000,
        name: str = "",
        rng: Optional[random.Random] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.simulator = simulator
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.loss_rate = loss_rate
        self.max_queue_packets = max_queue_packets
        self.name = name or "link"
        self._rng = rng or random.Random(0)
        self.endpoint_a: Optional["Interface"] = None
        self.endpoint_b: Optional["Interface"] = None
        self._directions: Dict[str, _Direction] = {"a_to_b": _Direction(), "b_to_a": _Direction()}
        self.up = True

    # ----------------------------------------------------------- wiring

    def attach(self, a: "Interface", b: "Interface") -> "Link":
        """Connect the two endpoints of the link."""
        if self.endpoint_a is not None or self.endpoint_b is not None:
            raise RuntimeError(f"link {self.name} is already attached")
        self.endpoint_a = a
        self.endpoint_b = b
        a.link = self
        b.link = self
        return self

    def peer_of(self, interface: "Interface") -> "Interface":
        """Return the interface at the other end of the link."""
        if interface is self.endpoint_a:
            assert self.endpoint_b is not None
            return self.endpoint_b
        if interface is self.endpoint_b:
            assert self.endpoint_a is not None
            return self.endpoint_a
        raise ValueError(f"interface {interface!r} is not attached to link {self.name}")

    # ----------------------------------------------------- transmission

    def serialization_delay(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire at the link rate."""
        return (size_bytes * 8) / self.bandwidth_bps

    #: Fluid background load can squeeze packet bandwidth down to this
    #: fraction of the link rate, but never below it (mirrors fair-share:
    #: the packets themselves are also contenders on the real link).
    _MIN_RESIDUAL_FRACTION = 0.05

    def _packet_serialization_delay(self, size_bytes: int, direction: _Direction) -> float:
        """Serialization delay as seen by packets, inflated by fluid load."""
        fluid = direction.fluid_load_bps
        if fluid <= 0.0:
            return (size_bytes * 8) / self.bandwidth_bps
        residual = max(
            self.bandwidth_bps - fluid, self.bandwidth_bps * self._MIN_RESIDUAL_FRACTION
        )
        return (size_bytes * 8) / residual

    # ------------------------------------------------------ fluid occupancy

    def set_fluid_load(self, direction_key: str, load_bps: float) -> None:
        """Install the aggregate fluid rate for one direction (hybrid mode)."""
        self._directions[direction_key].fluid_load_bps = max(0.0, load_bps)

    def fluid_load(self, direction_key: str) -> float:
        return self._directions[direction_key].fluid_load_bps

    def add_fluid_bytes(self, direction_key: str, size_bytes: float) -> None:
        """Account bytes the fluid solver moved across one direction."""
        self._directions[direction_key].stats.fluid_bytes += size_bytes

    def transmit(self, packet: "Packet", from_interface: "Interface") -> bool:
        """Send ``packet`` out of ``from_interface`` towards the peer.

        Returns ``True`` if the packet was accepted for transmission (it may
        still be lost in flight), ``False`` if it was dropped immediately
        (link down or full queue).
        """
        direction_key = "a_to_b" if from_interface is self.endpoint_a else "b_to_a"
        direction = self._directions[direction_key]
        size = packet.size_bytes

        if not self.up:
            direction.stats.record_drop(size)
            return False
        if direction.queue_depth >= self.max_queue_packets:
            direction.stats.record_drop(size)
            return False

        now = self.simulator.now
        start = max(now, direction.busy_until)
        serialization = self._packet_serialization_delay(size, direction)
        direction.busy_until = start + serialization
        arrival = direction.busy_until + self.delay_s

        direction.queue_depth += 1
        direction.stats.queued_high_water = max(
            direction.stats.queued_high_water, direction.queue_depth
        )

        lost = self.loss_rate > 0.0 and self._rng.random() < self.loss_rate
        destination = self.peer_of(from_interface)
        self.simulator.schedule_at(arrival, self._deliver, packet, destination, direction, lost)
        return True

    def transmit_batch(self, packets: Iterable["Packet"], from_interface: "Interface") -> int:
        """Send a batch towards the peer under a **single** deliver event.

        The batch is serialized back to back at the link rate and the whole
        burst arrives when its last bit has propagated -- one heap entry
        instead of one per packet, which is where the slow path burns most of
        its time at line rate.  Per-packet loss and drop-tail accounting are
        unchanged.  Returns the number of packets accepted.
        """
        packets = list(packets)
        if not packets:
            return 0
        direction_key = "a_to_b" if from_interface is self.endpoint_a else "b_to_a"
        direction = self._directions[direction_key]

        if not self.up:
            for packet in packets:
                direction.stats.record_drop(packet.size_bytes)
            return 0

        now = self.simulator.now
        start = max(now, direction.busy_until)
        lossy = self.loss_rate > 0.0
        accepted: List[Tuple["Packet", bool]] = []
        for packet in packets:
            if direction.queue_depth >= self.max_queue_packets:
                direction.stats.record_drop(packet.size_bytes)
                continue
            start += self._packet_serialization_delay(packet.size_bytes, direction)
            direction.queue_depth += 1
            lost = lossy and self._rng.random() < self.loss_rate
            accepted.append((packet, lost))
        if not accepted:
            return 0

        direction.busy_until = start
        direction.stats.queued_high_water = max(
            direction.stats.queued_high_water, direction.queue_depth
        )
        arrival = direction.busy_until + self.delay_s
        destination = self.peer_of(from_interface)
        self.simulator.schedule_at(arrival, self._deliver_batch, accepted, destination, direction)
        return len(accepted)

    def _deliver(
        self,
        packet: "Packet",
        destination: "Interface",
        direction: _Direction,
        lost: bool,
    ) -> None:
        direction.queue_depth -= 1
        if lost or not self.up:
            direction.stats.record_drop(packet.size_bytes)
            return
        direction.stats.record_tx(packet.size_bytes)
        packet.hops += 1
        destination.deliver(packet)

    def _deliver_batch(
        self,
        accepted: List[Tuple["Packet", bool]],
        destination: "Interface",
        direction: _Direction,
    ) -> None:
        direction.queue_depth -= len(accepted)
        survivors: List["Packet"] = []
        for packet, lost in accepted:
            if lost or not self.up:
                direction.stats.record_drop(packet.size_bytes)
                continue
            direction.stats.record_tx(packet.size_bytes)
            packet.hops += 1
            survivors.append(packet)
        if survivors:
            destination.deliver_batch(survivors)

    # --------------------------------------------------------- management

    def set_up(self, up: bool) -> None:
        """Administratively enable or disable the link (failure injection)."""
        self.up = up

    def stats(self, from_interface: "Interface") -> LinkStats:
        """Counters for the direction whose transmissions originate at ``from_interface``."""
        key = "a_to_b" if from_interface is self.endpoint_a else "b_to_a"
        return self._directions[key].stats

    @property
    def total_stats(self) -> LinkStats:
        """Aggregated counters across both directions."""
        combined = LinkStats()
        for direction in self._directions.values():
            combined.tx_packets += direction.stats.tx_packets
            combined.tx_bytes += direction.stats.tx_bytes
            combined.dropped_packets += direction.stats.dropped_packets
            combined.dropped_bytes += direction.stats.dropped_bytes
            combined.queued_high_water = max(
                combined.queued_high_water, direction.stats.queued_high_water
            )
        return combined

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Link({self.name!r}, {self.bandwidth_bps / 1e6:.0f} Mbps, "
            f"{self.delay_s * 1e3:.2f} ms, up={self.up})"
        )
