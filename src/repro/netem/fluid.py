"""Hybrid flow-level simulation core: fluid flows with packet fidelity islands.

The per-packet fast path (flow cache + batching) still pays one event chain
per packet, which caps the simulator at the bulk-transfer workloads the
million-client north-star needs.  This module implements the classic hybrid
fix from the simulation literature: long-lived bulk flows become *rate
processes* -- a :class:`FluidFlow` carries a demand and a byte budget, a
:class:`FluidSolver` computes max-min fair-share rates over every shared
link with numpy, and bytes advance in coarse solver epochs (one simulator
event per epoch, regardless of how many packets the flow "contains").

Packet fidelity is preserved exactly where the paper's phenomena live.  The
:class:`HybridScheduler` *demotes* a fluid flow back to packet mode when

* its client has an active NF chain attached (the chain under test must see
  real packets),
* its path crosses a station with an in-flight migration state transfer
  (checkpoint chunks contend with client traffic on the real uplinks), or
* its station is inside a fault-injection window,

and *promotes* it back to fluid afterwards.  Byte accounting is continuous
across conversions: a flow's ``bytes_fluid + bytes_packet`` total is exact
no matter how often it bounces between the two regimes.

Fluid occupancy is pushed back onto the packet world: each solved epoch
writes the aggregate fluid rate into every traversed
:class:`~repro.netem.link.Link` direction, and packet serialization on a
fluid-loaded link only sees the *residual* bandwidth -- so migrations and
probe RTTs measured through a fluid-congested backhaul stay honest.

In ``packet`` mode the scheduler is inert: every registered flow stays in
packet mode forever, no epoch task runs, and nothing observable changes --
which is what keeps the packet/hybrid MetricsDigest equivalence on
non-bulk scenarios exact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.netem.simulator import PeriodicTask, Simulator

SIMULATION_MODES = ("packet", "hybrid")

#: A solved rate below this is treated as zero (numerical noise floor).
_RATE_EPS = 1e-6


@dataclass
class FluidPath:
    """Where a fluid flow's bytes travel: its station and the shared links.

    ``links`` lists ``(link, direction_key)`` pairs -- the same per-direction
    state the packet world serializes against, so fluid occupancy and packet
    queueing meet on the exact same resource.
    """

    station: str
    links: List[Tuple[object, str]] = field(default_factory=list)


class FluidFlow:
    """One bulk transfer as a rate process with exact byte accounting."""

    __slots__ = (
        "flow_id",
        "name",
        "client",
        "dst_ip",
        "demand_bps",
        "total_bytes",
        "bytes_fluid",
        "bytes_packet",
        "mode",
        "allocated_bps",
        "promotions",
        "demotions",
        "completed",
        "on_mode_change",
        "on_complete",
        "path",
    )

    def __init__(
        self,
        name: str,
        demand_bps: float,
        total_bytes: float,
        client: Optional[object] = None,
        dst_ip: str = "",
    ) -> None:
        if demand_bps <= 0:
            raise ValueError(f"demand_bps must be positive, got {demand_bps}")
        if total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {total_bytes}")
        self.flow_id = 0  # assigned by the scheduler at registration
        self.name = name
        self.client = client
        self.dst_ip = dst_ip
        self.demand_bps = float(demand_bps)
        self.total_bytes = float(total_bytes)
        self.bytes_fluid = 0.0
        self.bytes_packet = 0.0
        #: ``packet`` until a hybrid scheduler classifies it otherwise.
        self.mode = "packet"
        self.allocated_bps = 0.0
        self.promotions = 0
        self.demotions = 0
        self.completed = False
        #: Called with the new mode after every promote/demote.
        self.on_mode_change: Optional[Callable[[str], None]] = None
        #: Called once when the transfer's byte budget is exhausted.
        self.on_complete: Optional[Callable[[], None]] = None
        #: Path resolved at the last epoch (None while unroutable).
        self.path: Optional[FluidPath] = None

    @property
    def bytes_moved(self) -> float:
        return self.bytes_fluid + self.bytes_packet

    @property
    def remaining_bytes(self) -> float:
        return max(0.0, self.total_bytes - self.bytes_moved)

    def record_packet_bytes(self, size_bytes: float) -> None:
        """Account bytes moved by the packet path (demoted or pure packet mode)."""
        self.bytes_packet += size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"FluidFlow({self.name!r}, mode={self.mode}, "
            f"{self.bytes_moved:.0f}/{self.total_bytes:.0f}B)"
        )


class FluidSolver:
    """Max-min fair-share rate allocation over shared links (water-filling)."""

    @staticmethod
    def max_min_rates(
        capacities: np.ndarray, membership: np.ndarray, demands: np.ndarray
    ) -> np.ndarray:
        """Solve the classic progressive-filling allocation.

        Parameters
        ----------
        capacities:
            ``(L,)`` link capacities in bits per second.
        membership:
            ``(L, F)`` boolean matrix; ``membership[l, f]`` is True when flow
            ``f`` traverses link ``l``.
        demands:
            ``(F,)`` per-flow demand ceilings in bits per second.

        All unfixed flows' rates rise together until a flow hits its demand
        (it is fixed there) or a link saturates (every flow crossing it is
        fixed at the fair share).  Pure float arithmetic over a deterministic
        flow ordering, so replays are bit-identical.
        """
        flows = demands.shape[0]
        rates = np.zeros(flows)
        if flows == 0:
            return rates
        fixed = np.zeros(flows, dtype=bool)
        residual = capacities.astype(float).copy()
        membership = membership.astype(bool)
        # Flows crossing no registered link are only demand-limited.
        for _ in range(flows + capacities.shape[0] + 1):
            unfixed = ~fixed
            if not unfixed.any():
                break
            per_link_unfixed = membership[:, unfixed].sum(axis=1)
            share = np.full(capacities.shape[0], np.inf)
            loaded = per_link_unfixed > 0
            share[loaded] = np.maximum(residual[loaded], 0.0) / per_link_unfixed[loaded]
            # Per-flow ceiling on the *increment*: the tightest link share or
            # the remaining demand headroom, whichever comes first.
            # ``initial`` keeps the reduction defined when no link is
            # registered at all (L=0): such flows are purely demand-limited.
            link_limit = np.where(membership, share[:, None], np.inf).min(axis=0, initial=np.inf)
            headroom = np.where(unfixed, demands - rates, np.inf)
            increment = np.minimum(link_limit, headroom)
            delta = increment[unfixed].min()
            if not np.isfinite(delta):
                # Unconstrained flows: cap at demand and finish.
                rates[unfixed] = demands[unfixed]
                break
            delta = max(0.0, delta)
            rates[unfixed] += delta
            residual -= membership[:, unfixed].sum(axis=1) * delta
            # Fix demand-satisfied flows and every flow on a saturated link.
            saturated_links = loaded & (residual <= _RATE_EPS)
            on_saturated = membership[saturated_links, :].any(axis=0)
            fixed |= (rates >= demands - _RATE_EPS) | (unfixed & on_saturated)
        return rates


class HybridScheduler:
    """Classifies flows as fluid or packet and advances the fluid ones.

    One scheduler per testbed.  In ``hybrid`` mode it runs one solver epoch
    every ``epoch_s`` simulated seconds (a single simulator event): settle
    bytes at the previously solved rates, re-resolve paths, re-classify
    against the fidelity-island predicates, re-solve the max-min allocation
    and push the fluid occupancy onto the traversed links.  In ``packet``
    mode nothing ever runs and every flow stays packet-level.

    The testbed wires the three island predicates plus the path resolver:

    * ``chain_predicate(flow)`` -- the client has an active NF chain,
    * ``migration_stations()`` -- stations with in-flight state transfers,
    * fault windows via :meth:`enter_fault_island` / :meth:`exit_fault_island`,
    * ``path_resolver(flow)`` -> :class:`FluidPath`,
    * ``switch_for(station)`` -> the station switch (fluid byte counters).
    """

    def __init__(
        self,
        simulator: Simulator,
        mode: str = "packet",
        epoch_s: float = 0.25,
    ) -> None:
        if mode not in SIMULATION_MODES:
            raise ValueError(f"unknown simulation mode {mode!r}; valid: {SIMULATION_MODES}")
        if epoch_s <= 0:
            raise ValueError(f"epoch_s must be positive, got {epoch_s}")
        self.simulator = simulator
        self.mode = mode
        self.epoch_s = epoch_s
        self.flows: Dict[int, FluidFlow] = {}
        self._flow_ids = itertools.count(1)
        self._task: Optional[PeriodicTask] = None
        self._last_settle_at = 0.0
        # Coalesced re-solve: registrations/retirements mark the allocation
        # dirty and one zero-delay event re-solves for the whole burst, so a
        # fleet of N generators starting at the same instant costs one
        # solver pass instead of N (the naive per-register resolve is
        # O(N^2) and dominated the 10k-client benchmark).
        self._resolve_event: Optional[object] = None
        # Refcounted fault islands by station (overlapping faults both hold).
        self._fault_islands: Dict[str, int] = {}
        # (link, direction_key) pairs currently carrying a fluid load, so a
        # re-solve can zero out links the flow set no longer touches.
        self._loaded_links: Dict[Tuple[int, str], Tuple[object, str]] = {}
        # Wiring (set by the testbed; every hook is optional so the solver
        # and scheduler stay unit-testable in isolation).
        self.chain_predicate: Optional[Callable[[FluidFlow], bool]] = None
        self.migration_stations: Optional[Callable[[], Iterable[str]]] = None
        self.path_resolver: Optional[Callable[[FluidFlow], Optional[FluidPath]]] = None
        self.switch_for: Optional[Callable[[str], object]] = None
        # Counters (``fluid.*`` telemetry).
        self.flows_registered = 0
        self.flows_completed = 0
        self.flows_promoted = 0
        self.flows_demoted = 0
        self.solver_epochs = 0
        self.bytes_fluid_total = 0.0
        self.bytes_packet_total = 0.0
        #: Per-station counters published through the Agents' collectors.
        self.station_counters: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------- properties

    @property
    def hybrid_enabled(self) -> bool:
        return self.mode == "hybrid"

    def active_flows(self) -> List[FluidFlow]:
        return list(self.flows.values())

    def _station_counters(self, station: str) -> Dict[str, float]:
        counters = self.station_counters.get(station)
        if counters is None:
            counters = self.station_counters[station] = {
                "bytes_fluid": 0.0,
                "flows_fluid": 0.0,
                "flows_promoted": 0.0,
                "flows_demoted": 0.0,
            }
        return counters

    # ---------------------------------------------------------------- control

    def start(self) -> "HybridScheduler":
        """Begin solver epochs (no-op in packet mode)."""
        if self.hybrid_enabled and self._task is None:
            self._last_settle_at = self.simulator.now
            self._task = self.simulator.every(
                self.epoch_s, self._epoch, initial_delay=self.epoch_s
            )
        return self

    def stop(self) -> None:
        """Settle the partial epoch, clear link occupancy, stop the task."""
        if self._task is not None:
            self._task.stop()
            self._task = None
        if self._resolve_event is not None:
            if getattr(self._resolve_event, "pending", False):
                self._resolve_event.cancel()
            self._resolve_event = None
        if self.hybrid_enabled:
            self._settle()
            self._clear_link_loads()

    # ----------------------------------------------------------- registration

    def register(self, flow: FluidFlow) -> FluidFlow:
        """Admit a flow; classifies it immediately (hybrid) or pins it packet."""
        flow.flow_id = next(self._flow_ids)
        self.flows[flow.flow_id] = flow
        self.flows_registered += 1
        if self.hybrid_enabled:
            self._settle()
            flow.path = self.path_resolver(flow) if self.path_resolver else None
            if self._must_stay_packet(flow):
                flow.mode = "packet"
            else:
                flow.mode = "fluid"
            self._schedule_resolve()
        else:
            flow.mode = "packet"
        return flow

    def deregister(self, flow: FluidFlow) -> None:
        """Remove a flow (generator stop or transfer completion)."""
        if self.flows.pop(flow.flow_id, None) is None:
            return
        flow.allocated_bps = 0.0
        if self.hybrid_enabled:
            self._settle()
            self._schedule_resolve()

    def record_packet_bytes(self, flow: FluidFlow, size_bytes: float) -> None:
        """Packet-path byte accounting hook used by the bulk generator."""
        flow.record_packet_bytes(size_bytes)
        self.bytes_packet_total += size_bytes

    def flow_finished(self, flow: FluidFlow) -> None:
        """The packet path exhausted the flow's byte budget; retire it.

        Mirrors the fluid-side completion in :meth:`_settle` so
        ``flows_completed`` counts transfers identically no matter which
        regime moved the last byte.
        """
        if flow.flow_id not in self.flows:
            return
        if self.hybrid_enabled:
            self._settle()
        self._complete(flow)
        if self.hybrid_enabled:
            self._schedule_resolve()

    # --------------------------------------------------------- fault islands

    def enter_fault_island(self, station: str) -> None:
        """A fault window opened at ``station``: demote its fluid flows now."""
        self._fault_islands[station] = self._fault_islands.get(station, 0) + 1
        if not self.hybrid_enabled:
            return
        self._settle()
        changed = False
        for flow in self.flows.values():
            if flow.mode == "fluid" and flow.path is not None and flow.path.station == station:
                self._demote(flow)
                changed = True
        if changed:
            self._schedule_resolve()

    def exit_fault_island(self, station: str) -> None:
        """A fault window closed; promotion happens at the next epoch."""
        holds = self._fault_islands.get(station, 0) - 1
        if holds <= 0:
            self._fault_islands.pop(station, None)
        else:
            self._fault_islands[station] = holds

    # -------------------------------------------------------- classification

    def _must_stay_packet(self, flow: FluidFlow) -> bool:
        """True when any fidelity island covers the flow right now."""
        if flow.path is None:
            # Unroutable (client mid-handover): a fluid flow would just
            # stall at rate zero, but packet mode records the disconnect
            # honestly, so unroutable flows stay packet-level.
            return True
        if flow.path.station in self._fault_islands:
            return True
        if self.chain_predicate is not None and self.chain_predicate(flow):
            return True
        if self.migration_stations is not None:
            if flow.path.station in set(self.migration_stations()):
                return True
        return False

    def _demote(self, flow: FluidFlow) -> None:
        flow.mode = "packet"
        flow.allocated_bps = 0.0
        flow.demotions += 1
        self.flows_demoted += 1
        if flow.path is not None:
            self._station_counters(flow.path.station)["flows_demoted"] += 1.0
        if flow.on_mode_change is not None:
            flow.on_mode_change("packet")

    def _promote(self, flow: FluidFlow) -> None:
        flow.mode = "fluid"
        flow.promotions += 1
        self.flows_promoted += 1
        if flow.path is not None:
            self._station_counters(flow.path.station)["flows_promoted"] += 1.0
        if flow.on_mode_change is not None:
            flow.on_mode_change("fluid")

    # ----------------------------------------------------------- solver epoch

    def _schedule_resolve(self) -> None:
        """Queue one zero-delay re-solve for every change in this instant."""
        if self._resolve_event is not None and getattr(self._resolve_event, "pending", False):
            return
        self._resolve_event = self.simulator.schedule(0.0, self._pending_resolve)

    def _pending_resolve(self) -> None:
        self._resolve_event = None
        if self.hybrid_enabled and self._task is not None:
            self._resolve()

    def _epoch(self) -> None:
        self.solver_epochs += 1
        self._settle()
        self._reclassify()
        self._resolve()

    def _reclassify(self) -> None:
        for flow in list(self.flows.values()):
            flow.path = self.path_resolver(flow) if self.path_resolver else flow.path
            islanded = self._must_stay_packet(flow)
            if flow.mode == "fluid" and islanded:
                self._demote(flow)
            elif flow.mode == "packet" and not islanded:
                self._promote(flow)

    def _settle(self) -> None:
        """Advance every fluid flow's bytes at the last solved rates."""
        now = self.simulator.now
        dt = now - self._last_settle_at
        self._last_settle_at = now
        if dt <= 0:
            return
        finished: List[FluidFlow] = []
        for flow in self.flows.values():
            if flow.mode != "fluid" or flow.allocated_bps <= _RATE_EPS:
                continue
            moved = min(flow.allocated_bps * dt / 8.0, flow.remaining_bytes)
            if moved <= 0:
                continue
            flow.bytes_fluid += moved
            self.bytes_fluid_total += moved
            if flow.path is not None:
                self._station_counters(flow.path.station)["bytes_fluid"] += moved
                for link, direction_key in flow.path.links:
                    link.add_fluid_bytes(direction_key, moved)
                if self.switch_for is not None:
                    switch = self.switch_for(flow.path.station)
                    if switch is not None:
                        switch.record_fluid_transit(moved)
            if flow.remaining_bytes <= 0:
                finished.append(flow)
        for flow in finished:
            self._complete(flow)

    def _complete(self, flow: FluidFlow) -> None:
        flow.completed = True
        flow.allocated_bps = 0.0
        self.flows.pop(flow.flow_id, None)
        self.flows_completed += 1
        if flow.on_complete is not None:
            flow.on_complete()

    def _resolve(self) -> None:
        """Re-solve fair shares and push fluid occupancy onto the links."""
        fluid_flows = [
            flow
            for flow in self.flows.values()
            if flow.mode == "fluid" and flow.path is not None
        ]
        # Collect the shared link set in first-seen order (deterministic).
        resources: Dict[Tuple[int, str], Tuple[object, str]] = {}
        for flow in fluid_flows:
            assert flow.path is not None
            for link, direction_key in flow.path.links:
                resources.setdefault((id(link), direction_key), (link, direction_key))
        if fluid_flows:
            keys = list(resources)
            index_of = {key: i for i, key in enumerate(keys)}
            capacities = np.array(
                [resources[key][0].bandwidth_bps for key in keys], dtype=float
            )
            membership = np.zeros((len(keys), len(fluid_flows)), dtype=bool)
            demands = np.empty(len(fluid_flows), dtype=float)
            for f_index, flow in enumerate(fluid_flows):
                demands[f_index] = flow.demand_bps
                assert flow.path is not None
                for link, direction_key in flow.path.links:
                    membership[index_of[(id(link), direction_key)], f_index] = True
            rates = FluidSolver.max_min_rates(capacities, membership, demands)
            for f_index, flow in enumerate(fluid_flows):
                flow.allocated_bps = float(rates[f_index])
        # Push the new occupancy; zero out links that fell out of the set.
        loads: Dict[Tuple[int, str], float] = {key: 0.0 for key in resources}
        for flow in fluid_flows:
            assert flow.path is not None
            if flow.allocated_bps <= _RATE_EPS:
                continue
            for link, direction_key in flow.path.links:
                loads[(id(link), direction_key)] += flow.allocated_bps
        for key, (link, direction_key) in resources.items():
            link.set_fluid_load(direction_key, loads[key])
        for key, (link, direction_key) in self._loaded_links.items():
            if key not in resources:
                link.set_fluid_load(direction_key, 0.0)
        self._loaded_links = dict(resources)
        # Refresh the per-station fluid-flow gauge.
        for counters in self.station_counters.values():
            counters["flows_fluid"] = 0.0
        for flow in fluid_flows:
            assert flow.path is not None
            self._station_counters(flow.path.station)["flows_fluid"] += 1.0

    def _clear_link_loads(self) -> None:
        for link, direction_key in self._loaded_links.values():
            link.set_fluid_load(direction_key, 0.0)
        self._loaded_links = {}

    # ---------------------------------------------------------------- summary

    def summary(self) -> Dict[str, float]:
        """Every counter, including epoch bookkeeping (operational view)."""
        combined = dict(self.digest_summary())
        combined["solver_epochs"] = float(self.solver_epochs)
        combined["flows_active"] = float(len(self.flows))
        return combined

    def digest_summary(self) -> Dict[str, float]:
        """The behaviourally meaningful counters, fed into the MetricsDigest.

        Epoch counts are deliberately excluded: they are an implementation
        detail of the hybrid clock (``packet`` mode runs zero epochs while
        behaving identically on non-bulk scenarios), and the digest must be
        identical across ``simulation_mode`` whenever no flow ever went
        fluid -- the same contract shard_count already obeys.
        """
        return {
            "flows_registered": float(self.flows_registered),
            "flows_completed": float(self.flows_completed),
            "flows_promoted": float(self.flows_promoted),
            "flows_demoted": float(self.flows_demoted),
            "bytes_fluid": float(self.bytes_fluid_total),
            "bytes_packet": float(self.bytes_packet_total),
        }
