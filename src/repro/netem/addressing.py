"""MAC and IPv4 address allocation for the emulated testbed.

The topology builder uses these allocators to hand out unique, deterministic
addresses to stations, cells, clients, servers and NF container interfaces,
mirroring the DHCP/static assignment a real GNF deployment would rely on.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, Iterator, Optional


class AddressExhaustedError(RuntimeError):
    """Raised when an allocator runs out of addresses."""


class MACAllocator:
    """Deterministic, collision-free MAC address allocator.

    Addresses are allocated from the locally-administered range
    ``02:xx:xx:xx:xx:xx`` so they can never collide with real hardware.
    """

    def __init__(self, prefix: int = 0x02) -> None:
        if not 0 <= prefix <= 0xFF:
            raise ValueError(f"MAC prefix must be a single byte, got {prefix:#x}")
        self._prefix = prefix
        self._counter = 0

    def allocate(self) -> str:
        """Return the next unused MAC address."""
        if self._counter >= 2 ** 40:
            raise AddressExhaustedError("MAC allocator exhausted")
        value = self._counter
        self._counter += 1
        octets = [self._prefix]
        for shift in (32, 24, 16, 8, 0):
            octets.append((value >> shift) & 0xFF)
        return ":".join(f"{octet:02x}" for octet in octets)

    @property
    def allocated_count(self) -> int:
        return self._counter


@dataclass(frozen=True)
class Subnet:
    """An IPv4 subnet with a human-readable role (e.g. ``"clients"``)."""

    cidr: str
    role: str = ""

    @property
    def network(self) -> ipaddress.IPv4Network:
        return ipaddress.ip_network(self.cidr)

    def contains(self, address: str) -> bool:
        """True if ``address`` falls inside this subnet."""
        return ipaddress.ip_address(address) in self.network


class IPv4Allocator:
    """Allocates host addresses from a subnet, skipping network/broadcast."""

    def __init__(self, subnet: Subnet) -> None:
        self.subnet = subnet
        self._hosts: Iterator[ipaddress.IPv4Address] = subnet.network.hosts()
        self._allocated: Dict[str, str] = {}

    def allocate(self, owner: str = "") -> str:
        """Return the next free address, remembering the owner for debugging."""
        try:
            address = str(next(self._hosts))
        except StopIteration as exc:
            raise AddressExhaustedError(f"subnet {self.subnet.cidr} exhausted") from exc
        self._allocated[address] = owner
        return address

    def owner_of(self, address: str) -> Optional[str]:
        """Return the recorded owner of an allocated address, if any."""
        return self._allocated.get(address)

    @property
    def allocated(self) -> Dict[str, str]:
        """Mapping of allocated address -> owner label."""
        return dict(self._allocated)

    def __len__(self) -> int:
        return len(self._allocated)


class AddressPlan:
    """The complete address plan for an emulated edge deployment.

    Groups one allocator per functional subnet so the topology builder (and
    tests) can ask for "a client address" or "a server address" without
    caring about the underlying CIDR layout.
    """

    DEFAULT_SUBNETS = {
        "clients": "10.10.0.0/16",
        "stations": "10.20.0.0/16",
        "servers": "10.30.0.0/16",
        "containers": "10.40.0.0/16",
        "control": "10.50.0.0/16",
    }

    def __init__(self, subnets: Optional[Dict[str, str]] = None) -> None:
        layout = dict(self.DEFAULT_SUBNETS)
        if subnets:
            layout.update(subnets)
        self.subnets: Dict[str, Subnet] = {
            role: Subnet(cidr=cidr, role=role) for role, cidr in layout.items()
        }
        self._allocators: Dict[str, IPv4Allocator] = {
            role: IPv4Allocator(subnet) for role, subnet in self.subnets.items()
        }
        self.macs = MACAllocator()

    def allocate_ip(self, role: str, owner: str = "") -> str:
        """Allocate an IPv4 address from the subnet serving ``role``."""
        if role not in self._allocators:
            raise KeyError(f"unknown address role {role!r}; known: {sorted(self._allocators)}")
        return self._allocators[role].allocate(owner)

    def allocate_mac(self) -> str:
        """Allocate a MAC address."""
        return self.macs.allocate()

    def role_of(self, address: str) -> Optional[str]:
        """Return which functional subnet an address belongs to."""
        for role, subnet in self.subnets.items():
            if subnet.contains(address):
                return role
        return None
