"""Flow bookkeeping.

The Manager's UI shows per-client "network traffic" statistics and several
NFs (flow monitor, rate limiter, IDS) need per-flow state.  ``FlowTracker``
provides that: it observes packets at some vantage point and maintains
per-flow counters plus idle-timeout expiry, the same role conntrack plays on
the paper's home routers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.netem.packet import FlowKey, Packet


@dataclass
class Flow:
    """Counters for one unidirectional five-tuple flow."""

    key: FlowKey
    packets: int = 0
    bytes: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0

    @property
    def duration(self) -> float:
        return max(0.0, self.last_seen - self.first_seen)

    @property
    def mean_packet_size(self) -> float:
        return self.bytes / self.packets if self.packets else 0.0

    def throughput_bps(self) -> float:
        """Average throughput over the flow lifetime in bits per second."""
        if self.duration <= 0:
            return 0.0
        return self.bytes * 8 / self.duration


class FlowTracker:
    """Tracks flows observed at a single vantage point.

    Parameters
    ----------
    idle_timeout_s:
        Flows not seen for this long are expired by :meth:`expire_idle`.
    bidirectional:
        If True, both directions of a connection are folded into one entry
        keyed by the canonical five-tuple.
    """

    def __init__(self, idle_timeout_s: float = 30.0, bidirectional: bool = False) -> None:
        self.idle_timeout_s = idle_timeout_s
        self.bidirectional = bidirectional
        self._flows: Dict[FlowKey, Flow] = {}
        self.total_packets = 0
        self.total_bytes = 0
        self.expired_flows = 0

    def observe(self, packet: Packet, now: float) -> Optional[Flow]:
        """Record a packet; returns the flow entry it was accounted to."""
        key = packet.flow_key
        if key is None:
            return None
        if self.bidirectional:
            key = key.canonical()
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(key=key, first_seen=now, last_seen=now)
            self._flows[key] = flow
        flow.packets += 1
        flow.bytes += packet.size_bytes
        flow.last_seen = now
        self.total_packets += 1
        self.total_bytes += packet.size_bytes
        return flow

    def expire_idle(self, now: float) -> List[Flow]:
        """Drop flows idle for longer than the timeout; returns the expired ones."""
        expired = [
            flow
            for flow in self._flows.values()
            if now - flow.last_seen > self.idle_timeout_s
        ]
        for flow in expired:
            del self._flows[flow.key]
        self.expired_flows += len(expired)
        return expired

    def flow(self, key: FlowKey) -> Optional[Flow]:
        if self.bidirectional:
            key = key.canonical()
        return self._flows.get(key)

    def active_flows(self) -> List[Flow]:
        return list(self._flows.values())

    def top_flows(self, count: int = 10) -> List[Flow]:
        """The ``count`` largest flows by byte volume (for the UI's top-talkers)."""
        return sorted(self._flows.values(), key=lambda flow: flow.bytes, reverse=True)[:count]

    def __len__(self) -> int:
        return len(self._flows)

    def snapshot(self) -> Dict[str, float]:
        """Aggregate statistics suitable for telemetry export."""
        return {
            "active_flows": float(len(self._flows)),
            "total_packets": float(self.total_packets),
            "total_bytes": float(self.total_bytes),
            "expired_flows": float(self.expired_flows),
        }
