"""The per-station software switch.

Every GNF edge station runs a software switch (a Linux bridge / OVS in the
real deployment).  Client-facing cells, the uplink towards the gateway and
every NF container veth pair are plugged into numbered ports.  Forwarding
follows a two-stage pipeline:

1. the priority :class:`~repro.netem.flowtable.FlowTable` -- where the GNF
   Agent installs steering rules to push a client's traffic through NF
   chains ("transparent traffic handling"), and
2. a learning L2 switch fallback for everything without an explicit rule.

The switch also keeps per-port counters that feed the Manager's "network
resource consumption" view shown in the demo UI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.netem.flowtable import Action, ActionType, FlowRule, FlowTable
from repro.netem.host import Host, Interface
from repro.netem.packet import BROADCAST_MAC, Packet
from repro.netem.simulator import Simulator


@dataclass
class PortStats:
    """Per-port packet and byte counters."""

    rx_packets: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0


@dataclass
class SwitchPort:
    """A numbered switch port bound to an interface.

    ``no_flood`` marks ports that must never receive flooded traffic -- GNF
    Agents set it on NF veth ports so network functions only ever see packets
    explicitly steered to them by flow rules.
    """

    number: int
    interface: Interface
    name: str = ""
    no_flood: bool = False
    stats: PortStats = field(default_factory=PortStats)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.interface.name


class SoftwareSwitch(Host):
    """Learning switch with a priority flow table, one per edge station.

    Parameters
    ----------
    forwarding_delay_s:
        Per-packet processing latency of the software datapath.  The default
        (20 microseconds) approximates a software bridge on a low-end MIPS
        router like the TP-Link WDR3600 used in the demo.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        forwarding_delay_s: float = 20e-6,
    ) -> None:
        super().__init__(simulator, name)
        self.flow_table = FlowTable(name=f"{name}-flows")
        self.forwarding_delay_s = forwarding_delay_s
        self.ports: Dict[int, SwitchPort] = {}
        self._interface_to_port: Dict[str, int] = {}
        self.mac_table: Dict[str, int] = {}
        self._next_port = 1
        self.packets_forwarded = 0
        self.packets_flooded = 0
        self.packets_dropped = 0

    # -------------------------------------------------------------- ports

    def add_port(
        self,
        interface: Interface,
        port_number: Optional[int] = None,
        no_flood: bool = False,
    ) -> SwitchPort:
        """Plug an interface into the switch and return the new port."""
        if port_number is None:
            port_number = self._next_port
        if port_number in self.ports:
            raise ValueError(f"switch {self.name} already has port {port_number}")
        self._next_port = max(self._next_port, port_number + 1)
        self.add_interface(interface)
        port = SwitchPort(number=port_number, interface=interface, no_flood=no_flood)
        self.ports[port_number] = port
        self._interface_to_port[interface.name] = port_number
        return port

    def remove_port(self, port_number: int) -> None:
        """Unplug a port (e.g. when an NF container is destroyed)."""
        port = self.ports.pop(port_number, None)
        if port is None:
            return
        self._interface_to_port.pop(port.interface.name, None)
        self.interfaces.pop(port.interface.name, None)
        # Drop any MAC table entries pointing at the removed port.
        self.mac_table = {mac: p for mac, p in self.mac_table.items() if p != port_number}

    def port_of(self, interface: Interface) -> Optional[int]:
        """Port number an interface is plugged into, if any."""
        return self._interface_to_port.get(interface.name)

    def port(self, port_number: int) -> SwitchPort:
        return self.ports[port_number]

    # ---------------------------------------------------------- forwarding

    def receive_packet(self, packet: Packet, interface: Interface) -> None:
        self.rx_packets += 1
        in_port = self._interface_to_port.get(interface.name)
        if in_port is None:
            self.packets_dropped += 1
            return
        port = self.ports[in_port]
        port.stats.rx_packets += 1
        port.stats.rx_bytes += packet.size_bytes

        # Learn the source MAC so the fallback learning switch converges.
        if packet.eth is not None and packet.eth.src != BROADCAST_MAC:
            self.mac_table[packet.eth.src] = in_port

        if self.forwarding_delay_s > 0:
            self.simulator.schedule(self.forwarding_delay_s, self._pipeline, packet, in_port)
        else:
            self._pipeline(packet, in_port)

    def _pipeline(self, packet: Packet, in_port: int) -> None:
        rule = self.flow_table.lookup(packet, in_port)
        if rule is not None:
            self._apply_actions(packet, in_port, rule)
            return
        self._l2_forward(packet, in_port)

    def _apply_actions(self, packet: Packet, in_port: int, rule: FlowRule) -> None:
        for action in rule.actions:
            if action.action_type is ActionType.DROP:
                self.packets_dropped += 1
                return
            if action.action_type is ActionType.OUTPUT:
                self._output(packet, int(action.value))  # type: ignore[arg-type]
            elif action.action_type is ActionType.FLOOD:
                self._flood(packet, in_port)
            elif action.action_type is ActionType.SET_ETH_DST and packet.eth is not None:
                packet.eth.dst = str(action.value)
            elif action.action_type is ActionType.SET_ETH_SRC and packet.eth is not None:
                packet.eth.src = str(action.value)
            elif action.action_type is ActionType.SET_IP_DST and packet.ip is not None:
                packet.ip.dst = str(action.value)
            elif action.action_type is ActionType.SET_IP_SRC and packet.ip is not None:
                packet.ip.src = str(action.value)
            elif action.action_type is ActionType.SET_METADATA:
                key, value = action.value  # type: ignore[misc]
                packet.metadata[key] = value

    def _l2_forward(self, packet: Packet, in_port: int) -> None:
        if packet.eth is None:
            self.packets_dropped += 1
            return
        if packet.eth.dst == BROADCAST_MAC:
            self._flood(packet, in_port)
            return
        out_port = self.mac_table.get(packet.eth.dst)
        if out_port is None:
            self._flood(packet, in_port)
            return
        if out_port == in_port:
            self.packets_dropped += 1
            return
        self._output(packet, out_port)

    def _output(self, packet: Packet, port_number: int) -> None:
        port = self.ports.get(port_number)
        if port is None:
            self.packets_dropped += 1
            return
        port.stats.tx_packets += 1
        port.stats.tx_bytes += packet.size_bytes
        self.packets_forwarded += 1
        self.tx_packets += 1
        port.interface.send(packet)

    def _flood(self, packet: Packet, in_port: int) -> None:
        self.packets_flooded += 1
        for number, port in self.ports.items():
            if number == in_port or port.no_flood:
                continue
            port.stats.tx_packets += 1
            port.stats.tx_bytes += packet.size_bytes
            self.tx_packets += 1
            port.interface.send(packet.copy())

    # -------------------------------------------------------------- stats

    def port_stats(self) -> Dict[int, PortStats]:
        """Snapshot of per-port counters keyed by port number."""
        return {number: port.stats for number, port in self.ports.items()}

    def summary(self) -> Dict[str, int]:
        """Aggregate switch statistics (fed into Agent heartbeats)."""
        return {
            "ports": len(self.ports),
            "flow_rules": len(self.flow_table),
            "packets_forwarded": self.packets_forwarded,
            "packets_flooded": self.packets_flooded,
            "packets_dropped": self.packets_dropped,
            "mac_entries": len(self.mac_table),
        }
