"""The per-station software switch.

Every GNF edge station runs a software switch (a Linux bridge / OVS in the
real deployment).  Client-facing cells, the uplink towards the gateway and
every NF container veth pair are plugged into numbered ports.  Forwarding
follows a two-stage pipeline:

1. the priority :class:`~repro.netem.flowtable.FlowTable` -- where the GNF
   Agent installs steering rules to push a client's traffic through NF
   chains ("transparent traffic handling"), and
2. a learning L2 switch fallback for everything without an explicit rule.

The switch also keeps per-port counters that feed the Manager's "network
resource consumption" view shown in the demo UI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.netem.fastpath import (
    OP_DROP,
    OP_FLOOD,
    OP_OUTPUT,
    OP_SET_ETH_DST,
    OP_SET_ETH_SRC,
    OP_SET_IP_DST,
    OP_SET_IP_SRC,
    OP_SET_METADATA,
    CompiledVerdict,
    FlowCache,
    FlowKey,
)
from repro.netem.flowtable import Action, ActionType, FlowRule, FlowTable
from repro.netem.host import Host, Interface
from repro.netem.packet import BROADCAST_MAC, Packet
from repro.netem.simulator import Simulator


@dataclass
class PortStats:
    """Per-port packet and byte counters."""

    rx_packets: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0


@dataclass
class SwitchPort:
    """A numbered switch port bound to an interface.

    ``no_flood`` marks ports that must never receive flooded traffic -- GNF
    Agents set it on NF veth ports so network functions only ever see packets
    explicitly steered to them by flow rules.
    """

    number: int
    interface: Interface
    name: str = ""
    no_flood: bool = False
    stats: PortStats = field(default_factory=PortStats)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.interface.name


class SoftwareSwitch(Host):
    """Learning switch with a priority flow table, one per edge station.

    Parameters
    ----------
    forwarding_delay_s:
        Per-packet processing latency of the software datapath.  The default
        (20 microseconds) approximates a software bridge on a low-end MIPS
        router like the TP-Link WDR3600 used in the demo.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        forwarding_delay_s: float = 20e-6,
        fastpath_enabled: bool = True,
        flow_cache_capacity: int = 8192,
    ) -> None:
        super().__init__(simulator, name)
        self.flow_table = FlowTable(name=f"{name}-flows")
        self.forwarding_delay_s = forwarding_delay_s
        #: When enabled, flow-table verdicts are cached in an exact-match
        #: microflow cache keyed by the packet's FlowKey; cache hits skip the
        #: scheduled forwarding-delay event and the linear rule walk entirely
        #: (the kernel-datapath hit of a real OVS deployment).
        self.fastpath_enabled = fastpath_enabled
        self.flow_cache = FlowCache(name=f"{name}-cache", capacity=flow_cache_capacity)
        self.ports: Dict[int, SwitchPort] = {}
        self._interface_to_port: Dict[str, int] = {}
        self.mac_table: Dict[str, int] = {}
        # Per-in-port deadline of the latest scheduled slow-path packet.  A
        # cache hit must not overtake packets of the same port still deferred
        # in the slow path (the miss -> hit transition window), so hits are
        # queued behind this deadline; in steady state it lies in the past
        # and hits apply inline.
        self._slowpath_busy_until: Dict[int, float] = {}
        self._next_port = 1
        self.packets_forwarded = 0
        self.packets_flooded = 0
        self.packets_dropped = 0
        # Bytes moved "through" this switch by the fluid model in hybrid
        # mode; always zero in pure packet mode.
        self.fluid_bytes_carried = 0.0

    # -------------------------------------------------------------- ports

    def add_port(
        self,
        interface: Interface,
        port_number: Optional[int] = None,
        no_flood: bool = False,
    ) -> SwitchPort:
        """Plug an interface into the switch and return the new port."""
        if port_number is None:
            port_number = self._next_port
        if port_number in self.ports:
            raise ValueError(f"switch {self.name} already has port {port_number}")
        self._next_port = max(self._next_port, port_number + 1)
        self.add_interface(interface)
        port = SwitchPort(number=port_number, interface=interface, no_flood=no_flood)
        self.ports[port_number] = port
        self._interface_to_port[interface.name] = port_number
        return port

    def remove_port(self, port_number: int) -> None:
        """Unplug a port (e.g. when an NF container is destroyed)."""
        port = self.ports.pop(port_number, None)
        if port is None:
            return
        self._interface_to_port.pop(port.interface.name, None)
        self.interfaces.pop(port.interface.name, None)
        # Drop any MAC table entries pointing at the removed port.
        self.mac_table = {mac: p for mac, p in self.mac_table.items() if p != port_number}

    def port_of(self, interface: Interface) -> Optional[int]:
        """Port number an interface is plugged into, if any."""
        return self._interface_to_port.get(interface.name)

    def port(self, port_number: int) -> SwitchPort:
        return self.ports[port_number]

    # ---------------------------------------------------------- forwarding

    def receive_packet(self, packet: Packet, interface: Interface) -> None:
        self.rx_packets += 1
        in_port = self._interface_to_port.get(interface.name)
        if in_port is None:
            self.packets_dropped += 1
            return
        port = self.ports[in_port]
        port.stats.rx_packets += 1
        port.stats.rx_bytes += packet.size_bytes

        # Learn the source MAC so the fallback learning switch converges.
        if packet.eth is not None and packet.eth.src != BROADCAST_MAC:
            self.mac_table[packet.eth.src] = in_port

        if self.fastpath_enabled:
            verdict = self._fastpath_lookup(packet, in_port)
            if verdict is not None:
                deadline = self._slowpath_busy_until.get(in_port, 0.0)
                if deadline > self.simulator.now:
                    # Earlier packets of this port are still deferred in the
                    # slow path: preserve per-port FIFO by queueing the hit
                    # behind them (insertion order breaks the time tie).
                    # Counters and actions apply at the deadline, once the
                    # verdict is confirmed still fresh.
                    self.simulator.schedule_at(
                        deadline, self._apply_deferred, packet, in_port, verdict
                    )
                else:
                    verdict.rule.record(packet)
                    self._apply_verdict(packet, in_port, verdict, self._output)
                return
        self._to_slow_path(packet, in_port)

    def receive_batch(self, packets: Sequence[Packet], interface: Interface) -> None:
        """Classify and forward a whole batch in one pass.

        Cache hits are grouped per verdict with their outputs coalesced (one
        downstream link event per verdict instead of one per packet); misses
        -- and hits on rare verdict shapes the batch path does not pre-decode
        (flood, field rewrites) -- fall through to the per-packet slow path,
        where the verdict is compiled into the cache for the rest of the flow.
        Counters and metadata mutations are applied at flush time, after the
        verdicts are confirmed still fresh.
        """
        packets = list(packets)
        if not packets:
            return
        in_port = self._interface_to_port.get(interface.name)
        if in_port is None:
            self.rx_packets += len(packets)
            self.packets_dropped += len(packets)
            return
        port = self.ports[in_port]
        self.rx_packets += len(packets)
        port.stats.rx_packets += len(packets)

        mac_table = self.mac_table
        fastpath = self.fastpath_enabled
        cache = self.flow_cache
        metadata_keys = self.flow_table.referenced_metadata_keys
        generation = self.flow_table.generation
        # Hit packets are grouped by what will be done to them -- (out_port,
        # metadata tag) -- so different flows sharing an application (e.g.
        # every client flow steered up the same chain hop) coalesce into one
        # downstream batch.  Per-rule counter updates are remembered per
        # packet and applied at flush time, once freshness is confirmed.
        pending: Dict[tuple, List[Packet]] = {}
        records: List[tuple] = []
        complex_hits: List[tuple] = []
        slow: List[Packet] = []
        total_bytes = 0

        extract = FlowKey.extract
        for packet in packets:
            size = packet.size_bytes
            total_bytes += size
            eth = packet.eth
            if eth is not None and eth.src != BROADCAST_MAC:
                mac_table[eth.src] = in_port
            verdict = None
            if fastpath:
                try:
                    verdict = cache.lookup(extract(packet, in_port, metadata_keys), generation)
                except TypeError:  # unhashable metadata value: slow path
                    verdict = None
            if verdict is None:
                slow.append(packet)
                continue
            if verdict.fast_port is None:
                # Rare shapes (drop, flood, field rewrites) replay per packet
                # at flush time -- still a cache hit, no table walk.
                complex_hits.append((verdict, packet))
                continue
            records.append((verdict.rule, size))
            group = (verdict.fast_port, verdict.fast_meta)
            queue = pending.get(group)
            if queue is None:
                queue = pending[group] = []
            queue.append(packet)

        port.stats.rx_bytes += total_bytes
        for packet in slow:
            self._to_slow_path(packet, in_port)
        # Hits must not overtake packets of the same port still deferred in
        # the slow path (earlier arrivals, or misses of this very batch);
        # note same-flow packets classify identically within one batch, so
        # deferring the flush only reorders across flows, never within one.
        deadline = self._slowpath_busy_until.get(in_port, 0.0)
        if pending or complex_hits:
            if deadline > self.simulator.now:
                self.simulator.schedule_at(
                    deadline, self._flush_pending, pending, records, complex_hits, in_port, generation
                )
            else:
                self._flush_pending(pending, records, complex_hits, in_port, generation)

    def _apply_deferred(self, packet: Packet, in_port: int, verdict: CompiledVerdict) -> None:
        """Apply a hit that was queued behind the slow path, unless it went stale.

        The flow table may have changed inside the deferral window (e.g. a
        migration tearing down chain rules); replaying the captured verdict
        then would forward where the live table no longer would, so a stale
        verdict is sent back through the full pipeline instead (which also
        re-records the counters against whatever rule matches now).
        """
        if verdict.generation != self.flow_table.generation:
            self._pipeline(packet, in_port)
            return
        verdict.rule.record(packet)
        self._apply_verdict(packet, in_port, verdict, self._output)

    def _flush_pending(
        self,
        pending: Dict[tuple, List[Packet]],
        records: List[tuple],
        complex_hits: List[tuple],
        in_port: int,
        generation: int,
    ) -> None:
        if generation != self.flow_table.generation:
            # Table changed while the flush was queued: the captured verdicts
            # are stale, so every packet goes back through the pipeline
            # untouched (no counters were recorded, no metadata was stamped).
            for ready in pending.values():
                for packet in ready:
                    self._pipeline(packet, in_port)
            for _, packet in complex_hits:
                self._pipeline(packet, in_port)
            return
        for rule, size in records:
            rule.packets_matched += 1
            rule.bytes_matched += size
        for (out_port, meta), ready in pending.items():
            if meta is not None:
                key, value = meta
                for packet in ready:
                    packet.metadata[key] = value
            self._output_batch(ready, out_port)
        for verdict, packet in complex_hits:
            verdict.rule.record(packet)
            self._apply_verdict(packet, in_port, verdict, self._output)

    def _to_slow_path(self, packet: Packet, in_port: int) -> None:
        if self.forwarding_delay_s > 0:
            deadline = self.simulator.now + self.forwarding_delay_s
            busy = self._slowpath_busy_until
            if deadline > busy.get(in_port, 0.0):
                busy[in_port] = deadline
            self.simulator.schedule_at(deadline, self._pipeline, packet, in_port)
        else:
            self._pipeline(packet, in_port)

    def _fastpath_lookup(self, packet: Packet, in_port: int) -> Optional[CompiledVerdict]:
        try:
            key = FlowKey.extract(packet, in_port, self.flow_table.referenced_metadata_keys)
            return self.flow_cache.lookup(key, self.flow_table.generation)
        except TypeError:  # unhashable metadata value: stay on the slow path
            return None

    def _pipeline(self, packet: Packet, in_port: int) -> None:
        rule = self.flow_table.lookup(packet, in_port)
        if rule is not None:
            if self.fastpath_enabled:
                # Compile the verdict *before* applying actions: actions may
                # mutate the very fields the key was derived from.
                try:
                    key = FlowKey.extract(packet, in_port, self.flow_table.referenced_metadata_keys)
                    self.flow_cache.store(key, CompiledVerdict(rule, self.flow_table.generation))
                except TypeError:
                    pass
            self._apply_actions(packet, in_port, rule)
            return
        self._l2_forward(packet, in_port)

    def _apply_verdict(
        self,
        packet: Packet,
        in_port: int,
        verdict: CompiledVerdict,
        output: Callable[[Packet, int], None],
    ) -> None:
        """Replay a compiled verdict; ``output`` routes emitted packets."""
        for opcode, value in verdict.ops:
            if opcode == OP_OUTPUT:
                output(packet, value)  # type: ignore[arg-type]
            elif opcode == OP_DROP:
                self.packets_dropped += 1
                return
            elif opcode == OP_SET_METADATA:
                key, meta_value = value  # type: ignore[misc]
                packet.metadata[key] = meta_value
            elif opcode == OP_FLOOD:
                self._flood(packet, in_port)
            elif opcode == OP_SET_ETH_DST and packet.eth is not None:
                packet.eth.dst = str(value)
            elif opcode == OP_SET_ETH_SRC and packet.eth is not None:
                packet.eth.src = str(value)
            elif opcode == OP_SET_IP_DST and packet.ip is not None:
                packet.ip.dst = str(value)
            elif opcode == OP_SET_IP_SRC and packet.ip is not None:
                packet.ip.src = str(value)

    def _apply_actions(self, packet: Packet, in_port: int, rule: FlowRule) -> None:
        for action in rule.actions:
            if action.action_type is ActionType.DROP:
                self.packets_dropped += 1
                return
            if action.action_type is ActionType.OUTPUT:
                self._output(packet, int(action.value))  # type: ignore[arg-type]
            elif action.action_type is ActionType.FLOOD:
                self._flood(packet, in_port)
            elif action.action_type is ActionType.SET_ETH_DST and packet.eth is not None:
                packet.eth.dst = str(action.value)
            elif action.action_type is ActionType.SET_ETH_SRC and packet.eth is not None:
                packet.eth.src = str(action.value)
            elif action.action_type is ActionType.SET_IP_DST and packet.ip is not None:
                packet.ip.dst = str(action.value)
            elif action.action_type is ActionType.SET_IP_SRC and packet.ip is not None:
                packet.ip.src = str(action.value)
            elif action.action_type is ActionType.SET_METADATA:
                key, value = action.value  # type: ignore[misc]
                packet.metadata[key] = value

    def _l2_forward(self, packet: Packet, in_port: int) -> None:
        if packet.eth is None:
            self.packets_dropped += 1
            return
        if packet.eth.dst == BROADCAST_MAC:
            self._flood(packet, in_port)
            return
        out_port = self.mac_table.get(packet.eth.dst)
        if out_port is None:
            self._flood(packet, in_port)
            return
        if out_port == in_port:
            self.packets_dropped += 1
            return
        self._output(packet, out_port)

    def _output(self, packet: Packet, port_number: int) -> None:
        port = self.ports.get(port_number)
        if port is None:
            self.packets_dropped += 1
            return
        port.stats.tx_packets += 1
        port.stats.tx_bytes += packet.size_bytes
        self.packets_forwarded += 1
        self.tx_packets += 1
        port.interface.send(packet)

    def _output_batch(self, packets: List[Packet], port_number: int) -> None:
        port = self.ports.get(port_number)
        if port is None:
            self.packets_dropped += len(packets)
            return
        count = len(packets)
        size = sum(packet.size_bytes for packet in packets)
        port.stats.tx_packets += count
        port.stats.tx_bytes += size
        self.packets_forwarded += count
        self.tx_packets += count
        port.interface.send_batch(packets)

    def _flood(self, packet: Packet, in_port: int) -> None:
        self.packets_flooded += 1
        for number, port in self.ports.items():
            if number == in_port or port.no_flood:
                continue
            port.stats.tx_packets += 1
            port.stats.tx_bytes += packet.size_bytes
            self.tx_packets += 1
            port.interface.send(packet.copy())

    def record_fluid_transit(self, size_bytes: float) -> None:
        """Account bytes the fluid solver moved through this switch (hybrid mode)."""
        self.fluid_bytes_carried += size_bytes

    # -------------------------------------------------------------- stats

    def port_stats(self) -> Dict[int, PortStats]:
        """Snapshot of per-port counters keyed by port number."""
        return {number: port.stats for number, port in self.ports.items()}

    def summary(self) -> Dict[str, int]:
        """Aggregate switch statistics (fed into Agent heartbeats)."""
        return {
            "ports": len(self.ports),
            "flow_rules": len(self.flow_table),
            "packets_forwarded": self.packets_forwarded,
            "packets_flooded": self.packets_flooded,
            "packets_dropped": self.packets_dropped,
            "mac_entries": len(self.mac_table),
            "fastpath_hits": self.flow_cache.hits,
            "fastpath_misses": self.flow_cache.misses,
            "fastpath_entries": len(self.flow_cache),
            "fluid_bytes_carried": int(self.fluid_bytes_carried),
        }
