"""Edge network topologies.

This module builds the emulated equivalent of the paper's demo setup
(Fig. 2): a set of edge stations (home routers / access points that host NF
containers), a gateway that anchors mobile clients' traffic, and a core data
centre with application servers.  The :class:`EdgeTopology` object is the
single source of truth about who is wired to what and is consumed by the
wireless layer (which attaches cells and clients), by the GNF Agents (which
steer traffic on the station switches) and by the placement/latency
benchmarks (via the delay-weighted topology graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.netem.addressing import AddressPlan
from repro.netem.flowtable import Action, Match
from repro.netem.host import Host, Interface, Server
from repro.netem.link import Link
from repro.netem.packet import Packet
from repro.netem.simulator import Simulator
from repro.netem.switch import SoftwareSwitch

# Flow rule priorities used on the station switches.  GNF chain steering
# (installed by Agents) uses CHAIN_PRIORITY and therefore always overrides
# the plain association rules.
DEFAULT_PRIORITY = 1
ASSOCIATION_PRIORITY = 5
CHAIN_PRIORITY = 100


@dataclass(frozen=True)
class StationProfile:
    """Compute capacity of an edge station.

    ``ROUTER_CLASS`` mirrors the TP-Link WDR3600 home routers used in the
    demo; ``SERVER_CLASS`` mirrors a small x86 edge server.
    """

    name: str
    cpu_mhz: float
    memory_mb: float
    switch_forwarding_delay_s: float

    @classmethod
    def router_class(cls) -> "StationProfile":
        return cls(name="router-class", cpu_mhz=560.0, memory_mb=128.0, switch_forwarding_delay_s=50e-6)

    @classmethod
    def server_class(cls) -> "StationProfile":
        return cls(name="server-class", cpu_mhz=4 * 3000.0, memory_mb=16_384.0, switch_forwarding_delay_s=5e-6)


@dataclass
class TopologyConfig:
    """Tunable parameters of the emulated edge deployment."""

    station_count: int = 2
    station_profile: StationProfile = field(default_factory=StationProfile.router_class)
    station_spacing_m: float = 100.0
    uplink_bandwidth_bps: float = 100e6
    uplink_delay_s: float = 0.005
    core_bandwidth_bps: float = 10e9
    core_delay_s: float = 0.010
    gateway_forwarding_delay_s: float = 10e-6
    server_count: int = 1
    server_http_body_bytes: int = 10_000
    dns_zone: Dict[str, List[str]] = field(default_factory=dict)
    #: Enable the flow-cached fast path on every station switch.
    fastpath_enabled: bool = True


class EdgeStation:
    """An edge station: the software switch plus its compute resources.

    The container runtime (``repro.containers``) and the GNF Agent
    (``repro.core.agent``) attach themselves to the station after topology
    construction; the station itself only knows about wiring and about the
    flow rules that keep associated clients reachable.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        profile: StationProfile,
        position: Tuple[float, float] = (0.0, 0.0),
        fastpath_enabled: bool = True,
    ) -> None:
        self.simulator = simulator
        self.name = name
        self.profile = profile
        self.position = position
        self.switch = SoftwareSwitch(
            simulator,
            name=f"{name}-switch",
            forwarding_delay_s=profile.switch_forwarding_delay_s,
            fastpath_enabled=fastpath_enabled,
        )
        self.uplink_port: Optional[int] = None
        self.cell_ports: Dict[str, int] = {}
        # Attached later by the containers / core packages.
        self.runtime = None
        self.agent = None

    # ------------------------------------------------------------- wiring

    def set_uplink_port(self, port_number: int) -> None:
        self.uplink_port = port_number

    def register_cell_port(self, cell_name: str, port_number: int) -> None:
        """Record that ``cell_name`` is reachable through switch port ``port_number``."""
        self.cell_ports[cell_name] = port_number
        if self.uplink_port is not None:
            # Default upstream rule: anything a client sends towards the
            # network leaves through the uplink unless a chain rule overrides.
            self.switch.flow_table.add(
                priority=DEFAULT_PRIORITY,
                match=Match(in_port=port_number),
                actions=[Action.output(self.uplink_port)],
                cookie=f"default-up:{cell_name}",
            )

    # ----------------------------------------------------- client presence

    def register_client(self, client_ip: str, cell_name: str) -> None:
        """Install the downstream association rule for a newly attached client."""
        port = self.cell_ports[cell_name]
        self.unregister_client(client_ip)
        self.switch.flow_table.add(
            priority=ASSOCIATION_PRIORITY,
            match=Match(ip_dst=client_ip),
            actions=[Action.output(port)],
            cookie=f"assoc:{client_ip}",
        )

    def unregister_client(self, client_ip: str) -> None:
        """Remove the association rule when the client leaves this station."""
        self.switch.flow_table.remove_by_cookie(f"assoc:{client_ip}")

    def associated_client_rules(self) -> List[str]:
        """Cookies of the association rules currently installed (for tests/UI)."""
        return sorted(
            {rule.cookie for rule in self.switch.flow_table.rules() if rule.cookie.startswith("assoc:")}
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"EdgeStation({self.name!r}, profile={self.profile.name})"


class Gateway(Host):
    """Mobility-anchor router between the edge stations and the core.

    In the demo the provider's network sits behind an Internet gateway; the
    reproduction models it as the node that (a) routes upstream traffic to
    the core servers and (b) keeps a client-location table so downstream
    traffic follows the client as it roams -- which is what makes NF roaming
    observable end-to-end.
    """

    def __init__(self, simulator: Simulator, name: str = "gateway", forwarding_delay_s: float = 10e-6) -> None:
        super().__init__(simulator, name)
        self.forwarding_delay_s = forwarding_delay_s
        self.station_interfaces: Dict[str, Interface] = {}
        self.core_interface: Optional[Interface] = None
        self.server_macs: Dict[str, str] = {}
        self.client_locations: Dict[str, str] = {}
        self.client_macs: Dict[str, str] = {}
        #: Migration state-transfer endpoints: IP -> (station, endpoint MAC).
        #: Registered by the migration engine so checkpoint chunks ride the
        #: same uplinks as client traffic (kept out of the client counters).
        self.migration_endpoints: Dict[str, Tuple[str, str]] = {}
        self.packets_routed_upstream = 0
        self.packets_routed_downstream = 0
        self.packets_dropped = 0
        self.state_chunks_routed = 0
        self.location_updates = 0

    # ------------------------------------------------------------ registry

    def register_station(self, station_name: str, interface: Interface) -> None:
        self.station_interfaces[station_name] = interface

    def register_server(self, server_ip: str, server_mac: str) -> None:
        self.server_macs[server_ip] = server_mac

    def register_client(self, client_ip: str, client_mac: str, station_name: str) -> None:
        """Create or update the anchor entry for a client."""
        self.client_macs[client_ip] = client_mac
        self.update_client_location(client_ip, station_name)

    def update_client_location(self, client_ip: str, station_name: str) -> None:
        """Point downstream forwarding for ``client_ip`` at ``station_name``."""
        if station_name not in self.station_interfaces:
            raise KeyError(f"gateway does not know station {station_name!r}")
        self.client_locations[client_ip] = station_name
        self.location_updates += 1

    def register_migration_endpoint(self, ip: str, mac: str, station_name: str) -> None:
        """Route a station's migration endpoint address to that station."""
        if station_name not in self.station_interfaces:
            raise KeyError(f"gateway does not know station {station_name!r}")
        self.migration_endpoints[ip] = (station_name, mac)

    def remove_client(self, client_ip: str) -> None:
        self.client_locations.pop(client_ip, None)
        self.client_macs.pop(client_ip, None)

    # ---------------------------------------------------------- forwarding

    def handle_packet(self, packet: Packet, interface: Interface) -> None:
        if packet.ip is None:
            self.packets_dropped += 1
            return
        if not packet.decrement_ttl():
            self.packets_dropped += 1
            return
        self.simulator.schedule(self.forwarding_delay_s, self._route, packet)

    def _route(self, packet: Packet) -> None:
        assert packet.ip is not None
        destination = packet.ip.dst
        if destination in self.server_macs:
            if self.core_interface is None:
                self.packets_dropped += 1
                return
            if packet.eth is not None:
                packet.eth.src = self.core_interface.mac
                packet.eth.dst = self.server_macs[destination]
            self.packets_routed_upstream += 1
            self.core_interface.send(packet)
            return
        endpoint = self.migration_endpoints.get(destination)
        if endpoint is not None:
            station_name, endpoint_mac = endpoint
            out = self.station_interfaces[station_name]
            if packet.eth is not None:
                packet.eth.src = out.mac
                packet.eth.dst = endpoint_mac
            self.state_chunks_routed += 1
            out.send(packet)
            return
        station_name = self.client_locations.get(destination)
        if station_name is not None:
            out = self.station_interfaces[station_name]
            if packet.eth is not None:
                packet.eth.src = out.mac
                packet.eth.dst = self.client_macs.get(destination, packet.eth.dst)
            self.packets_routed_downstream += 1
            out.send(packet)
            return
        self.packets_dropped += 1


class EdgeTopology:
    """The full emulated deployment: gateway, core, servers and edge stations."""

    def __init__(
        self,
        simulator: Simulator,
        config: Optional[TopologyConfig] = None,
        address_plan: Optional[AddressPlan] = None,
    ) -> None:
        self.simulator = simulator
        self.config = config or TopologyConfig()
        self.addresses = address_plan or AddressPlan()
        self.gateway = Gateway(
            simulator, forwarding_delay_s=self.config.gateway_forwarding_delay_s
        )
        self.core_switch = SoftwareSwitch(simulator, name="core-switch", forwarding_delay_s=2e-6)
        self.stations: Dict[str, EdgeStation] = {}
        self.servers: Dict[str, Server] = {}
        self.links: List[Link] = []
        #: station name -> its uplink to the gateway (fault-injection handle).
        self.uplink_links: Dict[str, Link] = {}
        self._build_core()
        for index in range(self.config.station_count):
            self.add_station(f"station-{index + 1}")
        for index in range(self.config.server_count):
            self.add_server(f"server-{index + 1}")

    # --------------------------------------------------------------- build

    def _build_core(self) -> None:
        gw_core_iface = Interface(
            name="gw-core", mac=self.addresses.allocate_mac(),
            ip=self.addresses.allocate_ip("control", owner="gateway"),
        )
        self.gateway.add_interface(gw_core_iface)
        self.gateway.core_interface = gw_core_iface
        core_port_iface = Interface(name="core-to-gw", mac=self.addresses.allocate_mac())
        self.core_switch.add_port(core_port_iface)
        link = Link(
            self.simulator,
            bandwidth_bps=self.config.core_bandwidth_bps,
            delay_s=self.config.core_delay_s,
            name="gw-core-link",
        )
        link.attach(gw_core_iface, core_port_iface)
        self.links.append(link)

    def add_station(
        self,
        name: str,
        profile: Optional[StationProfile] = None,
        position: Optional[Tuple[float, float]] = None,
    ) -> EdgeStation:
        """Create an edge station and wire its uplink to the gateway."""
        if name in self.stations:
            raise ValueError(f"station {name!r} already exists")
        index = len(self.stations)
        station = EdgeStation(
            self.simulator,
            name=name,
            profile=profile or self.config.station_profile,
            position=position or (index * self.config.station_spacing_m, 0.0),
            fastpath_enabled=self.config.fastpath_enabled,
        )
        # Station-side uplink interface plugged into the station switch.
        station_uplink_iface = Interface(name=f"{name}-uplink", mac=self.addresses.allocate_mac())
        uplink_port = station.switch.add_port(station_uplink_iface)
        station.set_uplink_port(uplink_port.number)
        # Gateway-side interface.
        gw_iface = Interface(
            name=f"gw-to-{name}",
            mac=self.addresses.allocate_mac(),
            ip=self.addresses.allocate_ip("control", owner=f"gateway:{name}"),
        )
        self.gateway.add_interface(gw_iface)
        self.gateway.register_station(name, gw_iface)
        link = Link(
            self.simulator,
            bandwidth_bps=self.config.uplink_bandwidth_bps,
            delay_s=self.config.uplink_delay_s,
            name=f"{name}-uplink-link",
        )
        link.attach(station_uplink_iface, gw_iface)
        self.links.append(link)
        self.uplink_links[name] = link
        self.stations[name] = station
        return station

    def add_server(self, name: str, http_body_bytes: Optional[int] = None) -> Server:
        """Create an application server in the core and plug it into the core switch."""
        if name in self.servers:
            raise ValueError(f"server {name!r} already exists")
        server = Server(
            self.simulator,
            name=name,
            http_body_bytes=http_body_bytes or self.config.server_http_body_bytes,
            dns_zone=dict(self.config.dns_zone),
        )
        server_iface = Interface(
            name=f"{name}-eth0",
            mac=self.addresses.allocate_mac(),
            ip=self.addresses.allocate_ip("servers", owner=name),
        )
        server.add_interface(server_iface)
        core_iface = Interface(name=f"core-to-{name}", mac=self.addresses.allocate_mac())
        self.core_switch.add_port(core_iface)
        link = Link(
            self.simulator,
            bandwidth_bps=self.config.core_bandwidth_bps,
            delay_s=0.0005,
            name=f"{name}-core-link",
        )
        link.attach(server_iface, core_iface)
        self.links.append(link)
        assert server_iface.ip is not None
        self.gateway.register_server(server_iface.ip, server_iface.mac)
        self.servers[name] = server
        return server

    # ------------------------------------------------------- cells/clients

    def connect_cell(self, cell: Host, station_name: str, wired_interface: Interface) -> int:
        """Plug a wireless cell's wired interface into a station switch.

        Returns the switch port number the cell occupies.  The cell object is
        created by :mod:`repro.wireless`; the topology only handles wiring.
        """
        station = self.stations[station_name]
        switch_iface = Interface(name=f"{station_name}-to-{cell.name}", mac=self.addresses.allocate_mac())
        port = station.switch.add_port(switch_iface)
        link = Link(
            self.simulator,
            bandwidth_bps=1e9,
            delay_s=0.0001,
            name=f"{station_name}-{cell.name}-wire",
        )
        link.attach(wired_interface, switch_iface)
        self.links.append(link)
        station.register_cell_port(cell.name, port.number)
        return port.number

    def register_client(self, client_ip: str, client_mac: str, station_name: str) -> None:
        """Anchor a client at a station (called on first association and handover)."""
        self.gateway.register_client(client_ip, client_mac, station_name)

    # ------------------------------------------------------------- queries

    @property
    def gateway_mac_for(self) -> Dict[str, str]:
        """Map of station name -> MAC address the gateway uses on that link."""
        return {name: iface.mac for name, iface in self.gateway.station_interfaces.items()}

    def station(self, name: str) -> EdgeStation:
        return self.stations[name]

    def server(self, name: str) -> Server:
        return self.servers[name]

    def any_server_ip(self) -> str:
        server = next(iter(self.servers.values()))
        assert server.ip is not None
        return server.ip

    def graph(self) -> nx.Graph:
        """Delay-weighted topology graph used by routing, placement and benches."""
        graph = nx.Graph()
        graph.add_node("gateway")
        graph.add_node("core")
        graph.add_edge("gateway", "core", weight=self.config.core_delay_s)
        for name in self.stations:
            graph.add_edge(name, "gateway", weight=self.config.uplink_delay_s)
        for name in self.servers:
            graph.add_edge("core", name, weight=0.0005)
        return graph

    def control_latency(self, station_name: str) -> float:
        """One-way control-plane latency between the Manager (at the core) and a station."""
        if station_name not in self.stations:
            raise KeyError(f"unknown station {station_name!r}")
        return self.config.uplink_delay_s + self.config.core_delay_s

    def station_to_station_latency(self, a: str, b: str) -> float:
        """One-way latency between two stations (via the gateway)."""
        if a == b:
            return 0.0
        return 2 * self.config.uplink_delay_s

    def summary(self) -> Dict[str, int]:
        """Inventory counts (surfaced by the UI's network overview)."""
        return {
            "stations": len(self.stations),
            "servers": len(self.servers),
            "links": len(self.links),
            "anchored_clients": len(self.gateway.client_locations),
        }
