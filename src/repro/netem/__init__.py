"""Network emulation substrate for the GNF reproduction.

This package provides the emulated edge testbed that replaces the paper's
physical demo hardware (home routers, Wi-Fi cells, smartphones):

* :mod:`repro.netem.simulator` -- deterministic discrete-event simulation
  kernel every other subsystem is driven by.
* :mod:`repro.netem.packet` -- explicit packet model (Ethernet/IPv4/TCP/UDP/
  ICMP plus HTTP and DNS application payloads).
* :mod:`repro.netem.addressing` -- MAC and IPv4 address allocation.
* :mod:`repro.netem.link` / :mod:`repro.netem.host` -- links with bandwidth,
  propagation delay, loss and queueing; hosts and network interfaces.
* :mod:`repro.netem.flowtable` / :mod:`repro.netem.switch` -- the per-station
  software switch (learning switch + priority match/action flow table) used
  by GNF Agents to transparently steer a client's traffic through NF
  containers.
* :mod:`repro.netem.fastpath` -- the flow-cached, batch-aware fast path
  (microflow cache, compiled verdicts, packet batches) that lets switches
  and NFs process steady-state flows without per-packet table walks or
  per-packet simulator events.
* :mod:`repro.netem.topology` / :mod:`repro.netem.routing` -- edge topologies
  (core DC, gateway, edge stations, cells) and shortest-path routing.
* :mod:`repro.netem.flows` / :mod:`repro.netem.trafficgen` -- flow bookkeeping
  and workload generators (HTTP, DNS, CBR, video-like bursts).
"""

from repro.netem.simulator import Simulator, Event, Process
from repro.netem.packet import (
    Packet,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    ICMPHeader,
    HTTPRequest,
    HTTPResponse,
    DNSQuery,
    DNSResponse,
    FlowKey,
)
from repro.netem.addressing import MACAllocator, IPv4Allocator, Subnet
from repro.netem.link import Link, LinkStats
from repro.netem.host import Host, Interface
from repro.netem.flowtable import FlowTable, FlowRule, Match, Action, ActionType
from repro.netem.fastpath import CompiledVerdict, FlowCache, PacketBatch
from repro.netem.switch import SoftwareSwitch
from repro.netem.topology import EdgeTopology, TopologyConfig
from repro.netem.routing import RoutingTable, compute_routes
from repro.netem.flows import Flow, FlowTracker
from repro.netem.trafficgen import (
    CBRTrafficGenerator,
    HTTPWorkloadGenerator,
    DNSWorkloadGenerator,
    VideoWorkloadGenerator,
)

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Packet",
    "EthernetHeader",
    "IPv4Header",
    "TCPHeader",
    "UDPHeader",
    "ICMPHeader",
    "HTTPRequest",
    "HTTPResponse",
    "DNSQuery",
    "DNSResponse",
    "FlowKey",
    "MACAllocator",
    "IPv4Allocator",
    "Subnet",
    "Link",
    "LinkStats",
    "Host",
    "Interface",
    "FlowTable",
    "FlowRule",
    "Match",
    "Action",
    "ActionType",
    "CompiledVerdict",
    "FlowCache",
    "PacketBatch",
    "SoftwareSwitch",
    "EdgeTopology",
    "TopologyConfig",
    "RoutingTable",
    "compute_routes",
    "Flow",
    "FlowTracker",
    "CBRTrafficGenerator",
    "HTTPWorkloadGenerator",
    "DNSWorkloadGenerator",
    "VideoWorkloadGenerator",
]
