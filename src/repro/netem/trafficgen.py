"""Workload generators.

The demo attaches NFs to the traffic of smartphones browsing the web,
resolving names and streaming video.  These generators reproduce those
workloads on the emulated clients so every benchmark has deterministic,
repeatable traffic:

* :class:`CBRTrafficGenerator` -- constant-bit-rate UDP probes (echoed by the
  server) used for latency/throughput measurement.
* :class:`HTTPWorkloadGenerator` -- web sessions with think times; observes
  blocked pages so the HTTP-filter NF's effect is measurable end-to-end.
* :class:`DNSWorkloadGenerator` -- name lookups; records the answers so the
  DNS load balancer NF's rewrites are observable.
* :class:`VideoWorkloadGenerator` -- periodic segment bursts approximating
  adaptive streaming.
* :class:`BulkTransferGenerator` -- one-way bulk uploads with a fixed byte
  budget; the only workload the hybrid fluid core may lift out of the
  packet world (see :mod:`repro.netem.fluid`).

Generators talk to any object satisfying :class:`TrafficEndpoint` (the
wireless :class:`~repro.wireless.client.MobileClient` in practice).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from repro.netem import packet as pkt
from repro.netem.fluid import FluidFlow, HybridScheduler
from repro.netem.packet import Packet
from repro.netem.simulator import Simulator

_generator_ids = itertools.count(1)


class TrafficEndpoint(Protocol):
    """What a generator needs from the host it runs on."""

    ip: str
    mac: str

    def send_packet(self, packet: Packet) -> bool:
        """Transmit a packet towards the network."""

    def add_receive_listener(self, listener: Callable[[Packet], None]) -> None:
        """Register a callback invoked for every packet the endpoint receives."""


@dataclass
class LatencySample:
    """One request/response latency observation."""

    sent_at: float
    received_at: float

    @property
    def rtt(self) -> float:
        return self.received_at - self.sent_at


class _GeneratorBase:
    """Shared bookkeeping for all generators."""

    def __init__(self, simulator: Simulator, client: TrafficEndpoint, name: str = "") -> None:
        self.simulator = simulator
        self.client = client
        self.generator_id = next(_generator_ids)
        self.name = name or f"{type(self).__name__}-{self.generator_id}"
        self.running = False
        self.packets_sent = 0
        self.bytes_sent = 0
        self.responses_received = 0
        self.latency_samples: List[LatencySample] = []
        client.add_receive_listener(self._on_receive)

    # ------------------------------------------------------------ control

    def start(self) -> "_GeneratorBase":
        self.running = True
        self._schedule_next(initial=True)
        return self

    def stop(self) -> None:
        self.running = False

    # ------------------------------------------------------------- hooks

    def _schedule_next(self, initial: bool = False) -> None:
        raise NotImplementedError

    def _on_receive(self, packet: Packet) -> None:
        if packet.metadata.get("probe_gen") != self.generator_id:
            return
        self.responses_received += 1
        sent_at = packet.metadata.get("request_created_at")
        if isinstance(sent_at, (int, float)):
            self.latency_samples.append(
                LatencySample(sent_at=float(sent_at), received_at=self.simulator.now)
            )
        self._handle_response(packet)

    def _handle_response(self, packet: Packet) -> None:
        """Subclass hook for protocol-specific response handling."""

    def _stamp_and_send(self, packet: Packet) -> None:
        packet.metadata["probe_gen"] = self.generator_id
        packet.created_at = self.simulator.now
        packet.metadata["request_created_at"] = self.simulator.now
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self.client.send_packet(packet)

    # -------------------------------------------------------------- stats

    @property
    def rtts(self) -> List[float]:
        return [sample.rtt for sample in self.latency_samples]

    def mean_rtt(self) -> float:
        rtts = self.rtts
        return sum(rtts) / len(rtts) if rtts else 0.0

    def loss_rate(self) -> float:
        """Fraction of sent requests with no observed response."""
        if self.packets_sent == 0:
            return 0.0
        return max(0.0, 1.0 - self.responses_received / self.packets_sent)

    def stats(self) -> Dict[str, float]:
        return {
            "packets_sent": float(self.packets_sent),
            "bytes_sent": float(self.bytes_sent),
            "responses_received": float(self.responses_received),
            "mean_rtt_s": self.mean_rtt(),
            "loss_rate": self.loss_rate(),
        }


class CBRTrafficGenerator(_GeneratorBase):
    """Constant-bit-rate UDP generator; the server echoes every packet back."""

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        server_ip: str,
        rate_pps: float = 100.0,
        payload_bytes: int = 500,
        dst_port: int = 9000,
        src_port: Optional[int] = None,
        duration_s: Optional[float] = None,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        self.server_ip = server_ip
        self.rate_pps = rate_pps
        self.payload_bytes = payload_bytes
        self.dst_port = dst_port
        # An explicit source port makes the probe flow's 5-tuple independent
        # of the process-global generator counter (scenario replay needs it).
        self.src_port = src_port if src_port is not None else 40_000 + (self.generator_id % 1000)
        self.duration_s = duration_s
        self._started_at: Optional[float] = None
        self._sequence = 0

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running:
            return
        if initial:
            self._started_at = self.simulator.now
            self.simulator.schedule(0.0, self._tick)
        else:
            self.simulator.schedule(1.0 / self.rate_pps, self._tick)

    def _tick(self) -> None:
        if not self.running:
            return
        if (
            self.duration_s is not None
            and self._started_at is not None
            and self.simulator.now - self._started_at >= self.duration_s
        ):
            self.running = False
            return
        packet = pkt.make_udp_packet(
            src_ip=self.client.ip,
            dst_ip=self.server_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            payload_bytes=self.payload_bytes,
            src_mac=self.client.mac,
        )
        packet.metadata["probe_seq"] = self._sequence
        self._sequence += 1
        self._stamp_and_send(packet)
        self._schedule_next()


class HTTPWorkloadGenerator(_GeneratorBase):
    """Web browsing workload with exponential think times."""

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        server_ip: str,
        sites: Sequence[str] = ("example.com", "news.example.org", "video.example.net"),
        mean_think_time_s: float = 2.0,
        paths: Sequence[str] = ("/", "/index.html", "/article", "/media/clip"),
        seed: Optional[int] = None,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        self.server_ip = server_ip
        self.sites = list(sites)
        self.paths = list(paths)
        self.mean_think_time_s = mean_think_time_s
        # ``None`` keeps the historical fixed seed; scenario runs thread a
        # per-workload seed derived from the master seed instead.
        self._rng = random.Random(7 if seed is None else seed)
        self.pages_fetched = 0
        self.pages_blocked = 0
        self.bytes_downloaded = 0

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running:
            return
        delay = 0.0 if initial else self._rng.expovariate(1.0 / self.mean_think_time_s)
        self.simulator.schedule(delay, self._fetch_page)

    def _fetch_page(self) -> None:
        if not self.running:
            return
        host = self._rng.choice(self.sites)
        path = self._rng.choice(self.paths)
        request = pkt.make_http_request(
            src_ip=self.client.ip,
            dst_ip=self.server_ip,
            host=host,
            path=path,
            src_port=49152 + (self.packets_sent % 1000),
        )
        if request.eth is not None:
            request.eth.src = self.client.mac
        self._stamp_and_send(request)
        self._schedule_next()

    def _handle_response(self, packet: Packet) -> None:
        if isinstance(packet.app, pkt.HTTPResponse):
            if packet.app.status in (403, 451):
                self.pages_blocked += 1
            else:
                self.pages_fetched += 1
                self.bytes_downloaded += packet.app.body_bytes

    def stats(self) -> Dict[str, float]:
        combined = super().stats()
        combined.update(
            {
                "pages_fetched": float(self.pages_fetched),
                "pages_blocked": float(self.pages_blocked),
                "bytes_downloaded": float(self.bytes_downloaded),
            }
        )
        return combined


class DNSWorkloadGenerator(_GeneratorBase):
    """Periodic DNS lookups; remembers which addresses each name resolved to."""

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        resolver_ip: str,
        names: Sequence[str] = ("cdn.example.com", "api.example.com"),
        query_interval_s: float = 1.0,
        seed: Optional[int] = None,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        self.resolver_ip = resolver_ip
        self.names = list(names)
        self.query_interval_s = query_interval_s
        self._rng = random.Random(11 if seed is None else seed)
        self._query_id = 0
        self.answers: Dict[str, List[str]] = {}

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running:
            return
        delay = 0.0 if initial else self.query_interval_s
        self.simulator.schedule(delay, self._query)

    def _query(self) -> None:
        if not self.running:
            return
        lookup_name = self._rng.choice(self.names)
        self._query_id += 1
        query = pkt.make_dns_query(
            src_ip=self.client.ip,
            dst_ip=self.resolver_ip,
            name=lookup_name,
            query_id=self._query_id,
            src_port=53000 + (self._query_id % 1000),
            created_at=self.simulator.now,
        )
        query.eth.src = self.client.mac  # type: ignore[union-attr]
        self._stamp_and_send(query)
        self._schedule_next()

    def _handle_response(self, packet: Packet) -> None:
        if isinstance(packet.app, pkt.DNSResponse):
            self.answers.setdefault(packet.app.name, []).extend(packet.app.addresses)

    def resolution_counts(self) -> Dict[str, Dict[str, int]]:
        """Per name, how many times each address was returned (DNS-LB evidence)."""
        counts: Dict[str, Dict[str, int]] = {}
        for lookup_name, addresses in self.answers.items():
            per_name = counts.setdefault(lookup_name, {})
            for address in addresses:
                per_name[address] = per_name.get(address, 0) + 1
        return counts


class VideoWorkloadGenerator(_GeneratorBase):
    """Segment-based video streaming approximation.

    Every ``segment_interval_s`` the client requests a segment; the segment
    arrives as a burst of UDP-echoed packets, which is enough to exercise the
    rate limiter and cache NFs and to produce the sustained traffic curves
    the demo UI displays.
    """

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        server_ip: str,
        segment_interval_s: float = 2.0,
        packets_per_segment: int = 20,
        payload_bytes: int = 1200,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        self.server_ip = server_ip
        self.segment_interval_s = segment_interval_s
        self.packets_per_segment = packets_per_segment
        self.payload_bytes = payload_bytes
        self.segments_requested = 0

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running:
            return
        delay = 0.0 if initial else self.segment_interval_s
        self.simulator.schedule(delay, self._request_segment)

    def _request_segment(self) -> None:
        if not self.running:
            return
        self.segments_requested += 1
        for index in range(self.packets_per_segment):
            packet = pkt.make_udp_packet(
                src_ip=self.client.ip,
                dst_ip=self.server_ip,
                src_port=45_000,
                dst_port=8433,
                payload_bytes=self.payload_bytes,
                src_mac=self.client.mac,
            )
            packet.metadata["probe_seq"] = (self.segments_requested, index)
            # Spread the burst over a millisecond so queues see back-to-back packets.
            self.simulator.schedule(index * 0.00005, self._stamp_and_send, packet)
        self._schedule_next()

    def stats(self) -> Dict[str, float]:
        combined = super().stats()
        combined["segments_requested"] = float(self.segments_requested)
        return combined


class BulkTransferGenerator(_GeneratorBase):
    """One-way bulk upload with a fixed byte budget (file sync, backup, CDN fill).

    The generator registers a :class:`~repro.netem.fluid.FluidFlow` with the
    testbed's :class:`~repro.netem.fluid.HybridScheduler`.  While the flow is
    in **packet** mode the generator paces UDP chunks onto the wire itself;
    when the scheduler **promotes** the flow to fluid the ticking stops and
    the solver moves the remaining bytes analytically, and a later demotion
    resumes chunking exactly where the fluid accounting left off
    (``bytes_fluid + bytes_packet`` is continuous across any number of
    conversions).  Under ``simulation_mode=packet`` the scheduler pins the
    flow to packet mode forever and this generator behaves like a plain
    paced sender.

    Uploads are one-way by contract (``bulk_oneway`` metadata): the server
    counts the bytes but never echoes, so there are no RTT samples.
    """

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        server_ip: str,
        scheduler: HybridScheduler,
        total_bytes: float,
        rate_bps: float = 20e6,
        chunk_bytes: int = 16_000,
        dst_port: int = 7001,
        src_port: Optional[int] = None,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.server_ip = server_ip
        self.scheduler = scheduler
        self.rate_bps = float(rate_bps)
        self.chunk_bytes = int(chunk_bytes)
        self.dst_port = dst_port
        self.src_port = src_port if src_port is not None else 47_000 + (self.generator_id % 1000)
        self.transfer_complete = False
        self._sequence = 0
        self._tick_scheduled = False
        self.flow = FluidFlow(
            name=self.name,
            demand_bps=rate_bps,
            total_bytes=total_bytes,
            client=client,
            dst_ip=server_ip,
        )
        self.flow.on_mode_change = self._on_mode_change
        self.flow.on_complete = self._on_flow_complete

    @property
    def _chunk_interval_s(self) -> float:
        return (self.chunk_bytes * 8) / self.rate_bps

    # ------------------------------------------------------------ control

    def start(self) -> "BulkTransferGenerator":
        self.running = True
        self.scheduler.register(self.flow)
        self._schedule_next(initial=True)
        return self

    def stop(self) -> None:
        self.running = False
        if not self.transfer_complete:
            self.scheduler.deregister(self.flow)

    # ------------------------------------------------------------- ticking

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running or self.transfer_complete:
            return
        if self.flow.mode != "packet" or self._tick_scheduled:
            return
        self._tick_scheduled = True
        delay = 0.0 if initial else self._chunk_interval_s
        self.simulator.schedule(delay, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        if not self.running or self.transfer_complete:
            return
        if self.flow.mode != "packet":
            # Promoted mid-flight: the fluid solver owns the bytes now; a
            # demotion restarts the chain via ``_on_mode_change``.
            return
        payload = int(min(self.chunk_bytes, self.flow.remaining_bytes))
        if payload <= 0:
            self._finish()
            return
        packet = pkt.make_udp_packet(
            src_ip=self.client.ip,
            dst_ip=self.server_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            payload_bytes=payload,
            src_mac=self.client.mac,
        )
        packet.metadata["bulk_oneway"] = True
        packet.metadata["probe_seq"] = self._sequence
        self._sequence += 1
        self._stamp_and_send(packet)
        self.scheduler.record_packet_bytes(self.flow, float(payload))
        if self.flow.remaining_bytes <= 0:
            self._finish()
            return
        self._schedule_next()

    # ---------------------------------------------------------- completion

    def _finish(self) -> None:
        if self.transfer_complete:
            return
        self.transfer_complete = True
        self.running = False
        self.scheduler.flow_finished(self.flow)

    def _on_flow_complete(self) -> None:
        self.transfer_complete = True
        self.running = False

    def _on_mode_change(self, mode: str) -> None:
        if mode == "packet":
            self._schedule_next()

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, float]:
        combined = super().stats()
        combined.update(
            {
                "total_bytes": float(self.flow.total_bytes),
                "bytes_moved": float(self.flow.bytes_moved),
                "bytes_fluid": float(self.flow.bytes_fluid),
                "bytes_packet": float(self.flow.bytes_packet),
                "completed": 1.0 if self.transfer_complete else 0.0,
                "promotions": float(self.flow.promotions),
                "demotions": float(self.flow.demotions),
            }
        )
        # One-way traffic: no responses exist, so the request/response loss
        # metric is meaningless here.
        combined["loss_rate"] = 0.0
        return combined
