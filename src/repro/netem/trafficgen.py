"""Workload generators.

The demo attaches NFs to the traffic of smartphones browsing the web,
resolving names and streaming video.  These generators reproduce those
workloads on the emulated clients so every benchmark has deterministic,
repeatable traffic:

* :class:`CBRTrafficGenerator` -- constant-bit-rate UDP probes (echoed by the
  server) used for latency/throughput measurement.
* :class:`HTTPWorkloadGenerator` -- web sessions with think times; observes
  blocked pages so the HTTP-filter NF's effect is measurable end-to-end.
* :class:`DNSWorkloadGenerator` -- name lookups; records the answers so the
  DNS load balancer NF's rewrites are observable.
* :class:`VideoWorkloadGenerator` -- periodic segment bursts approximating
  adaptive streaming.
* :class:`QUICWorkloadGenerator` -- 0-RTT-style request bursts on
  connection-ID-keyed UDP flows with mid-life port migrations (what NAT and
  firewall NFs see of the QUIC era).
* :class:`ABRVideoGenerator` -- bitrate-ladder segment fetches that adapt to
  measured throughput; viewers of the same content share cache keys.
* :class:`BulkTransferGenerator` -- one-way bulk uploads with a fixed byte
  budget; the only workload the hybrid fluid core may lift out of the
  packet world (see :mod:`repro.netem.fluid`).

Every generator carries an **intensity** knob (:meth:`_GeneratorBase.set_intensity`):
inter-event delays are divided by it, 0 pauses the generator and a later
non-zero value resumes it.  The scenario layer's traffic *eras*
(:class:`~repro.scenarios.spec.TrafficEraSpec`) drive this knob to shift the
per-protocol mix over scenario time.  ``stop()`` cancels every event the
generator still has in flight, so a stopped generator leaves nothing on the
simulator queue.

Generators talk to any object satisfying :class:`TrafficEndpoint` (the
wireless :class:`~repro.wireless.client.MobileClient` in practice).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.netem import packet as pkt
from repro.netem.fluid import FluidFlow, HybridScheduler
from repro.netem.packet import Packet
from repro.netem.simulator import Event, Simulator

_generator_ids = itertools.count(1)


class TrafficEndpoint(Protocol):
    """What a generator needs from the host it runs on."""

    ip: str
    mac: str

    def send_packet(self, packet: Packet) -> bool:
        """Transmit a packet towards the network."""

    def add_receive_listener(self, listener: Callable[[Packet], None]) -> None:
        """Register a callback invoked for every packet the endpoint receives."""


@dataclass
class LatencySample:
    """One request/response latency observation."""

    sent_at: float
    received_at: float

    @property
    def rtt(self) -> float:
        return self.received_at - self.sent_at


class _GeneratorBase:
    """Shared bookkeeping for all generators."""

    def __init__(self, simulator: Simulator, client: TrafficEndpoint, name: str = "") -> None:
        self.simulator = simulator
        self.client = client
        self.generator_id = next(_generator_ids)
        self.name = name or f"{type(self).__name__}-{self.generator_id}"
        self.running = False
        #: Offered-load multiplier: inter-event delays are divided by it.
        #: 1.0 is the generator's native pace, 0.0 pauses it (the traffic-era
        #: machinery resumes it with a later ``set_intensity``).
        self.intensity = 1.0
        self.packets_sent = 0
        self.bytes_sent = 0
        self.responses_received = 0
        self.latency_samples: List[LatencySample] = []
        self._pending_events: List[Event] = []
        client.add_receive_listener(self._on_receive)

    # ------------------------------------------------------------ control

    def start(self) -> "_GeneratorBase":
        self.running = True
        self._schedule_next(initial=True)
        return self

    def stop(self) -> None:
        """Stop the generator and cancel every event it still has in flight."""
        self.running = False
        for event in self._pending_events:
            if event.pending:
                event.cancel()
        self._pending_events.clear()

    def set_intensity(self, intensity: float) -> None:
        """Rescale the offered load; 0 pauses, a later non-zero value resumes."""
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        self.intensity = float(intensity)
        # A paused generator has no pending self-chain: kick a fresh one.
        # (With a chain still pending the new pace applies from its next hop.)
        if self.running and self.intensity > 0.0 and not self._has_pending():
            self._schedule_next()

    # ------------------------------------------------------------- hooks

    def _schedule_next(self, initial: bool = False) -> None:
        raise NotImplementedError

    def _schedule(self, delay: float, callback: Callable[..., None], *args) -> Event:
        """Schedule a tracked event (``stop()`` cancels whatever is pending)."""
        event = self.simulator.schedule(delay, callback, *args)
        self._pending_events.append(event)
        if len(self._pending_events) > 32:
            self._pending_events = [e for e in self._pending_events if e.pending]
        return event

    def _has_pending(self) -> bool:
        self._pending_events = [e for e in self._pending_events if e.pending]
        return bool(self._pending_events)

    def _scaled_delay(self, base_delay: float) -> Optional[float]:
        """Intensity-scaled inter-event delay; ``None`` while paused."""
        if self.intensity <= 0.0:
            return None
        return base_delay / self.intensity

    def _on_receive(self, packet: Packet) -> None:
        if packet.metadata.get("probe_gen") != self.generator_id:
            return
        self.responses_received += 1
        sent_at = packet.metadata.get("request_created_at")
        if isinstance(sent_at, (int, float)):
            self.latency_samples.append(
                LatencySample(sent_at=float(sent_at), received_at=self.simulator.now)
            )
        self._handle_response(packet)

    def _handle_response(self, packet: Packet) -> None:
        """Subclass hook for protocol-specific response handling."""

    def _stamp_and_send(self, packet: Packet) -> None:
        packet.metadata["probe_gen"] = self.generator_id
        packet.created_at = self.simulator.now
        packet.metadata["request_created_at"] = self.simulator.now
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self.client.send_packet(packet)

    # -------------------------------------------------------------- stats

    @property
    def rtts(self) -> List[float]:
        return [sample.rtt for sample in self.latency_samples]

    def mean_rtt(self) -> float:
        rtts = self.rtts
        return sum(rtts) / len(rtts) if rtts else 0.0

    def loss_rate(self) -> float:
        """Fraction of sent requests with no observed response."""
        if self.packets_sent == 0:
            return 0.0
        return max(0.0, 1.0 - self.responses_received / self.packets_sent)

    def stats(self) -> Dict[str, float]:
        return {
            "packets_sent": float(self.packets_sent),
            "bytes_sent": float(self.bytes_sent),
            "responses_received": float(self.responses_received),
            "mean_rtt_s": self.mean_rtt(),
            "loss_rate": self.loss_rate(),
        }


class CBRTrafficGenerator(_GeneratorBase):
    """Constant-bit-rate UDP generator; the server echoes every packet back."""

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        server_ip: str,
        rate_pps: float = 100.0,
        payload_bytes: int = 500,
        dst_port: int = 9000,
        src_port: Optional[int] = None,
        duration_s: Optional[float] = None,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        self.server_ip = server_ip
        self.rate_pps = rate_pps
        self.payload_bytes = payload_bytes
        self.dst_port = dst_port
        # An explicit source port makes the probe flow's 5-tuple independent
        # of the process-global generator counter (scenario replay needs it).
        self.src_port = src_port if src_port is not None else 40_000 + (self.generator_id % 1000)
        self.duration_s = duration_s
        self._started_at: Optional[float] = None
        self._sequence = 0

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running:
            return
        if initial:
            self._started_at = self.simulator.now
        delay = self._scaled_delay(0.0 if initial else 1.0 / self.rate_pps)
        if delay is None:
            return
        self._schedule(delay, self._tick)

    def _tick(self) -> None:
        if not self.running:
            return
        if (
            self.duration_s is not None
            and self._started_at is not None
            and self.simulator.now - self._started_at >= self.duration_s
        ):
            self.running = False
            return
        packet = pkt.make_udp_packet(
            src_ip=self.client.ip,
            dst_ip=self.server_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            payload_bytes=self.payload_bytes,
            src_mac=self.client.mac,
        )
        packet.metadata["probe_seq"] = self._sequence
        self._sequence += 1
        self._stamp_and_send(packet)
        self._schedule_next()


class HTTPWorkloadGenerator(_GeneratorBase):
    """Web browsing workload with exponential think times."""

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        server_ip: str,
        sites: Sequence[str] = ("example.com", "news.example.org", "video.example.net"),
        mean_think_time_s: float = 2.0,
        paths: Sequence[str] = ("/", "/index.html", "/article", "/media/clip"),
        seed: Optional[int] = None,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        self.server_ip = server_ip
        self.sites = list(sites)
        self.paths = list(paths)
        self.mean_think_time_s = mean_think_time_s
        # ``None`` keeps the historical fixed seed; scenario runs thread a
        # per-workload seed derived from the master seed instead.
        self._rng = random.Random(7 if seed is None else seed)
        self.pages_fetched = 0
        self.pages_blocked = 0
        self.bytes_downloaded = 0

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running:
            return
        delay = self._scaled_delay(
            0.0 if initial else self._rng.expovariate(1.0 / self.mean_think_time_s)
        )
        if delay is None:
            return
        self._schedule(delay, self._fetch_page)

    def _fetch_page(self) -> None:
        if not self.running:
            return
        host = self._rng.choice(self.sites)
        path = self._rng.choice(self.paths)
        request = pkt.make_http_request(
            src_ip=self.client.ip,
            dst_ip=self.server_ip,
            host=host,
            path=path,
            src_port=49152 + (self.packets_sent % 1000),
        )
        if request.eth is not None:
            request.eth.src = self.client.mac
        self._stamp_and_send(request)
        self._schedule_next()

    def _handle_response(self, packet: Packet) -> None:
        if isinstance(packet.app, pkt.HTTPResponse):
            if packet.app.status in (403, 451):
                self.pages_blocked += 1
            else:
                self.pages_fetched += 1
                self.bytes_downloaded += packet.app.body_bytes

    def stats(self) -> Dict[str, float]:
        combined = super().stats()
        combined.update(
            {
                "pages_fetched": float(self.pages_fetched),
                "pages_blocked": float(self.pages_blocked),
                "bytes_downloaded": float(self.bytes_downloaded),
            }
        )
        return combined


class DNSWorkloadGenerator(_GeneratorBase):
    """Periodic DNS lookups; remembers which addresses each name resolved to."""

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        resolver_ip: str,
        names: Sequence[str] = ("cdn.example.com", "api.example.com"),
        query_interval_s: float = 1.0,
        seed: Optional[int] = None,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        self.resolver_ip = resolver_ip
        self.names = list(names)
        self.query_interval_s = query_interval_s
        self._rng = random.Random(11 if seed is None else seed)
        self._query_id = 0
        self.answers: Dict[str, List[str]] = {}

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running:
            return
        delay = self._scaled_delay(0.0 if initial else self.query_interval_s)
        if delay is None:
            return
        self._schedule(delay, self._query)

    def _query(self) -> None:
        if not self.running:
            return
        lookup_name = self._rng.choice(self.names)
        self._query_id += 1
        query = pkt.make_dns_query(
            src_ip=self.client.ip,
            dst_ip=self.resolver_ip,
            name=lookup_name,
            query_id=self._query_id,
            src_port=53000 + (self._query_id % 1000),
            created_at=self.simulator.now,
        )
        query.eth.src = self.client.mac  # type: ignore[union-attr]
        self._stamp_and_send(query)
        self._schedule_next()

    def _handle_response(self, packet: Packet) -> None:
        if isinstance(packet.app, pkt.DNSResponse):
            self.answers.setdefault(packet.app.name, []).extend(packet.app.addresses)

    def resolution_counts(self) -> Dict[str, Dict[str, int]]:
        """Per name, how many times each address was returned (DNS-LB evidence)."""
        counts: Dict[str, Dict[str, int]] = {}
        for lookup_name, addresses in self.answers.items():
            per_name = counts.setdefault(lookup_name, {})
            for address in addresses:
                per_name[address] = per_name.get(address, 0) + 1
        return counts


class VideoWorkloadGenerator(_GeneratorBase):
    """Segment-based video streaming approximation.

    Every ``segment_interval_s`` the client requests a segment; the segment
    arrives as a burst of UDP-echoed packets, which is enough to exercise the
    rate limiter and cache NFs and to produce the sustained traffic curves
    the demo UI displays.
    """

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        server_ip: str,
        segment_interval_s: float = 2.0,
        packets_per_segment: int = 20,
        payload_bytes: int = 1200,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        self.server_ip = server_ip
        self.segment_interval_s = segment_interval_s
        self.packets_per_segment = packets_per_segment
        self.payload_bytes = payload_bytes
        self.segments_requested = 0

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running:
            return
        delay = self._scaled_delay(0.0 if initial else self.segment_interval_s)
        if delay is None:
            return
        self._schedule(delay, self._request_segment)

    def _request_segment(self) -> None:
        if not self.running:
            return
        self.segments_requested += 1
        for index in range(self.packets_per_segment):
            packet = pkt.make_udp_packet(
                src_ip=self.client.ip,
                dst_ip=self.server_ip,
                src_port=45_000,
                dst_port=8433,
                payload_bytes=self.payload_bytes,
                src_mac=self.client.mac,
            )
            packet.metadata["probe_seq"] = (self.segments_requested, index)
            # Spread the burst over a millisecond so queues see back-to-back
            # packets; tracked so stop() cancels an in-flight burst tail.
            self._schedule(index * 0.00005, self._stamp_and_send, packet)
        self._schedule_next()

    def stats(self) -> Dict[str, float]:
        combined = super().stats()
        combined["segments_requested"] = float(self.segments_requested)
        return combined


class BulkTransferGenerator(_GeneratorBase):
    """One-way bulk upload with a fixed byte budget (file sync, backup, CDN fill).

    The generator registers a :class:`~repro.netem.fluid.FluidFlow` with the
    testbed's :class:`~repro.netem.fluid.HybridScheduler`.  While the flow is
    in **packet** mode the generator paces UDP chunks onto the wire itself;
    when the scheduler **promotes** the flow to fluid the ticking stops and
    the solver moves the remaining bytes analytically, and a later demotion
    resumes chunking exactly where the fluid accounting left off
    (``bytes_fluid + bytes_packet`` is continuous across any number of
    conversions).  Under ``simulation_mode=packet`` the scheduler pins the
    flow to packet mode forever and this generator behaves like a plain
    paced sender.

    Uploads are one-way by contract (``bulk_oneway`` metadata): the server
    counts the bytes but never echoes, so there are no RTT samples.
    """

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        server_ip: str,
        scheduler: HybridScheduler,
        total_bytes: float,
        rate_bps: float = 20e6,
        chunk_bytes: int = 16_000,
        dst_port: int = 7001,
        src_port: Optional[int] = None,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.server_ip = server_ip
        self.scheduler = scheduler
        self.rate_bps = float(rate_bps)
        self.chunk_bytes = int(chunk_bytes)
        self.dst_port = dst_port
        self.src_port = src_port if src_port is not None else 47_000 + (self.generator_id % 1000)
        self.transfer_complete = False
        self._sequence = 0
        self._tick_scheduled = False
        self.flow = FluidFlow(
            name=self.name,
            demand_bps=rate_bps,
            total_bytes=total_bytes,
            client=client,
            dst_ip=server_ip,
        )
        self.flow.on_mode_change = self._on_mode_change
        self.flow.on_complete = self._on_flow_complete

    @property
    def _chunk_interval_s(self) -> float:
        return (self.chunk_bytes * 8) / self.rate_bps

    # ------------------------------------------------------------ control

    def start(self) -> "BulkTransferGenerator":
        self.running = True
        self.scheduler.register(self.flow)
        self._schedule_next(initial=True)
        return self

    def stop(self) -> None:
        super().stop()
        self._tick_scheduled = False
        if not self.transfer_complete:
            self.scheduler.deregister(self.flow)

    # ------------------------------------------------------------- ticking

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running or self.transfer_complete:
            return
        if self.flow.mode != "packet" or self._tick_scheduled:
            return
        self._tick_scheduled = True
        # Bulk pacing is a byte-budget contract, not an era share: the chunk
        # interval is never intensity-scaled (bulk is not era-scalable).
        delay = 0.0 if initial else self._chunk_interval_s
        self._schedule(delay, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        if not self.running or self.transfer_complete:
            return
        if self.flow.mode != "packet":
            # Promoted mid-flight: the fluid solver owns the bytes now; a
            # demotion restarts the chain via ``_on_mode_change``.
            return
        payload = int(min(self.chunk_bytes, self.flow.remaining_bytes))
        if payload <= 0:
            self._finish()
            return
        packet = pkt.make_udp_packet(
            src_ip=self.client.ip,
            dst_ip=self.server_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            payload_bytes=payload,
            src_mac=self.client.mac,
        )
        packet.metadata["bulk_oneway"] = True
        packet.metadata["probe_seq"] = self._sequence
        self._sequence += 1
        self._stamp_and_send(packet)
        self.scheduler.record_packet_bytes(self.flow, float(payload))
        if self.flow.remaining_bytes <= 0:
            self._finish()
            return
        self._schedule_next()

    # ---------------------------------------------------------- completion

    def _finish(self) -> None:
        if self.transfer_complete:
            return
        self.transfer_complete = True
        self.running = False
        self.scheduler.flow_finished(self.flow)

    def _on_flow_complete(self) -> None:
        self.transfer_complete = True
        self.running = False

    def _on_mode_change(self, mode: str) -> None:
        if mode == "packet":
            self._schedule_next()

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, float]:
        combined = super().stats()
        combined.update(
            {
                "total_bytes": float(self.flow.total_bytes),
                "bytes_moved": float(self.flow.bytes_moved),
                "bytes_fluid": float(self.flow.bytes_fluid),
                "bytes_packet": float(self.flow.bytes_packet),
                "completed": 1.0 if self.transfer_complete else 0.0,
                "promotions": float(self.flow.promotions),
                "demotions": float(self.flow.demotions),
            }
        )
        # One-way traffic: no responses exist, so the request/response loss
        # metric is meaningless here.
        combined["loss_rate"] = 0.0
        return combined


class QUICWorkloadGenerator(_GeneratorBase):
    """QUIC-style web workload: 0-RTT request bursts on connection-ID flows.

    QUIC resumes sessions with 0-RTT flights, so requests leave in bursts
    with no handshake pacing.  Flows are identified by connection ID rather
    than 5-tuple; a connection occasionally migrates to a fresh source port
    mid-life (NAT rebinding) while keeping its ID, so NAT/firewall NFs keyed
    on the 5-tuple see a brand-new flow while the application session -- and
    any cache key -- is unchanged.  The generator is vectorized: the
    per-burst gap/size/migration decisions are pre-drawn as numpy blocks and
    each burst is emitted back-to-back inside a single simulator event.
    """

    _BLOCK = 64

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        server_ip: str,
        sites: Sequence[str] = ("example.com", "app.example.org", "cdn.example.com"),
        paths: Sequence[str] = ("/", "/api/feed", "/assets/bundle.js"),
        mean_gap_s: float = 0.8,
        max_burst: int = 4,
        requests_per_connection: int = 8,
        migrate_probability: float = 0.15,
        seed: Optional[int] = None,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        if mean_gap_s <= 0:
            raise ValueError(f"mean_gap_s must be positive, got {mean_gap_s}")
        if max_burst < 1:
            raise ValueError(f"max_burst must be >= 1, got {max_burst}")
        if requests_per_connection < 1:
            raise ValueError(
                f"requests_per_connection must be >= 1, got {requests_per_connection}"
            )
        if not 0.0 <= migrate_probability <= 1.0:
            raise ValueError(
                f"migrate_probability must be in [0, 1], got {migrate_probability}"
            )
        self.server_ip = server_ip
        self.sites = list(sites)
        self.paths = list(paths)
        self.mean_gap_s = float(mean_gap_s)
        self.max_burst = int(max_burst)
        self.requests_per_connection = int(requests_per_connection)
        self.migrate_probability = float(migrate_probability)
        # ``None`` keeps a historical fixed seed (mirrors HTTP/DNS); scenario
        # runs thread a per-workload seed derived from the master seed.
        self._rng = random.Random(13 if seed is None else seed)
        self.connections_opened = 0
        self.zero_rtt_requests = 0
        self.migrations = 0
        self.bytes_downloaded = 0
        self._cid: Optional[int] = None
        self._src_port = 0
        self._requests_on_connection = 0
        self._next_gap_s = 0.0
        self._gaps: Optional[np.ndarray] = None
        self._bursts: Optional[np.ndarray] = None
        self._migrate_draws: Optional[np.ndarray] = None
        self._block_index = self._BLOCK

    # ----------------------------------------------------------- vectorized

    def _draw(self) -> Tuple[float, int, float]:
        """Next (gap, burst size, migration draw), refilling the numpy block."""
        if self._block_index >= self._BLOCK:
            block_rng = np.random.RandomState(self._rng.randrange(2**32))
            self._gaps = block_rng.exponential(self.mean_gap_s, self._BLOCK)
            self._bursts = block_rng.randint(1, self.max_burst + 1, self._BLOCK)
            self._migrate_draws = block_rng.random_sample(self._BLOCK)
            self._block_index = 0
        index = self._block_index
        self._block_index += 1
        assert self._gaps is not None and self._bursts is not None
        assert self._migrate_draws is not None
        return (
            float(self._gaps[index]),
            int(self._bursts[index]),
            float(self._migrate_draws[index]),
        )

    # -------------------------------------------------------------- ticking

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running:
            return
        delay = self._scaled_delay(0.0 if initial else self._next_gap_s)
        if delay is None:
            return
        self._schedule(delay, self._send_burst)

    def _open_connection(self) -> None:
        self.connections_opened += 1
        self._cid = self._rng.getrandbits(62)
        self._src_port = 51_000 + self._rng.randrange(1000)
        self._requests_on_connection = 0

    def _migrate(self) -> None:
        self.migrations += 1
        self._src_port = 51_000 + self._rng.randrange(1000)

    def _send_burst(self) -> None:
        if not self.running:
            return
        gap, burst, migrate_draw = self._draw()
        self._next_gap_s = gap
        fresh = self._cid is None or (
            self._requests_on_connection >= self.requests_per_connection
        )
        if fresh:
            self._open_connection()
        elif migrate_draw < self.migrate_probability:
            self._migrate()
        host = self._rng.choice(self.sites)
        for _ in range(burst):
            request = pkt.make_quic_request(
                src_ip=self.client.ip,
                dst_ip=self.server_ip,
                host=host,
                path=self._rng.choice(self.paths),
                connection_id=self._cid or 0,
                src_port=self._src_port,
                zero_rtt=fresh,
            )
            if request.eth is not None:
                request.eth.src = self.client.mac
            if fresh:
                self.zero_rtt_requests += 1
            self._requests_on_connection += 1
            self._stamp_and_send(request)
        self._schedule_next()

    def _handle_response(self, packet: Packet) -> None:
        if isinstance(packet.app, pkt.HTTPResponse):
            self.bytes_downloaded += packet.app.body_bytes

    def stats(self) -> Dict[str, float]:
        combined = super().stats()
        combined.update(
            {
                "connections_opened": float(self.connections_opened),
                "zero_rtt_requests": float(self.zero_rtt_requests),
                "migrations": float(self.migrations),
                "bytes_downloaded": float(self.bytes_downloaded),
            }
        )
        return combined


class ABRVideoGenerator(_GeneratorBase):
    """Adaptive-bitrate streaming: ladder-priced segment fetches over HTTP.

    Every ``segment_duration_s`` the player fetches its content's next
    segment at the current ladder rung; the object size is the rung's bitrate
    times the segment duration, and the URL names content, segment number and
    rung -- viewers of the same content request the *same* objects, so a warm
    edge cache serves whole segments locally.  Measured segment throughput
    (EWMA of body bits over fetch RTT) shifts the rung up when it comfortably
    exceeds the next rung's bitrate and down when it drops below the current
    one, with two-in-a-row hysteresis so a single outlier fetch cannot flap
    the ladder.
    """

    def __init__(
        self,
        simulator: Simulator,
        client: TrafficEndpoint,
        server_ip: str,
        content: Optional[str] = None,
        catalog: Sequence[str] = ("movie-a", "movie-b"),
        host: str = "video.example.net",
        ladder_bps: Sequence[float] = (250_000.0, 500_000.0, 1_000_000.0, 2_500_000.0),
        segment_duration_s: float = 2.0,
        initial_rung: int = 1,
        upshift_headroom: float = 1.25,
        ewma_alpha: float = 0.3,
        loop_segments: Optional[int] = None,
        src_port: Optional[int] = None,
        seed: Optional[int] = None,
        name: str = "",
    ) -> None:
        super().__init__(simulator, client, name=name)
        ladder = [float(rate) for rate in ladder_bps]
        if not ladder or any(b <= a for a, b in zip(ladder, ladder[1:])):
            raise ValueError(f"ladder_bps must be non-empty and ascending, got {ladder_bps}")
        if segment_duration_s <= 0:
            raise ValueError(f"segment_duration_s must be positive, got {segment_duration_s}")
        if not 0 <= initial_rung < len(ladder):
            raise ValueError(f"initial_rung {initial_rung} outside ladder of {len(ladder)}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if loop_segments is not None and loop_segments < 1:
            raise ValueError(f"loop_segments must be >= 1, got {loop_segments}")
        #: A looping playlist (trailer/short clip): segment numbers wrap
        #: modulo this, so the same URLs recur and an edge cache can serve
        #: them.  None streams linearly forward (every URL unique).
        self.loop_segments = loop_segments
        self.server_ip = server_ip
        self.host = host
        self.ladder_bps = ladder
        self.segment_duration_s = float(segment_duration_s)
        self.rung = int(initial_rung)
        self.upshift_headroom = float(upshift_headroom)
        self.ewma_alpha = float(ewma_alpha)
        self._rng = random.Random(17 if seed is None else seed)
        self.content = content if content is not None else self._rng.choice(list(catalog))
        # An explicit source port keeps the flow 5-tuple independent of the
        # process-global generator counter (scenario replay needs it).
        self.src_port = src_port if src_port is not None else 46_000 + (self.generator_id % 1000)
        self.segments_requested = 0
        self.segments_received = 0
        self.bytes_downloaded = 0
        self.upshifts = 0
        self.downshifts = 0
        self.throughput_ewma_bps = 0.0
        self._up_votes = 0
        self._down_votes = 0

    # -------------------------------------------------------------- ticking

    def _schedule_next(self, initial: bool = False) -> None:
        if not self.running:
            return
        delay = self._scaled_delay(0.0 if initial else self.segment_duration_s)
        if delay is None:
            return
        self._schedule(delay, self._fetch_segment)

    def _fetch_segment(self) -> None:
        if not self.running:
            return
        self.segments_requested += 1
        bitrate = self.ladder_bps[self.rung]
        body_bytes = int(bitrate * self.segment_duration_s / 8.0)
        segment = self.segments_requested
        if self.loop_segments is not None:
            segment = (segment - 1) % self.loop_segments + 1
        request = pkt.make_http_request(
            src_ip=self.client.ip,
            dst_ip=self.server_ip,
            host=self.host,
            path=f"/{self.content}/seg-{segment}-{int(bitrate)}.m4s",
            src_port=self.src_port,
        )
        if request.eth is not None:
            request.eth.src = self.client.mac
        request.metadata["app_protocol"] = "abr"
        request.metadata["http_body_bytes"] = body_bytes
        request.metadata["http_content_type"] = "video/mp4"
        self._stamp_and_send(request)
        self._schedule_next()

    # ----------------------------------------------------------- adaptation

    def _handle_response(self, packet: Packet) -> None:
        if not isinstance(packet.app, pkt.HTTPResponse):
            return
        self.segments_received += 1
        self.bytes_downloaded += packet.app.body_bytes
        if not self.latency_samples:
            return
        rtt = self.latency_samples[-1].rtt
        if rtt <= 0:
            return
        sample_bps = packet.app.body_bytes * 8.0 / rtt
        if self.throughput_ewma_bps <= 0:
            self.throughput_ewma_bps = sample_bps
        else:
            self.throughput_ewma_bps += self.ewma_alpha * (
                sample_bps - self.throughput_ewma_bps
            )
        self._adapt()

    def _adapt(self) -> None:
        can_up = self.rung + 1 < len(self.ladder_bps)
        if can_up and self.throughput_ewma_bps >= (
            self.upshift_headroom * self.ladder_bps[self.rung + 1]
        ):
            self._up_votes += 1
            self._down_votes = 0
            if self._up_votes >= 2:
                self.rung += 1
                self.upshifts += 1
                self._up_votes = 0
        elif self.rung > 0 and self.throughput_ewma_bps < self.ladder_bps[self.rung]:
            self._down_votes += 1
            self._up_votes = 0
            if self._down_votes >= 2:
                self.rung -= 1
                self.downshifts += 1
                self._down_votes = 0
        else:
            self._up_votes = 0
            self._down_votes = 0

    # ---------------------------------------------------------------- stats

    def stats(self) -> Dict[str, float]:
        combined = super().stats()
        combined.update(
            {
                "segments_requested": float(self.segments_requested),
                "segments_received": float(self.segments_received),
                "bytes_downloaded": float(self.bytes_downloaded),
                "upshifts": float(self.upshifts),
                "downshifts": float(self.downshifts),
                "rung": float(self.rung),
                "throughput_ewma_bps": float(self.throughput_ewma_bps),
            }
        )
        return combined
