"""Result analysis helpers shared by tests, examples and benchmarks."""

from repro.analysis.stats import (
    mean,
    median,
    percentile,
    stdev,
    summarize,
    ratio,
)
from repro.analysis.report import ExperimentResult, ExperimentReport

__all__ = [
    "mean",
    "median",
    "percentile",
    "stdev",
    "summarize",
    "ratio",
    "ExperimentResult",
    "ExperimentReport",
]
