"""Experiment result records and report rendering.

Every benchmark builds an :class:`ExperimentResult` (headers + rows + notes),
prints it with the same table renderer the UI uses, and can append it to an
:class:`ExperimentReport` -- the machinery used to populate EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.telemetry.export import render_table


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    paper_claim: str = ""
    notes: str = ""

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def render(self, precision: int = 4) -> str:
        """Plain-text rendering (what the benchmark prints)."""
        table = render_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}", precision=precision)
        sections = [table]
        if self.paper_claim:
            sections.append(f"paper claim : {self.paper_claim}")
        if self.notes:
            sections.append(f"notes       : {self.notes}")
        return "\n".join(sections)

    def to_markdown(self, precision: int = 4) -> str:
        """Markdown rendering used when assembling EXPERIMENTS.md."""
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.{precision}f}"
            return str(cell)

        lines = [f"### {self.experiment_id}: {self.title}", ""]
        if self.paper_claim:
            lines.append(f"*Paper claim:* {self.paper_claim}")
            lines.append("")
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join(["---"] * len(self.headers)) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
        if self.notes:
            lines.append("")
            lines.append(f"*Notes:* {self.notes}")
        lines.append("")
        return "\n".join(lines)


class ExperimentReport:
    """A collection of experiment results (one full reproduction run)."""

    def __init__(self, title: str = "GNF reproduction results") -> None:
        self.title = title
        self.results: List[ExperimentResult] = []

    def add(self, result: ExperimentResult) -> ExperimentResult:
        self.results.append(result)
        return result

    def render(self) -> str:
        blocks = [self.title, "=" * len(self.title), ""]
        for result in self.results:
            blocks.append(result.render())
            blocks.append("")
        return "\n".join(blocks)

    def to_markdown(self) -> str:
        blocks = [f"# {self.title}", ""]
        for result in self.results:
            blocks.append(result.to_markdown())
        return "\n".join(blocks)

    def save(self, path: str) -> None:
        """Write the markdown report to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_markdown())
