"""Small, dependency-light summary statistics used across benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence.

    ``math.fsum`` keeps the result within ``[min(values), max(values)]`` even
    for pathological magnitudes where naive summation rounds the mean just
    outside the sample range.
    """
    values = list(values)
    if not values:
        return 0.0
    result = math.fsum(values) / len(values)
    # Guard against the last rounding step still escaping the sample range.
    return min(max(result, min(values)), max(values))


def median(values: Sequence[float]) -> float:
    """Median; 0.0 for an empty sequence."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) using linear interpolation."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    fraction = rank - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((value - mu) ** 2 for value in values) / len(values))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Standard summary block used in benchmark output rows."""
    values = list(values)
    return {
        "count": float(len(values)),
        "mean": mean(values),
        "median": median(values),
        "p95": percentile(values, 95.0),
        "p99": percentile(values, 99.0),
        "min": min(values) if values else 0.0,
        "max": max(values) if values else 0.0,
        "stdev": stdev(values),
    }


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio (0.0 when the denominator is zero)."""
    return numerator / denominator if denominator else 0.0
