"""Service function chains.

The Manager "allows single or chain of NFs to be associated with" a client.
A :class:`ServiceChain` is an ordered list of :class:`NFSpec` entries
(function type plus deployment-time configuration).  Upstream traffic
traverses the chain first-to-last; downstream traffic traverses it in
reverse, matching middlebox semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

_chain_ids = itertools.count(1)


@dataclass(frozen=True)
class NFSpec:
    """One position in a chain: the NF type and its configuration."""

    nf_type: str
    config: Dict[str, Any] = field(default_factory=dict)
    instance_name: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"nf_type": self.nf_type, "config": dict(self.config), "instance_name": self.instance_name}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NFSpec":
        return cls(
            nf_type=str(data["nf_type"]),
            config=dict(data.get("config", {})),  # type: ignore[arg-type]
            instance_name=str(data.get("instance_name", "")),
        )


class ServiceChain:
    """An ordered chain of NF specifications."""

    def __init__(self, specs: Sequence[NFSpec], name: str = "") -> None:
        if not specs:
            raise ValueError("a service chain needs at least one NF")
        self.chain_id = f"chain-{next(_chain_ids):04d}"
        self.name = name or self.chain_id
        self.specs: List[NFSpec] = list(specs)

    # ------------------------------------------------------------ factories

    @classmethod
    def single(cls, nf_type: str, config: Optional[Dict[str, Any]] = None, name: str = "") -> "ServiceChain":
        """A chain with exactly one NF (the common demo case)."""
        return cls([NFSpec(nf_type=nf_type, config=dict(config or {}))], name=name or nf_type)

    @classmethod
    def of(cls, *nf_types: str, name: str = "") -> "ServiceChain":
        """A chain from bare NF type names with default configuration."""
        return cls([NFSpec(nf_type=nf_type) for nf_type in nf_types], name=name)

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[NFSpec]:
        return iter(self.specs)

    @property
    def nf_types(self) -> List[str]:
        return [spec.nf_type for spec in self.specs]

    def upstream_order(self) -> List[NFSpec]:
        """Order in which client-originated traffic traverses the chain."""
        return list(self.specs)

    def downstream_order(self) -> List[NFSpec]:
        """Order in which traffic towards the client traverses the chain."""
        return list(reversed(self.specs))

    # ------------------------------------------------------------ serialize

    def to_dicts(self) -> List[Dict[str, object]]:
        return [spec.to_dict() for spec in self.specs]

    @classmethod
    def from_dicts(cls, data: Sequence[Dict[str, object]], name: str = "") -> "ServiceChain":
        return cls([NFSpec.from_dict(entry) for entry in data], name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ServiceChain({' -> '.join(self.nf_types)})"
