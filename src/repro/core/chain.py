"""Service function chains.

The Manager "allows single or chain of NFs to be associated with" a client.
A :class:`ServiceChain` is an ordered list of :class:`NFSpec` entries
(function type plus deployment-time configuration).  Upstream traffic
traverses the chain first-to-last; downstream traffic traverses it in
reverse, matching middlebox semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

_chain_ids = itertools.count(1)


@dataclass(frozen=True)
class NFRequirements:
    """Per-instance resource demands for one NF of a chain.

    ``memory_mb`` of ``None`` defers to the NF catalogue's image default;
    ``cpu_units`` and ``bandwidth_mbps`` of zero mean "no declared demand",
    which every station trivially satisfies.
    """

    cpu_units: float = 0.0
    memory_mb: Optional[float] = None
    bandwidth_mbps: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "cpu_units": self.cpu_units,
            "memory_mb": self.memory_mb,
            "bandwidth_mbps": self.bandwidth_mbps,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NFRequirements":
        memory = data.get("memory_mb")
        return cls(
            cpu_units=float(data.get("cpu_units", 0.0)),  # type: ignore[arg-type]
            memory_mb=None if memory is None else float(memory),  # type: ignore[arg-type]
            bandwidth_mbps=float(data.get("bandwidth_mbps", 0.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ChainSLO:
    """End-to-end service-level objectives for a whole chain.

    ``None`` means the dimension is unconstrained.  ``max_latency_s`` bounds
    the client→chain→uplink path latency an embedding may price in;
    ``min_bandwidth_mbps`` is the end-to-end rate the weakest link (radio or
    backhaul) must sustain.
    """

    max_latency_s: Optional[float] = None
    min_bandwidth_mbps: Optional[float] = None

    @property
    def constrained(self) -> bool:
        return self.max_latency_s is not None or self.min_bandwidth_mbps is not None

    def to_dict(self) -> Dict[str, object]:
        return {"max_latency_s": self.max_latency_s, "min_bandwidth_mbps": self.min_bandwidth_mbps}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChainSLO":
        latency = data.get("max_latency_s")
        bandwidth = data.get("min_bandwidth_mbps")
        return cls(
            max_latency_s=None if latency is None else float(latency),  # type: ignore[arg-type]
            min_bandwidth_mbps=None if bandwidth is None else float(bandwidth),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class NFSpec:
    """One position in a chain: the NF type and its configuration."""

    nf_type: str
    config: Dict[str, Any] = field(default_factory=dict)
    instance_name: str = ""
    requirements: Optional[NFRequirements] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "nf_type": self.nf_type,
            "config": dict(self.config),
            "instance_name": self.instance_name,
        }
        if self.requirements is not None:
            data["requirements"] = self.requirements.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NFSpec":
        requirements = data.get("requirements")
        return cls(
            nf_type=str(data["nf_type"]),
            config=dict(data.get("config", {})),  # type: ignore[arg-type]
            instance_name=str(data.get("instance_name", "")),
            requirements=None
            if requirements is None
            else NFRequirements.from_dict(requirements),  # type: ignore[arg-type]
        )


class ServiceChain:
    """An ordered chain of NF specifications."""

    def __init__(
        self, specs: Sequence[NFSpec], name: str = "", slo: Optional[ChainSLO] = None
    ) -> None:
        if not specs:
            raise ValueError("a service chain needs at least one NF")
        self.chain_id = f"chain-{next(_chain_ids):04d}"
        self.name = name or self.chain_id
        self.specs: List[NFSpec] = list(specs)
        self.slo: Optional[ChainSLO] = slo

    # ------------------------------------------------------------ factories

    @classmethod
    def single(cls, nf_type: str, config: Optional[Dict[str, Any]] = None, name: str = "") -> "ServiceChain":
        """A chain with exactly one NF (the common demo case)."""
        return cls([NFSpec(nf_type=nf_type, config=dict(config or {}))], name=name or nf_type)

    @classmethod
    def of(cls, *nf_types: str, name: str = "") -> "ServiceChain":
        """A chain from bare NF type names with default configuration."""
        return cls([NFSpec(nf_type=nf_type) for nf_type in nf_types], name=name)

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[NFSpec]:
        return iter(self.specs)

    @property
    def nf_types(self) -> List[str]:
        return [spec.nf_type for spec in self.specs]

    def upstream_order(self) -> List[NFSpec]:
        """Order in which client-originated traffic traverses the chain."""
        return list(self.specs)

    def downstream_order(self) -> List[NFSpec]:
        """Order in which traffic towards the client traverses the chain."""
        return list(reversed(self.specs))

    def sub_chain(self, start: int, end: int) -> "ServiceChain":
        """A chain holding ``specs[start:end]`` — one embedding segment.

        Segments carry no SLO of their own: the SLO is an end-to-end property
        the embedding already priced before splitting.
        """
        if not 0 <= start < end <= len(self.specs):
            raise ValueError(f"invalid segment [{start}:{end}] of a {len(self.specs)}-NF chain")
        return ServiceChain(self.specs[start:end], name=f"{self.name}#seg{start}-{end}")

    # ------------------------------------------------------------ serialize

    def to_dicts(self) -> List[Dict[str, object]]:
        return [spec.to_dict() for spec in self.specs]

    @classmethod
    def from_dicts(cls, data: Sequence[Dict[str, object]], name: str = "") -> "ServiceChain":
        return cls([NFSpec.from_dict(entry) for entry in data], name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ServiceChain({' -> '.join(self.nf_types)})"
