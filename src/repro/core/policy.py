"""Client traffic policies: which subset of a client's traffic an NF serves.

The Manager "allows single or chain of NFs to be associated with a subset of
a selected client's traffic".  A :class:`TrafficSelector` describes that
subset (protocol / ports / everything) and knows how to express itself as
the upstream and downstream flow-table matches the Agent installs on the
station switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.netem.flowtable import Match
from repro.netem.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP

_PROTOCOL_NUMBERS = {"tcp": PROTO_TCP, "udp": PROTO_UDP, "icmp": PROTO_ICMP}


@dataclass(frozen=True)
class TrafficSelector:
    """Selects a subset of one client's traffic.

    ``protocol`` is ``"tcp"``/``"udp"``/``"icmp"`` or ``None`` (any);
    ``remote_port`` is the server-side port (the client's destination port
    upstream, source port downstream); ``remote_ip`` restricts the selection
    to a single remote endpoint.  An all-``None`` selector matches all of the
    client's traffic, which is the demo's default.
    """

    protocol: Optional[str] = None
    remote_port: Optional[int] = None
    remote_ip: Optional[str] = None
    description: str = "all traffic"

    def __post_init__(self) -> None:
        if self.protocol is not None and self.protocol.lower() not in _PROTOCOL_NUMBERS:
            raise ValueError(f"unknown protocol {self.protocol!r}")

    @property
    def protocol_number(self) -> Optional[int]:
        if self.protocol is None:
            return None
        return _PROTOCOL_NUMBERS[self.protocol.lower()]

    # ---------------------------------------------------------------- match

    def upstream_match(self, client_ip: str, in_port: Optional[int] = None) -> Match:
        """Match for client-originated packets entering from a cell port."""
        return Match(
            in_port=in_port,
            ip_src=client_ip,
            ip_dst=self.remote_ip,
            ip_proto=self.protocol_number,
            l4_dst_port=self.remote_port,
        )

    def downstream_match(self, client_ip: str, in_port: Optional[int] = None) -> Match:
        """Match for packets heading back to the client entering from the uplink."""
        return Match(
            in_port=in_port,
            ip_dst=client_ip,
            ip_src=self.remote_ip,
            ip_proto=self.protocol_number,
            l4_src_port=self.remote_port,
        )

    # ------------------------------------------------------------ (de)serial

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "remote_port": self.remote_port,
            "remote_ip": self.remote_ip,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrafficSelector":
        return cls(
            protocol=data.get("protocol"),  # type: ignore[arg-type]
            remote_port=data.get("remote_port"),  # type: ignore[arg-type]
            remote_ip=data.get("remote_ip"),  # type: ignore[arg-type]
            description=str(data.get("description", "all traffic")),
        )

    # ------------------------------------------------------------ shortcuts

    @classmethod
    def all_traffic(cls) -> "TrafficSelector":
        return cls()

    @classmethod
    def web_traffic(cls) -> "TrafficSelector":
        return cls(protocol="tcp", remote_port=80, description="HTTP traffic")

    @classmethod
    def dns_traffic(cls) -> "TrafficSelector":
        return cls(protocol="udp", remote_port=53, description="DNS traffic")
