"""Deterministic seed derivation.

Every random decision in a run -- mobility waypoints, workload think times,
handover scan jitter, fault schedules -- must trace back to **one** master
seed so that a scenario can be replayed byte-for-byte.  Components never
share a ``random.Random``; instead each derives its own child seed from the
master seed plus a stable path of labels:

>>> derive_seed(42, "mobility", "client-1")  # doctest: +SKIP
1234567890123456789

Derivation is a SHA-256 over the label path, so it is stable across Python
versions and processes (unlike ``hash()``), and statistically independent
children come out of nearby paths (unlike ``master + index`` arithmetic).
"""

from __future__ import annotations

import hashlib


def derive_seed(master: int, *path: object) -> int:
    """Derive a child seed from ``master`` and a stable path of labels.

    The same ``(master, path)`` always yields the same 64-bit seed; any
    change to either yields an unrelated one.  Path elements are converted
    with ``str()``, so ints, floats and strings are all acceptable labels.
    """
    text = "gnf-seed:" + str(master) + ":" + "/".join(str(part) for part in path)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
