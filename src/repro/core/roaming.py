"""The roaming coordinator: NF migration that follows the client.

This is the paper's headline feature ("Function roaming: with its small
footprint and encapsulated functions, GNF seamlessly moves the NFs when the
user roams between cells, providing consistent and location-transparent
service", and Fig. 2's demo).  Three strategies are implemented so benchmark
E5 can compare them:

* ``cold`` -- the demo's approach: when the client appears at a new station,
  an *equivalent* chain is instantiated there from scratch and the old one is
  removed.  NF state is lost; the coverage gap is dominated by container
  instantiation at the new station.
* ``stateful`` -- checkpoint/restore: the old chain is checkpointed, the
  checkpoints are transferred over the inter-station path and restored at the
  new station, so NF state (conntrack, caches, NAT bindings...) survives.
  The coverage gap grows with the state size.
* ``precopy`` -- make-before-break: when the client *leaves* its old cell,
  speculative replicas are started on candidate next stations while the old
  chain keeps its state; when the client reappears, only a small state delta
  is copied into the already-running replica.  The coverage gap shrinks to
  roughly the control latency, at the cost of temporary extra resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.agent import ChainDeployment, GNFAgent
from repro.core.api import ClientEvent
from repro.core.errors import MigrationError
from repro.core.manager import Assignment, AssignmentState, GNFManager
from repro.netem.simulator import Simulator

VALID_STRATEGIES = ("cold", "stateful", "precopy")


@dataclass
class MigrationRecord:
    """One completed (or failed) NF migration."""

    assignment_id: str
    client_ip: str
    nf_types: List[str]
    from_station: str
    to_station: str
    strategy: str
    started_at: float
    client_connected_at: float
    completed_at: Optional[float] = None
    coverage_gap_s: Optional[float] = None
    state_transferred_mb: float = 0.0
    success: bool = False
    detail: str = ""

    @property
    def total_duration_s(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class RoamingCoordinator:
    """Watches client movement (via the Manager) and migrates assignments."""

    def __init__(
        self,
        simulator: Simulator,
        manager: GNFManager,  # or a duck-typed ShardedManager frontend
        strategy: str = "cold",
        transfer_bandwidth_bps: Optional[float] = None,
        speculative_station_limit: int = 3,
    ) -> None:
        if strategy not in VALID_STRATEGIES:
            raise MigrationError(f"unknown migration strategy {strategy!r}; valid: {VALID_STRATEGIES}")
        self.simulator = simulator
        self.manager = manager
        self.strategy = strategy
        self.speculative_station_limit = speculative_station_limit
        if transfer_bandwidth_bps is None and manager.topology is not None:
            transfer_bandwidth_bps = manager.topology.config.uplink_bandwidth_bps
        self.transfer_bandwidth_bps = transfer_bandwidth_bps or 100e6
        self.records: List[MigrationRecord] = []
        # assignment_id -> station -> speculative deployment (precopy only).
        self._speculative: Dict[str, Dict[str, ChainDeployment]] = {}
        # assignment_id -> exported state captured when the client left (stateful/precopy).
        self._captured_state: Dict[str, List[Dict[str, object]]] = {}
        manager.roaming = self

    # ----------------------------------------------------------- event hooks

    def handle_client_disconnected(self, assignment: Assignment, event: ClientEvent) -> None:
        """The client left the station currently hosting its chain."""
        if self.strategy == "precopy":
            self._start_speculative_replicas(assignment, exclude_station=event.station_name)
        if self.strategy in ("stateful", "precopy"):
            agent = self.manager.agents.get(assignment.station_name)
            if agent is not None:
                self._captured_state[assignment.assignment_id] = agent.export_chain_state(
                    assignment.assignment_id
                )

    def handle_client_connected(self, assignment: Assignment, event: ClientEvent) -> None:
        """The client appeared at a station different from its chain's home."""
        record = MigrationRecord(
            assignment_id=assignment.assignment_id,
            client_ip=assignment.client_ip,
            nf_types=assignment.chain.nf_types,
            from_station=assignment.station_name,
            to_station=event.station_name,
            strategy=self.strategy,
            started_at=self.simulator.now,
            client_connected_at=event.time,
        )
        self.records.append(record)
        assignment.state = AssignmentState.MIGRATING
        if self.strategy == "cold":
            self._migrate_cold(assignment, event, record)
        elif self.strategy == "stateful":
            self.simulator.process(
                self._migrate_stateful(assignment, event, record),
                name=f"migrate-{assignment.assignment_id}",
            )
        else:
            self._migrate_precopy(assignment, event, record)

    # -------------------------------------------------------------- strategies

    def _finalize(
        self,
        assignment: Assignment,
        record: MigrationRecord,
        old_station: str,
        success: bool,
        detail: str = "",
    ) -> None:
        record.completed_at = self.simulator.now
        record.success = success
        record.detail = detail
        if success:
            record.coverage_gap_s = max(0.0, self.simulator.now - record.client_connected_at)
            assignment.station_name = record.to_station
            assignment.station_history.append(record.to_station)
            assignment.migrations += 1
            assignment.state = AssignmentState.ACTIVE
            assignment.active_at = self.simulator.now
            # Tell the Manager the assignment's home station moved: a plain
            # GNFManager ignores this, a sharded frontend hands the
            # assignment off to the shard owning the new station.
            self.manager.assignment_station_changed(assignment, old_station)
            # Reconcile with the assignment's time schedule: the re-deploy at
            # the new station steers by default, but if the schedule window is
            # currently closed the chain must come up unsteered (the scheduler
            # itself won't correct this -- it already recorded the assignment
            # as disabled, so it sees no transition to drive).
            if not assignment.schedule.is_active(self.simulator.now):
                new_agent = self.manager.agents.get(record.to_station)
                if new_agent is not None:
                    self.manager.channels[record.to_station].call(
                        new_agent.set_chain_active, assignment.assignment_id, False
                    )
        else:
            assignment.state = AssignmentState.FAILED
            assignment.failure_reason = detail
        # Remove the old chain regardless; the station the client left should
        # not keep spending resources on it.  The removal also invalidates the
        # old station's fast path: remove_chain flushes the client's cached
        # verdicts and the rule removal bumps the table generation, so no
        # stale verdict can keep steering the roamed client's traffic into
        # the chain being torn down.
        old_agent = self.manager.agents.get(old_station)
        if old_agent is not None and old_station != record.to_station:
            channel = self.manager.channels[old_station]
            channel.call(old_agent.remove_chain, assignment.assignment_id)

    def _migrate_cold(self, assignment: Assignment, event: ClientEvent, record: MigrationRecord) -> None:
        """Start an equivalent, fresh chain at the new station."""
        old_station = assignment.station_name
        new_agent = self.manager.agent(event.station_name)
        channel = self.manager.channels[event.station_name]

        def on_complete(deployment: ChainDeployment, success: bool, detail: str) -> None:
            self._finalize(assignment, record, old_station, success, detail)

        channel.call(
            new_agent.deploy_chain,
            assignment.assignment_id,
            assignment.client_ip,
            assignment.chain,
            assignment.selector,
            None,
            on_complete,
        )

    def _migrate_stateful(self, assignment: Assignment, event: ClientEvent, record: MigrationRecord):
        """Checkpoint at the old station, transfer, restore at the new one."""
        old_station = assignment.station_name
        old_agent = self.manager.agents.get(old_station)
        new_agent = self.manager.agent(event.station_name)
        channel = self.manager.channels[event.station_name]

        nf_states: List[Dict[str, object]] = []
        state_mb = 0.0
        if old_agent is not None:
            checkpoints, checkpoint_duration = old_agent.checkpoint_chain(assignment.assignment_id)
            if checkpoint_duration > 0:
                yield checkpoint_duration
            nf_states = [dict(checkpoint.nf_state) for checkpoint in checkpoints]
            state_mb = sum(checkpoint.size_mb for checkpoint in checkpoints)
            if not nf_states:
                nf_states = self._captured_state.get(assignment.assignment_id, [])
        record.state_transferred_mb = state_mb
        if state_mb > 0:
            rtt = 2 * self.manager.topology.station_to_station_latency(old_station, event.station_name) if self.manager.topology else 0.01
            transfer_s = rtt + (state_mb * 8 * 1_000_000) / self.transfer_bandwidth_bps
            yield transfer_s

        def on_complete(deployment: ChainDeployment, success: bool, detail: str) -> None:
            self._finalize(assignment, record, old_station, success, detail)

        channel.call(
            new_agent.deploy_chain,
            assignment.assignment_id,
            assignment.client_ip,
            assignment.chain,
            assignment.selector,
            nf_states,
            on_complete,
        )

    def _migrate_precopy(self, assignment: Assignment, event: ClientEvent, record: MigrationRecord) -> None:
        """Switch over to an already-running speculative replica."""
        old_station = assignment.station_name
        replicas = self._speculative.get(assignment.assignment_id, {})
        replica = replicas.get(event.station_name)
        ready = replica is not None and replica.active_at is not None
        if not ready:
            # The replica is absent or still booting: fall back to a cold migration
            # (still counts against the precopy strategy in the benchmarks).
            self._cleanup_speculative(assignment.assignment_id, keep_station=None)
            self._migrate_cold(assignment, event, record)
            return

        captured = self._captured_state.get(assignment.assignment_id, [])
        # Only the delta since the client left needs to move now; model it as a
        # small fraction of the full state.
        delta_mb = 0.1 * sum(len(str(state)) for state in captured) / 1e6
        record.state_transferred_mb = delta_mb
        new_agent = self.manager.agent(event.station_name)
        channel = self.manager.channels[event.station_name]
        transfer_s = (delta_mb * 8 * 1_000_000) / self.transfer_bandwidth_bps if delta_mb > 0 else 0.0

        def switch_over() -> None:
            assert replica is not None
            for index, deployed in enumerate(replica.deployed_nfs):
                if index < len(captured) and captured[index]:
                    deployed.nf.import_state(captured[index])
            new_agent.set_chain_active(assignment.assignment_id, True)
            self._cleanup_speculative(assignment.assignment_id, keep_station=event.station_name)
            self._finalize(assignment, record, old_station, True, "switched to pre-copied replica")

        self.simulator.schedule(transfer_s, channel.call, switch_over)

    # ----------------------------------------------------------- speculation

    def _start_speculative_replicas(self, assignment: Assignment, exclude_station: str) -> None:
        """Boot replicas of the chain on candidate next stations (precopy)."""
        replicas = self._speculative.setdefault(assignment.assignment_id, {})
        candidates = [name for name in self.manager.agents if name != exclude_station]
        for station_name in candidates[: self.speculative_station_limit]:
            if station_name in replicas:
                continue
            agent = self.manager.agent(station_name)
            channel = self.manager.channels[station_name]
            deployment = agent.deploy_chain(
                assignment.assignment_id,
                assignment.client_ip,
                assignment.chain,
                assignment.selector,
            )
            replicas[station_name] = deployment

    def _cleanup_speculative(self, assignment_id: str, keep_station: Optional[str]) -> None:
        """Remove speculative replicas that were not chosen."""
        replicas = self._speculative.pop(assignment_id, {})
        for station_name in replicas:
            if station_name == keep_station:
                continue
            agent = self.manager.agents.get(station_name)
            if agent is not None:
                self.manager.channels[station_name].call(agent.remove_chain, assignment_id)

    # --------------------------------------------------------------- stats

    def completed_migrations(self) -> List[MigrationRecord]:
        return [record for record in self.records if record.completed_at is not None and record.success]

    def mean_coverage_gap_s(self) -> float:
        gaps = [
            record.coverage_gap_s
            for record in self.completed_migrations()
            if record.coverage_gap_s is not None
        ]
        return sum(gaps) / len(gaps) if gaps else 0.0

    def summary(self) -> Dict[str, float]:
        completed = self.completed_migrations()
        return {
            "strategy_" + self.strategy: 1.0,
            "migrations_started": float(len(self.records)),
            "migrations_completed": float(len(completed)),
            "mean_coverage_gap_s": self.mean_coverage_gap_s(),
            "mean_state_transferred_mb": (
                sum(record.state_transferred_mb for record in completed) / len(completed)
                if completed
                else 0.0
            ),
        }
