"""The roaming coordinator: NF migration that follows the client.

This is the paper's headline feature ("Function roaming: with its small
footprint and encapsulated functions, GNF seamlessly moves the NFs when the
user roams between cells, providing consistent and location-transparent
service", and Fig. 2's demo).  Three strategies are implemented so the
benchmarks can compare them:

* ``cold`` -- the demo's approach: when the client appears at a new station,
  an *equivalent* chain is instantiated there from scratch and the old one is
  removed.  NF state is lost; the coverage gap is dominated by container
  instantiation at the new station.
* ``stateful`` -- checkpoint/restore: the old chain is checkpointed, the
  checkpoint bytes travel over the inter-station backhaul links (congesting
  with client traffic, paying per-hop RTT) and are restored at the new
  station, so NF state (conntrack, caches, NAT bindings...) survives.  The
  coverage gap grows with the state size and the backhaul load.
* ``precopy`` -- make-before-break: when the client *leaves* its old cell,
  speculative replicas are started on candidate next stations while the old
  chain keeps its state; when the client reappears, iterative rounds of
  shrinking dirty deltas are copied into the already-running replica until
  the final delta fits inside the downtime target.  The coverage gap shrinks
  to roughly the control latency, at the cost of temporary extra resources.

The coordinator itself is deliberately thin: it is the Manager-facing event
surface (client (dis)connects, releases, shutdown) and the keeper of the
migration records, while all mechanics -- strategy policies, link-routed
state transfers, speculative-replica and captured-state lifecycle -- live in
the :class:`~repro.core.migration.MigrationEngine` subsystem.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.api import ClientEvent
from repro.core.manager import Assignment, GNFManager
from repro.core.migration import (  # noqa: F401 - re-exported for compatibility
    MigrationEngine,
    MigrationRecord,
    VALID_STRATEGIES,
)
from repro.netem.simulator import Simulator


class RoamingCoordinator:
    """Watches client movement (via the Manager) and migrates assignments."""

    def __init__(
        self,
        simulator: Simulator,
        manager: GNFManager,  # or a duck-typed ShardedManager frontend
        strategy: str = "cold",
        transfer_bandwidth_bps: Optional[float] = None,
        speculative_station_limit: int = 3,
        chunk_bytes: int = 65536,
        precopy_max_rounds: int = 4,
        precopy_downtime_target_s: float = 0.05,
        precopy_dirty_fraction: float = 0.25,
    ) -> None:
        self.simulator = simulator
        self.manager = manager
        self.engine = MigrationEngine(
            simulator,
            manager,
            strategy=strategy,
            transfer_bandwidth_bps=transfer_bandwidth_bps,
            speculative_station_limit=speculative_station_limit,
            chunk_bytes=chunk_bytes,
            precopy_max_rounds=precopy_max_rounds,
            precopy_downtime_target_s=precopy_downtime_target_s,
            precopy_dirty_fraction=precopy_dirty_fraction,
        )
        manager.roaming = self

    @property
    def strategy(self) -> str:
        return self.engine.strategy

    @property
    def transfer_bandwidth_bps(self) -> float:
        return self.engine.transfer_bandwidth_bps

    @property
    def records(self) -> List[MigrationRecord]:
        return self.engine.records

    # The ledgers live on the engine; exposed here because tests and the
    # acceptance criteria assert their boundedness through the coordinator.
    @property
    def _captured_state(self) -> Dict[str, List[Dict[str, object]]]:
        return self.engine._captured_state

    @property
    def _speculative(self) -> Dict[str, Dict[str, object]]:
        return self.engine._speculative

    # ----------------------------------------------------------- event hooks

    def handle_client_disconnected(self, assignment: Assignment, event: ClientEvent) -> None:
        """The client left the station currently hosting its chain."""
        self.engine.client_disconnected(assignment, event)

    def handle_client_connected(self, assignment: Assignment, event: ClientEvent) -> None:
        """The client appeared at a station different from its chain's home."""
        self.engine.client_connected(assignment, event)

    def handle_client_reconnected(self, assignment: Assignment, event: ClientEvent) -> None:
        """The client came back to its chain's own station: drop staged state."""
        self.engine.client_reconnected(assignment, event)

    def assignment_released(self, assignment_id: str) -> None:
        """The Manager detached the assignment: drop all roaming state for it."""
        self.engine.assignment_released(assignment_id)

    def shutdown(self) -> None:
        """End-of-run cleanup (called by ``GNFTestbed.stop``)."""
        self.engine.shutdown()

    # --------------------------------------------------------------- stats

    def completed_migrations(self) -> List[MigrationRecord]:
        return self.engine.completed_migrations()

    def mean_coverage_gap_s(self) -> float:
        return self.engine.mean_coverage_gap_s()

    def summary(self) -> Dict[str, float]:
        return self.engine.summary()
